"""Ablation — incremental policy checking vs full re-checking.

The paper's third component re-checks "only policies related to the
affected ECs".  This bench quantifies that choice: after one LinkFailure,
compare (a) the incremental checker's affected-EC re-analysis against (b) a
full re-analysis of every EC (what a non-incremental checker would do), on
the same model state, with a realistic policy set (one reachability policy
per endpoint pair sample plus the global invariants).
"""

from __future__ import annotations

import time


from benchmarks.conftest import record_row
from repro.core.realconfig import RealConfig
from repro.net.headerspace import HeaderBox
from repro.policy.spec import BlackholeFree, LoopFree, Reachability
from repro.workloads import bgp_snapshot, link_failures


def _policies(labeled, per_endpoint=3):
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    endpoints = sorted(labeled.host_prefixes)
    for i, src in enumerate(endpoints):
        for j in range(1, per_endpoint + 1):
            dst = endpoints[(i + j) % len(endpoints)]
            if src == dst:
                continue
            policies.append(
                Reachability(
                    f"reach-{src}-{dst}",
                    src=src,
                    dst=dst,
                    match=HeaderBox.from_dst_prefix(
                        labeled.host_prefixes[dst][0]
                    ),
                )
            )
    return policies


def test_ablation_incremental_vs_full_check(benchmark, fattree):
    snapshot = bgp_snapshot(fattree)
    verifier = RealConfig(
        snapshot,
        endpoints=sorted(fattree.host_prefixes),
        policies=_policies(fattree),
    )
    change = link_failures(fattree, seed=21)[0]
    inverse = change.invert(verifier.snapshot)

    # Incremental: the pipeline's own check stage.
    delta = verifier.apply_change(change)
    incremental_seconds = delta.timings.policy_check
    affected = len(delta.report.affected_ecs)

    # Full re-check: re-analyze every EC on the same (changed) model.
    started = time.perf_counter()
    full_report = verifier.checker.full_check()
    full_seconds = time.perf_counter() - started
    total = len(full_report.affected_ecs)

    verifier.apply_change(inverse)

    speedup = full_seconds / max(incremental_seconds, 1e-9)
    record_row(
        "Ablation: incremental vs full policy checking (BGP LinkFailure)",
        f"incremental: {affected:4d}/{total} ECs re-analyzed, "
        f"{incremental_seconds*1000:7.1f} ms | "
        f"full re-check: {full_seconds*1000:7.1f} ms | "
        f"speedup {speedup:5.1f}x",
    )

    benchmark.extra_info["affected_ecs"] = affected
    benchmark.extra_info["total_ecs"] = total
    state = {"flip": False}

    def setup():
        apply_next = change if not state["flip"] else inverse
        state["flip"] = not state["flip"]
        return (apply_next,), {}

    benchmark.pedantic(verifier.apply_change, setup=setup, rounds=4, iterations=1)

    assert affected < total
    assert incremental_seconds < full_seconds
