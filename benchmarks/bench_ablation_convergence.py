"""Ablation — recurring-state detection (§6 future work, implemented).

A non-convergent BGP configuration (a DISAGREE gadget) makes the Datalog
fixpoint oscillate.  Without recurring-state detection the engine only
stops at the hard iteration cap; with it, the oscillation is reported as
soon as a state signature repeats.  This bench measures how much earlier
(iterations and wall clock) detection fires.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_row
from repro.ddlog.convergence import ConvergenceMonitor, NonConvergenceError
from repro.routing.program import ControlPlane
from tests.integration.test_bgp_convergence import bad_gadget_snapshot

HARD_CAP = 2000


def _run_with(monitor):
    control_plane = ControlPlane(monitor=monitor)
    started = time.perf_counter()
    try:
        control_plane.update_to(bad_gadget_snapshot())
    except NonConvergenceError as error:
        return error.iteration, time.perf_counter() - started
    raise AssertionError("the gadget unexpectedly converged")


@pytest.mark.parametrize(
    "label,monitor_factory",
    [
        (
            "hard cap only",
            lambda: ConvergenceMonitor(
                max_iterations=HARD_CAP, suspect_after=HARD_CAP + 1
            ),
        ),
        (
            "recurring-state detection",
            lambda: ConvergenceMonitor(max_iterations=HARD_CAP, suspect_after=32),
        ),
    ],
    ids=["cap-only", "recurring-detect"],
)
def test_ablation_nonconvergence_detection(benchmark, label, monitor_factory):
    iteration, seconds = _run_with(monitor_factory())
    record_row(
        "Ablation: non-convergence detection on a BGP DISAGREE gadget",
        f"{label:28s} | stopped at iteration {iteration:5d} | "
        f"{seconds * 1000:7.1f} ms",
    )
    benchmark.extra_info["stop_iteration"] = iteration

    def target():
        _run_with(monitor_factory())

    benchmark.pedantic(target, rounds=2, iterations=1)

    if label == "recurring-state detection":
        assert iteration < HARD_CAP / 4
