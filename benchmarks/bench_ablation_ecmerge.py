"""Ablation — minimal equivalence classes (APKeep's key property).

The paper chooses APKeep "because it can incrementally maintain the minimum
number of ECs, which makes it more scalable than other data plane
verifiers".  Our EC manager restores minimality by *merging* ECs whose atom
signatures coincide after a rule deletion.  This bench runs a churn
workload (install/remove overlapping ACL boxes and forwarding prefixes) with
merging on and off and reports the EC count and per-update model time —
without merging, the partition only ever grows and every later update pays
for the garbage.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_row
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import FilterRule, ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topologies import line

CHURN_STEPS = 120


def churn_workload(seed: int = 9):
    """A deterministic install/remove stream of overlapping rules."""
    rng = random.Random(seed)
    live = []
    updates = []
    for step in range(CHURN_STEPS):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            updates.append(RuleUpdate(-1, victim))
        else:
            if rng.random() < 0.5:
                length = rng.choice([8, 12, 16])
                network = rng.randrange(0, 1 << 8) << 24
                rule = ForwardingRule(
                    "r1",
                    Prefix.from_address_int(network + (step << 8), length),
                    rng.choice(["eth0", "eth1"]),
                )
            else:
                lo = rng.randrange(0, 60000)
                rule = FilterRule(
                    "r1", "eth0", "in", 1000 + step, "deny",
                    HeaderBox.build(proto=(6, 6), dst_port=(lo, lo + 100)),
                )
            if any(r == rule for r in live):
                continue
            live.append(rule)
            updates.append(RuleUpdate(1, rule))
    # Tear everything down at the end (worst case for a non-merging manager).
    for rule in live:
        updates.append(RuleUpdate(-1, rule))
    return updates


@pytest.mark.parametrize("merge", [True, False], ids=["merge-on", "merge-off"])
def test_ablation_ec_merging(benchmark, merge):
    updates = churn_workload()

    def run():
        model = NetworkModel(line(3).topology, merge_on_unregister=merge)
        updater = BatchUpdater(model)
        peak = 0
        started = time.perf_counter()
        for update in updates:
            updater.apply([update])
            peak = max(peak, model.ecs.num_ecs())
        elapsed = time.perf_counter() - started
        return model, peak, elapsed

    model, peak, elapsed = run()
    record_row(
        "Ablation: EC merging (minimal partition) under rule churn",
        f"merge={'on ' if merge else 'off'} | final ECs {model.ecs.num_ecs():4d} "
        f"| peak ECs {peak:4d} | splits {model.ecs.splits:4d} "
        f"| merges {model.ecs.merges:4d} | {elapsed * 1000:7.1f} ms total",
    )
    benchmark.extra_info["final_ecs"] = model.ecs.num_ecs()
    benchmark.extra_info["peak_ecs"] = peak
    benchmark.pedantic(run, rounds=2, iterations=1)

    if merge:
        # Everything was removed: minimality means one EC remains.
        assert model.ecs.num_ecs() == 1
    else:
        assert model.ecs.num_ecs() > 1
