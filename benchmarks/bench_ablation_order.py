"""Ablation — batch update ordering and forwarding-table semantics.

The paper measures two orders (insertion-first, deletion-first) and leaves
"the optimal scheduling of model updates as future work".  We compare three
orders under both forwarding semantics on a worst-case batch (every prefix
on a device swaps next hop):

- ``priority`` (APKeep table semantics): insertion-first already achieves
  one move per EC; deletion-first pays double through the drop port.
- ``ecmp`` (multipath-union semantics): both simple orders pay a transient
  (extra-path or drop); only the grouped (per-prefix atomic) schedule is
  minimal — quantifying what the paper's future-work scheduler buys.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.topologies import line

PREFIXES = 64


def reroute_batch():
    inserts, deletes = [], []
    for i in range(PREFIXES):
        prefix = Prefix.parse(f"10.{i}.0.0/16")
        deletes.append(RuleUpdate(-1, ForwardingRule("r1", prefix, "eth0")))
        inserts.append(RuleUpdate(1, ForwardingRule("r1", prefix, "eth1")))
    return deletes + inserts


def fresh_model(mode):
    model = NetworkModel(line(3).topology, mode=mode)
    for i in range(PREFIXES):
        model.insert_forwarding(
            ForwardingRule("r1", Prefix.parse(f"10.{i}.0.0/16"), "eth0")
        )
    return model


@pytest.mark.parametrize("mode", ["priority", "ecmp"])
@pytest.mark.parametrize("order", ["insertion-first", "deletion-first", "grouped"])
def test_ablation_update_order(benchmark, mode, order):
    # Measure moves once, deterministically.
    model = fresh_model(mode)
    result = BatchUpdater(model, order).apply(reroute_batch())
    record_row(
        "Ablation: batch order x table semantics (64-prefix reroute)",
        f"{mode:8s} | {order:15s} | {result.num_moves:4d} EC moves | "
        f"T1 {result.elapsed_seconds * 1000:6.2f} ms",
    )

    def setup():
        return (fresh_model(mode),), {}

    def target(fresh):
        BatchUpdater(fresh, order).apply(reroute_batch())

    benchmark.extra_info["ec_moves"] = result.num_moves
    benchmark.pedantic(target, setup=setup, rounds=3, iterations=1)

    if mode == "priority" and order == "deletion-first":
        assert result.num_moves == 2 * PREFIXES
    if order == "grouped":
        assert result.num_moves == PREFIXES
