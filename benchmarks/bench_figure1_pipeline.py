"""Figure 1 — the RealConfig workflow.

Figure 1 is the architecture diagram (configuration changes -> incremental
data plane generator -> incremental model updater -> incremental policy
checker).  It has no data series; this bench drives the complete pipeline
end to end for each of the paper's change types and reports the per-stage
latency split, demonstrating the chained-incremental-components design and
the headline claim that a configuration change is checked "within one
second".
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row
from repro.core.realconfig import RealConfig
from repro.net.headerspace import HeaderBox
from repro.policy.spec import BlackholeFree, LoopFree, Reachability
from repro.workloads import (
    bgp_snapshot,
    lc_changes,
    link_failures,
    lp_changes,
    ospf_snapshot,
)


def _policies(labeled):
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    endpoints = sorted(labeled.host_prefixes)
    for i, src in enumerate(endpoints):
        dst = endpoints[(i + len(endpoints) // 2) % len(endpoints)]
        if src == dst:
            continue
        policies.append(
            Reachability(
                f"reach-{src}-{dst}",
                src=src,
                dst=dst,
                match=HeaderBox.from_dst_prefix(labeled.host_prefixes[dst][0]),
            )
        )
    return policies


CASES = [
    ("ospf", "LinkFailure", lambda l: link_failures(l, seed=11)),
    ("ospf", "LC", lambda l: lc_changes(l, seed=12)),
    ("bgp", "LinkFailure", lambda l: link_failures(l, seed=13)),
    ("bgp", "LP", lambda l: lp_changes(l, seed=14)),
]


@pytest.mark.parametrize(
    "protocol,kind,gen",
    CASES,
    ids=["ospf-linkfailure", "ospf-lc", "bgp-linkfailure", "bgp-lp"],
)
def test_figure1_pipeline_stages(benchmark, fattree, protocol, kind, gen):
    snapshot = (
        ospf_snapshot(fattree) if protocol == "ospf" else bgp_snapshot(fattree)
    )
    verifier = RealConfig(
        snapshot,
        endpoints=sorted(fattree.host_prefixes),
        policies=_policies(fattree),
    )
    changes = gen(fattree)[:NUM_CHANGES]

    stage_samples = {"diff": [], "generate": [], "model": [], "check": []}
    for change in changes:
        inverse = change.invert(verifier.snapshot)
        delta = verifier.apply_change(change)
        stage_samples["diff"].append(delta.timings.config_diff)
        stage_samples["generate"].append(delta.timings.generation)
        stage_samples["model"].append(delta.timings.model_update)
        stage_samples["check"].append(delta.timings.policy_check)
        verifier.apply_change(inverse)  # roll back, untimed

    means = {k: statistics.mean(v) for k, v in stage_samples.items()}
    total = sum(means.values())
    record_row(
        "Figure 1: per-stage latency of the incremental pipeline",
        f"{protocol.upper():5s} {kind:12s} | diff {means['diff']*1000:6.1f}ms | "
        f"generate {means['generate']*1000:7.1f}ms | "
        f"model {means['model']*1000:6.1f}ms | "
        f"check {means['check']*1000:6.1f}ms | total {total*1000:7.1f}ms",
    )

    # pytest-benchmark entry: one full verified change, end to end
    # (alternating the change and its precomputed inverse, so every round
    # verifies one same-sized change).
    change = changes[0]
    inverse = change.invert(verifier.snapshot)
    state = {"flip": False}

    def setup():
        apply_next = inverse if state["flip"] else change
        state["flip"] = not state["flip"]
        return (apply_next,), {}

    benchmark.pedantic(verifier.apply_change, setup=setup, rounds=4, iterations=1)

    # The paper's headline: changes verified within one second (k=12, on
    # their Rust/Java stack).  Our Python pipeline meets the bound up to
    # k=8; at paper scale the constant factor of the interpreter shows, so
    # the bound is relaxed (the *incremental vs full* ratios still hold —
    # see Table 2).
    budget = 1.0 if SCALE_K <= 8 else 10.0
    assert total < budget
