"""Incremental lint — full-snapshot lint vs diff-scoped re-linting.

The lint layer mirrors the paper's incremental thesis at the static-analysis
stage: a one-line change should cost work proportional to the *change*, not
the *network*.  For each change type we report how many passes and
pass-units (device x pass, or snapshot pass) a full lint runs versus the
diff-scoped incremental run, alongside wall-clock timings.

Shape to reproduce: incremental re-runs strictly fewer passes and units than
the full lint for every single-change workload, and the speedup grows with
network size (full lint is O(devices), incremental is O(touched devices)).
"""

from __future__ import annotations

import json
import os
import statistics
from pathlib import Path

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row, time_call
from repro.config.changes import apply_changes
from repro.lint import LintRunner, all_passes
from repro.workloads import (
    bgp_snapshot,
    build_enterprise,
    lc_changes,
    link_failures,
    lp_changes,
    ospf_snapshot,
)

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_lint.json"
#: The acceptance bar: a one-device change must re-analyze under this
#: fraction of the dependency-graph objects a full run scans.  Calibrated
#: at fat-tree k=8 (the committed BENCH_lint.json); the radius-1 balls the
#: cross passes re-analyze are constant-size, so the ratio only shrinks as
#: the network grows.
MAX_SCAN_RATIO = float(os.environ.get("REPRO_BENCH_MAX_SCAN", "0.20"))


def _bench(table, label, snapshot, changes):
    runner = LintRunner()
    previous = runner.run(snapshot)
    full_times, incr_times = [], []
    full_units = previous.units_run
    incr_passes, incr_units = [], []
    for change in changes[:NUM_CHANGES]:
        changed, diff = apply_changes(snapshot, [change])
        full_times.append(time_call(lambda: runner.run(changed)))
        result = {}
        incr_times.append(
            time_call(
                lambda: result.setdefault(
                    "r", runner.run_incremental(changed, diff, previous)
                )
            )
        )
        incremental = result["r"]
        assert len(incremental.passes_run) < len(all_passes())
        assert incremental.units_run < full_units
        incr_passes.append(len(incremental.passes_run))
        incr_units.append(incremental.units_run)
    full_ms = statistics.mean(full_times) * 1000
    incr_ms = statistics.mean(incr_times) * 1000
    speedup = full_ms / incr_ms if incr_ms else float("inf")
    record_row(
        table,
        f"{label:<14} | full: {len(all_passes())} passes/"
        f"{full_units:>3} units/{full_ms:7.2f}ms | "
        f"incr: {statistics.mean(incr_passes):.1f} passes/"
        f"{statistics.mean(incr_units):4.1f} units/{incr_ms:7.2f}ms | "
        f"{speedup:5.1f}x",
    )


def test_lint_incremental_fattree_ospf(fattree, benchmark):
    snapshot = ospf_snapshot(fattree)
    changes = lc_changes(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "OSPF LC",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def test_lint_incremental_fattree_bgp(fattree, benchmark):
    snapshot = bgp_snapshot(fattree)
    changes = lp_changes(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "BGP LP",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def test_lint_incremental_fattree_linkfailure(fattree, benchmark):
    snapshot = ospf_snapshot(fattree)
    changes = link_failures(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "LinkFailure",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def _scoped_workload(runner, snapshot, previous, changes):
    """Timings + object-scan accounting for one change family."""
    full_times, incr_times, ratios = [], [], []
    for change in changes:
        changed, diff = apply_changes(snapshot, [change])
        full_holder, incr_holder = {}, {}
        full_times.append(
            time_call(
                lambda: full_holder.setdefault("r", runner.run(changed))
            )
        )
        incr_times.append(
            time_call(
                lambda: incr_holder.setdefault(
                    "r", runner.run_incremental(changed, diff, previous)
                )
            )
        )
        full, incremental = full_holder["r"], incr_holder["r"]
        assert [str(d) for d in incremental.diagnostics] == [
            str(d) for d in full.diagnostics
        ]
        ratios.append(incremental.objects_scanned / full.objects_scanned)
    return {
        "full_ms_mean": statistics.mean(full_times) * 1000,
        "incremental_ms_mean": statistics.mean(incr_times) * 1000,
        "objects_scanned_ratio_mean": statistics.mean(ratios),
        "objects_scanned_ratio_max": max(ratios),
        "changes": len(ratios),
    }


def test_lint_dependency_scoped(fattree):
    """Cross-device coverage: with all fourteen passes (six of them graph-
    scoped), a one-device or one-link change re-analyzes a small, bounded
    neighborhood — under ``MAX_SCAN_RATIO`` of the object scans of a full
    run — and takes measurably less wall time.  Writes ``BENCH_lint.json``."""
    snapshot = ospf_snapshot(fattree)
    runner = LintRunner()
    previous = runner.run(snapshot)
    graph = previous.graph
    workloads = {
        "one-device": _scoped_workload(
            runner, snapshot, previous, lc_changes(fattree, count=NUM_CHANGES)
        ),
        "one-link": _scoped_workload(
            runner,
            snapshot,
            previous,
            link_failures(fattree, count=NUM_CHANGES),
        ),
    }
    for label, entry in sorted(workloads.items()):
        entry["speedup"] = (
            entry["full_ms_mean"] / entry["incremental_ms_mean"]
            if entry["incremental_ms_mean"]
            else float("inf")
        )
        record_row(
            f"lint: dependency-scoped re-analysis (fat-tree k={SCALE_K})",
            f"{label:<11} | full {entry['full_ms_mean']:7.2f}ms | "
            f"incr {entry['incremental_ms_mean']:7.2f}ms "
            f"({entry['speedup']:5.1f}x) | "
            f"objects {entry['objects_scanned_ratio_mean'] * 100:5.1f}% "
            f"(max {entry['objects_scanned_ratio_max'] * 100:5.1f}%)",
        )
    payload = {
        "benchmark": "lint-dependency-scoped",
        "topology": f"fat-tree:{SCALE_K}",
        "devices": len(snapshot.devices),
        "graph_objects": graph.num_objects(),
        "graph_edges": graph.num_edges(),
        "passes": len(all_passes()),
        "cross_device_passes": sum(1 for p in all_passes() if p.cross_device),
        "max_scan_ratio_bar": MAX_SCAN_RATIO,
        "workloads": workloads,
        "note": (
            "objects_scanned_ratio compares dependency-graph object scans "
            "incremental vs full across all passes; findings are asserted "
            "byte-identical per change"
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    record_row(
        f"lint: dependency-scoped re-analysis (fat-tree k={SCALE_K})",
        f"wrote {OUTPUT.name}",
    )
    for entry in workloads.values():
        assert entry["objects_scanned_ratio_mean"] < MAX_SCAN_RATIO
        assert entry["incremental_ms_mean"] < entry["full_ms_mean"]


def test_lint_incremental_enterprise(benchmark):
    network = build_enterprise()
    changes = link_failures(network.labeled, count=NUM_CHANGES)
    _bench(
        "lint: full vs incremental (enterprise)",
        "LinkFailure",
        network.snapshot,
        changes,
    )
    changed, diff = apply_changes(network.snapshot, [changes[0]])
    previous = LintRunner().run(network.snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))
