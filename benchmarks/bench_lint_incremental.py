"""Incremental lint — full-snapshot lint vs diff-scoped re-linting.

The lint layer mirrors the paper's incremental thesis at the static-analysis
stage: a one-line change should cost work proportional to the *change*, not
the *network*.  For each change type we report how many passes and
pass-units (device x pass, or snapshot pass) a full lint runs versus the
diff-scoped incremental run, alongside wall-clock timings.

Shape to reproduce: incremental re-runs strictly fewer passes and units than
the full lint for every single-change workload, and the speedup grows with
network size (full lint is O(devices), incremental is O(touched devices)).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row, time_call
from repro.config.changes import apply_changes
from repro.lint import LintRunner, all_passes
from repro.workloads import (
    bgp_snapshot,
    build_enterprise,
    lc_changes,
    link_failures,
    lp_changes,
    ospf_snapshot,
)


def _bench(table, label, snapshot, changes):
    runner = LintRunner()
    previous = runner.run(snapshot)
    full_times, incr_times = [], []
    full_units = previous.units_run
    incr_passes, incr_units = [], []
    for change in changes[:NUM_CHANGES]:
        changed, diff = apply_changes(snapshot, [change])
        full_times.append(time_call(lambda: runner.run(changed)))
        result = {}
        incr_times.append(
            time_call(
                lambda: result.setdefault(
                    "r", runner.run_incremental(changed, diff, previous)
                )
            )
        )
        incremental = result["r"]
        assert len(incremental.passes_run) < len(all_passes())
        assert incremental.units_run < full_units
        incr_passes.append(len(incremental.passes_run))
        incr_units.append(incremental.units_run)
    full_ms = statistics.mean(full_times) * 1000
    incr_ms = statistics.mean(incr_times) * 1000
    speedup = full_ms / incr_ms if incr_ms else float("inf")
    record_row(
        table,
        f"{label:<14} | full: {len(all_passes())} passes/"
        f"{full_units:>3} units/{full_ms:7.2f}ms | "
        f"incr: {statistics.mean(incr_passes):.1f} passes/"
        f"{statistics.mean(incr_units):4.1f} units/{incr_ms:7.2f}ms | "
        f"{speedup:5.1f}x",
    )


def test_lint_incremental_fattree_ospf(fattree, benchmark):
    snapshot = ospf_snapshot(fattree)
    changes = lc_changes(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "OSPF LC",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def test_lint_incremental_fattree_bgp(fattree, benchmark):
    snapshot = bgp_snapshot(fattree)
    changes = lp_changes(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "BGP LP",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def test_lint_incremental_fattree_linkfailure(fattree, benchmark):
    snapshot = ospf_snapshot(fattree)
    changes = link_failures(fattree, count=NUM_CHANGES)
    _bench(
        f"lint: full vs incremental (fat-tree k={SCALE_K})",
        "LinkFailure",
        snapshot,
        changes,
    )
    changed, diff = apply_changes(snapshot, [changes[0]])
    previous = LintRunner().run(snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))


def test_lint_incremental_enterprise(benchmark):
    network = build_enterprise()
    changes = link_failures(network.labeled, count=NUM_CHANGES)
    _bench(
        "lint: full vs incremental (enterprise)",
        "LinkFailure",
        network.snapshot,
        changes,
    )
    changed, diff = apply_changes(network.snapshot, [changes[0]])
    previous = LintRunner().run(network.snapshot)
    benchmark(lambda: LintRunner().run_incremental(changed, diff, previous))
