"""Observability overhead — the full obs stack must cost under 5%.

Streams the same flap workload through :class:`ServeDaemon` twice: once
with observability at its defaults (in-memory journal, no HTTP server)
and once with everything on — a file-backed journal flushed per event,
the flight recorder, and a live introspection server being scraped
mid-run.  The per-batch median is the comparison statistic (a loaded
host's scheduler stalls land in the mean), and the acceptance bar is
``REPRO_BENCH_MAX_OBS_OVERHEAD`` percent (default 5, the bound quoted in
EXPERIMENTS.md; CI smoke runs at tiny scale where fixed per-batch costs
loom larger, and relaxes it via the env var).

Results land in ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path
from urllib.request import urlopen

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row
from repro.core.realconfig import RealConfig
from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions
from repro.serve.stream import ChangeBatch, encode_batch
from repro.workloads import ospf_snapshot, stream_batches

NUM_BATCHES = max(10, NUM_CHANGES * 4)
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
MAX_OVERHEAD_PERCENT = float(
    os.environ.get("REPRO_BENCH_MAX_OBS_OVERHEAD", "5.0")
)


def _stream(labeled):
    batches = stream_batches(labeled, count=NUM_BATCHES, seed=11)
    return [
        ChangeBatch(
            batch_id=f"{index:06d}",
            changes=changes,
            payload=encode_batch(f"{index:06d}", changes),
        )
        for index, changes in enumerate(batches)
    ]


def _run_arm(snapshot, batches, options, tmp_path, tag, scrape_every=0):
    """One daemon run; returns per-batch seconds (pop -> done callback)."""
    clock = time.perf_counter
    latencies = []
    done = {"count": 0}

    def on_done(daemon, batch, ok):
        latencies.append(clock() - on_done.started)
        done["count"] += 1
        if scrape_every and done["count"] % scrape_every == 0:
            for endpoint in ("/metrics", "/health"):
                with urlopen(
                    daemon.obs_server.url + endpoint, timeout=5.0
                ) as response:
                    response.read()

    daemon = ServeDaemon(
        RealConfig(snapshot),
        iter(batches),
        DeadLetterBox(tmp_path / f"dl-{tag}"),
        options,
        sleep=lambda seconds: None,
        on_batch_done=on_done,
    )
    original_process = daemon._process_batch

    def timed_process(batch):
        on_done.started = clock()
        return original_process(batch)

    daemon._process_batch = timed_process
    stats = daemon.run()
    assert stats.batches_ok == len(batches)
    return latencies


def test_obs_overhead(fattree, tmp_path):
    snapshot = ospf_snapshot(fattree)
    batches = _stream(fattree)

    off_options = ServeOptions(
        max_retries=0, breaker_threshold=0, backoff_base=0.0
    )
    on_options = ServeOptions(
        max_retries=0,
        breaker_threshold=0,
        backoff_base=0.0,
        journal_file=tmp_path / "journal.jsonl",
        obs_port=0,
    )

    # Interleave arms best-of-3 so drifting host load hits both equally.
    off_runs, on_runs = [], []
    for attempt in range(3):
        off_runs.append(
            _run_arm(snapshot, batches, off_options, tmp_path,
                     f"off-{attempt}")
        )
        on_runs.append(
            _run_arm(snapshot, batches, on_options, tmp_path,
                     f"on-{attempt}", scrape_every=max(1, NUM_BATCHES // 4))
        )
    off_median = min(statistics.median(run) for run in off_runs)
    on_median = min(statistics.median(run) for run in on_runs)
    overhead = (on_median / off_median - 1.0) * 100.0

    record_row(
        "Observability overhead: per-batch medians (best of 3)",
        f"obs off {off_median * 1000:7.2f} ms | "
        f"journal+recorder+server on {on_median * 1000:7.2f} ms | "
        f"overhead {overhead:+6.2f}%",
    )

    payload = {
        "benchmark": "obs-overhead",
        "topology": f"fat-tree:{SCALE_K}",
        "nodes": fattree.topology.num_nodes(),
        "batches": NUM_BATCHES,
        "repeats": 3,
        "statistic": "best-of-3 per-batch median",
        "obs_off_median_seconds": off_median,
        "obs_on_median_seconds": on_median,
        "overhead_percent": overhead,
        "bar_percent": MAX_OVERHEAD_PERCENT,
        "obs_on_configuration": (
            "file journal (flushed per event) + flight recorder + "
            "introspection server scraped (/metrics, /health) every "
            f"{max(1, NUM_BATCHES // 4)} batches"
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    record_row(
        "Observability overhead: per-batch medians (best of 3)",
        f"wrote {OUTPUT.name} (bar: {MAX_OVERHEAD_PERCENT:.1f}%)",
    )

    assert overhead < MAX_OVERHEAD_PERCENT, (
        f"obs stack costs {overhead:.2f}% per batch "
        f"(bar {MAX_OVERHEAD_PERCENT:.1f}%)"
    )
