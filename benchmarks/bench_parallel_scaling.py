"""Parallel scaling — end-to-end verification time vs worker count.

Sweeps ``RealConfig(workers=N)`` for N in {1, 2, 4, 8} over a warm
link-flap workload on the scale-curve topology and records the speedup
against the serial pipeline in ``BENCH_parallel.json`` (committed at the
repo root, and the series behind EXPERIMENTS.md's scaling table).

Read the numbers honestly: the serial arm is the shipped transactional
pipeline, which deep-copies the full pipeline state before every
verification and re-classifies after every rule update.  The parallel
arm's win is therefore architectural as much as it is parallel — the
deferred-commit protocol needs no eager capture and the staged batch
reclassifies each affected (device, EC) once.  On a single-core host
(like this container) that is *all* of the win, and N=2 typically beats
N=4 because every replica replays phase A; on a multi-core host the
sharded phase B and policy re-check scale on top of it.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from benchmarks.conftest import SCALE_K, record_row
from repro.config.changes import EnableInterface
from repro.core.realconfig import RealConfig
from repro.net.topologies import fat_tree
from repro.policy.spec import BlackholeFree, LoopFree
from repro.workloads import link_failures, ospf_snapshot

WORKER_COUNTS = (1, 2, 4, 8)
FLAPS = 3
REPEATS = 3
OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
#: The acceptance bar, calibrated to the full-scale topology (SCALE_K=6).
#: CI smoke runs at REPRO_FATTREE_K=4, where per-verification work is too
#: small for the bar to be meaningful, and relaxes it via this env var.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _flap_workload(verifier, flaps):
    """One pass over the workload; returns per-verification seconds."""
    samples = []
    for change in flaps:
        for step in (change, EnableInterface(change.device, change.interface)):
            started = time.perf_counter()
            delta = verifier.apply_change(step)
            samples.append(time.perf_counter() - started)
            assert delta.ok
    return samples


def test_parallel_scaling():
    labeled = fat_tree(SCALE_K)
    snapshot = ospf_snapshot(labeled)
    flaps = link_failures(labeled, seed=17)[:FLAPS]
    results = {}
    for workers in WORKER_COUNTS:
        verifier = RealConfig(
            snapshot,
            policies=[LoopFree("loop-free"), BlackholeFree("blackhole-free")],
            workers=workers,
        )
        try:
            _flap_workload(verifier, flaps)  # warm the pool and the caches
            samples = []
            for _ in range(REPEATS):
                samples.extend(_flap_workload(verifier, flaps))
        finally:
            verifier.close()
        results[workers] = {
            "mean_seconds": statistics.mean(samples),
            "median_seconds": statistics.median(samples),
            "max_seconds": max(samples),
            "verifications": len(samples),
        }

    # Speedups come from medians: on a loaded (or single-core) host an
    # occasional scheduler stall lands in one gather and wrecks the mean
    # of 18 samples, while the steady-state per-verification cost is what
    # a serving deployment actually sees.  Both statistics are recorded.
    serial = results[1]["median_seconds"]
    for workers in WORKER_COUNTS:
        entry = results[workers]
        entry["speedup"] = serial / entry["median_seconds"]
        record_row(
            "Parallel scaling: warm verification time vs workers",
            f"workers={workers:2d} | mean {entry['mean_seconds'] * 1000:7.1f} ms"
            f" | median {entry['median_seconds'] * 1000:7.1f} ms"
            f" | speedup {entry['speedup']:5.2f}x",
        )

    payload = {
        "benchmark": "parallel-scaling",
        "topology": f"fat-tree:{SCALE_K}",
        "nodes": labeled.topology.num_nodes(),
        "protocol": "ospf",
        "workload": f"{FLAPS} link flap pairs x {REPEATS} repeats, warm",
        "workers": {str(w): results[w] for w in WORKER_COUNTS},
        "speedup_at_4_workers": results[4]["speedup"],
        "speedup_statistic": "median",
        "note": (
            "single-core hosts: the win comes from the deferred-commit "
            "protocol (no eager state capture) and net-effect batching, "
            "not from true core parallelism; see benchmarks docstring"
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    record_row(
        "Parallel scaling: warm verification time vs workers",
        f"wrote {OUTPUT.name} (speedup at 4 workers: "
        f"{payload['speedup_at_4_workers']:.2f}x)",
    )

    # The acceptance bar: the parallel path must at least double
    # end-to-end throughput at 4 workers.
    assert payload["speedup_at_4_workers"] >= MIN_SPEEDUP
