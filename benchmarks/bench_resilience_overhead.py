"""Resilience overhead — what the commit protocol and checkpoints cost.

Transactional verification captures every component's state before each
change batch (engine operator histories, EC partition, port maps, policy
analyses), so its cost scales with total state size, not with the size of
the change.  This bench reports the transactional-vs-raw incremental
verification medians, plus checkpoint write/restore time and the on-disk
size — the numbers the "Resilience" docs section quotes.
"""

from __future__ import annotations

import json
import os
import pickle
import statistics
import tempfile
from pathlib import Path

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row, time_call
from repro.core.realconfig import RealConfig
from repro.resilience.checkpoint import write_checkpoint
from repro.workloads import link_failures, ospf_snapshot

CHAOS_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"
MAX_DURABILITY_OVERHEAD_PERCENT = float(
    os.environ.get("REPRO_BENCH_MAX_CHAOS_OVERHEAD", "5.0")
)


def _run_workload(verifier, changes):
    samples = []
    for change in changes:
        inverse = change.invert(verifier.snapshot)
        delta = verifier.apply_change(change)
        samples.append(delta.timings.total)
        verifier.apply_change(inverse)
    return samples


def test_transaction_overhead(fattree):
    snapshot = ospf_snapshot(fattree)
    changes = link_failures(fattree, seed=21)[:NUM_CHANGES]

    raw = RealConfig(snapshot, transactional=False)
    _run_workload(raw, changes)  # warm up caches/allocator
    off = _run_workload(raw, changes)

    transactional = RealConfig(snapshot, transactional=True)
    _run_workload(transactional, changes)
    on = _run_workload(transactional, changes)

    off_median = statistics.median(off)
    on_median = statistics.median(on)
    record_row(
        "Resilience overhead: incremental verification medians",
        f"transactions off {off_median * 1000:7.2f}ms | "
        f"on {on_median * 1000:7.2f}ms | "
        f"ratio {on_median / off_median:5.2f}x",
    )
    # State capture is pure-python dict/set copying of the whole pipeline
    # state; it legitimately dominates small-change verifications, but it
    # must stay within an order of magnitude of the raw pipeline (a
    # regression here means a deep copy landed on a per-record path).
    assert on_median < off_median * 15 + 0.1


def test_checkpoint_round_trip(fattree, tmp_path):
    snapshot = ospf_snapshot(fattree)
    verifier = RealConfig(snapshot)
    path = tmp_path / "bench.ckpt"

    write_seconds = time_call(lambda: verifier.checkpoint(path))
    size = path.stat().st_size
    restored = {}
    restore_seconds = time_call(
        lambda: restored.setdefault("v", RealConfig.restore(path))
    )
    initial_seconds = verifier.initial.timings.total
    record_row(
        "Checkpoint round trip",
        f"write {write_seconds * 1000:7.1f}ms | "
        f"restore {restore_seconds * 1000:7.1f}ms | "
        f"{size / 1024:8.1f} KiB | "
        f"vs from-scratch convergence {initial_seconds * 1000:7.1f}ms",
    )
    assert restored["v"].model.num_ecs() == verifier.model.num_ecs()
    # Restoring must beat re-converging from scratch (that is its point).
    assert restore_seconds < initial_seconds * 2 + 0.5


def _raw_pickle_write(verifier, path: Path) -> None:
    """The pre-hardening write: same payload, same tmp+fsync+replace
    dance, but no digest, no generation ring, no manifest.  This is the
    honest baseline the durability features are charged against."""
    payload = {
        "format": "repro-checkpoint",
        "version": 1,
        "snapshot": verifier.snapshot,
        "options": dict(verifier._options),
        "generator": verifier.generator.capture_state(),
        "model": verifier.model.capture_state(),
        "checker": verifier.checker.capture_state(),
        "lint_result": verifier._lint_result,
        "initial": verifier.initial,
        "extras": {},
        "extras_version": 1,
    }
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    with os.fdopen(fd, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_name, path)


def test_durability_overhead(fattree, tmp_path):
    """What the chaos hardening costs per checkpoint write: the sha256
    envelope alone (keep=1), then envelope + generation ring + manifest
    (keep=3).  Target: under ``REPRO_BENCH_MAX_CHAOS_OVERHEAD`` percent
    (default 5) over the raw pickle write."""
    snapshot = ospf_snapshot(fattree)
    verifier = RealConfig(snapshot)
    repeats = 9

    raw, envelope, ring = [], [], []
    # Interleave the arms so page-cache and allocator drift hit all three;
    # best-of-N is the statistic because a loaded host's scheduler stalls
    # (2x spikes are routine in CI) land in medians at this sample count.
    for i in range(repeats):
        raw.append(time_call(
            lambda: _raw_pickle_write(verifier, tmp_path / "raw.ckpt")
        ))
        envelope.append(time_call(
            lambda: write_checkpoint(
                verifier, tmp_path / "envelope.ckpt", keep=1
            )
        ))
        ring.append(time_call(
            lambda: write_checkpoint(verifier, tmp_path / "ring.ckpt")
        ))

    raw_best = min(raw)
    envelope_best = min(envelope)
    ring_best = min(ring)
    checksum_overhead = (envelope_best / raw_best - 1.0) * 100.0
    ring_overhead = (ring_best / raw_best - 1.0) * 100.0
    size = (tmp_path / "ring.ckpt").stat().st_size

    record_row(
        "Durability overhead: checkpoint write (best of 9)",
        f"raw pickle {raw_best * 1000:7.2f}ms | "
        f"+sha256 envelope {envelope_best * 1000:7.2f}ms "
        f"({checksum_overhead:+5.2f}%) | "
        f"+generation ring {ring_best * 1000:7.2f}ms "
        f"({ring_overhead:+5.2f}%)",
    )

    payload = {
        "benchmark": "chaos-durability-overhead",
        "topology": f"fat-tree:{SCALE_K}",
        "nodes": fattree.topology.num_nodes(),
        "repeats": repeats,
        "statistic": "best-of-9 per-write, arms interleaved",
        "checkpoint_bytes": size,
        "raw_write_best_seconds": raw_best,
        "envelope_write_best_seconds": envelope_best,
        "ring_write_best_seconds": ring_best,
        "checksum_overhead_percent": checksum_overhead,
        "ring_overhead_percent": ring_overhead,
        "bar_percent": MAX_DURABILITY_OVERHEAD_PERCENT,
        "configuration": (
            "raw = pickle + tmp/fsync/replace; envelope = sha256 "
            "checksummed envelope, keep=1; ring = envelope + 3-generation "
            "ring (hardlink rotate) + manifest"
        ),
    }
    CHAOS_OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    record_row(
        "Durability overhead: checkpoint write (best of 9)",
        f"wrote {CHAOS_OUTPUT.name} "
        f"(bar: {MAX_DURABILITY_OVERHEAD_PERCENT:.1f}%)",
    )

    assert ring_overhead < MAX_DURABILITY_OVERHEAD_PERCENT, (
        f"durability hardening costs {ring_overhead:.2f}% per checkpoint "
        f"write (bar {MAX_DURABILITY_OVERHEAD_PERCENT:.1f}%)"
    )
