"""Resilience overhead — what the commit protocol and checkpoints cost.

Transactional verification captures every component's state before each
change batch (engine operator histories, EC partition, port maps, policy
analyses), so its cost scales with total state size, not with the size of
the change.  This bench reports the transactional-vs-raw incremental
verification medians, plus checkpoint write/restore time and the on-disk
size — the numbers the "Resilience" docs section quotes.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import NUM_CHANGES, record_row, time_call
from repro.core.realconfig import RealConfig
from repro.workloads import link_failures, ospf_snapshot


def _run_workload(verifier, changes):
    samples = []
    for change in changes:
        inverse = change.invert(verifier.snapshot)
        delta = verifier.apply_change(change)
        samples.append(delta.timings.total)
        verifier.apply_change(inverse)
    return samples


def test_transaction_overhead(fattree):
    snapshot = ospf_snapshot(fattree)
    changes = link_failures(fattree, seed=21)[:NUM_CHANGES]

    raw = RealConfig(snapshot, transactional=False)
    _run_workload(raw, changes)  # warm up caches/allocator
    off = _run_workload(raw, changes)

    transactional = RealConfig(snapshot, transactional=True)
    _run_workload(transactional, changes)
    on = _run_workload(transactional, changes)

    off_median = statistics.median(off)
    on_median = statistics.median(on)
    record_row(
        "Resilience overhead: incremental verification medians",
        f"transactions off {off_median * 1000:7.2f}ms | "
        f"on {on_median * 1000:7.2f}ms | "
        f"ratio {on_median / off_median:5.2f}x",
    )
    # State capture is pure-python dict/set copying of the whole pipeline
    # state; it legitimately dominates small-change verifications, but it
    # must stay within an order of magnitude of the raw pipeline (a
    # regression here means a deep copy landed on a per-record path).
    assert on_median < off_median * 15 + 0.1


def test_checkpoint_round_trip(fattree, tmp_path):
    snapshot = ospf_snapshot(fattree)
    verifier = RealConfig(snapshot)
    path = tmp_path / "bench.ckpt"

    write_seconds = time_call(lambda: verifier.checkpoint(path))
    size = path.stat().st_size
    restored = {}
    restore_seconds = time_call(
        lambda: restored.setdefault("v", RealConfig.restore(path))
    )
    initial_seconds = verifier.initial.timings.total
    record_row(
        "Checkpoint round trip",
        f"write {write_seconds * 1000:7.1f}ms | "
        f"restore {restore_seconds * 1000:7.1f}ms | "
        f"{size / 1024:8.1f} KiB | "
        f"vs from-scratch convergence {initial_seconds * 1000:7.1f}ms",
    )
    assert restored["v"].model.num_ecs() == verifier.model.num_ecs()
    # Restoring must beat re-converging from scratch (that is its point).
    assert restore_seconds < initial_seconds * 2 + 0.5
