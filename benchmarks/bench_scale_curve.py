"""Scaling curve — where incrementality starts to pay.

Not a single table in the paper, but the quantitative backbone of its
argument (§2): full recomputation grows superlinearly with network size
while a change's blast radius does not, so the incremental advantage grows
with scale.  This bench sweeps fat-tree arities and reports, per protocol,
the engine's full time, the mean incremental LinkFailure time, and the
ratio — the series behind EXPERIMENTS.md's scale table.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import record_row, time_call
from repro.config.changes import apply_changes
from repro.net.topologies import fat_tree
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, link_failures, ospf_snapshot

ARITIES = (2, 4, 6)
CHANGES_PER_POINT = 3


@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
def test_scale_curve(benchmark, protocol):
    rows = []
    for k in ARITIES:
        labeled = fat_tree(k)
        snapshot = (
            ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
        )
        control_plane = ControlPlane()
        full_seconds = time_call(lambda: control_plane.update_to(snapshot))
        samples = []
        for change in link_failures(labeled, seed=17)[:CHANGES_PER_POINT]:
            changed, _ = apply_changes(snapshot, [change])
            samples.append(
                time_call(lambda: control_plane.update_to(changed))
            )
            control_plane.update_to(snapshot)
        incremental = statistics.mean(samples)
        speedup = full_seconds / incremental if incremental else float("inf")
        rows.append((k, full_seconds, incremental, speedup))
        record_row(
            "Scale curve: engine full vs incremental LinkFailure",
            f"{protocol.upper():5s} k={k:2d} "
            f"({labeled.topology.num_nodes():3d} nodes) | "
            f"full {full_seconds:7.3f}s | incremental {incremental:7.4f}s | "
            f"speedup {speedup:6.1f}x",
        )

    # The advantage must grow with scale.
    speedups = [row[3] for row in rows]
    assert speedups[-1] > speedups[0]

    # Benchmark the largest point's incremental update.
    labeled = fat_tree(ARITIES[-1])
    snapshot = (
        ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
    )
    control_plane = ControlPlane()
    control_plane.update_to(snapshot)
    changed, _ = apply_changes(snapshot, [link_failures(labeled, seed=18)[0]])
    state = {"flip": False}

    def setup():
        target = changed if not state["flip"] else snapshot
        state["flip"] = not state["flip"]
        return (target,), {}

    benchmark.pedantic(control_plane.update_to, setup=setup, rounds=4, iterations=1)
