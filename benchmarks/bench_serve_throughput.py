"""Serving throughput — what the fault-tolerance machinery costs.

The serving loop wraps each batch in a deadline, a retry policy, breaker
bookkeeping, telemetry spans, and (optionally) periodic checkpoints and
health writes.  This bench streams the same flap workload through a bare
verifier loop and through :class:`~repro.serve.daemon.ServeDaemon` with
robustness features off and on, reporting batches/sec and per-batch
p50/p99 latency — the number the "Serving & fault tolerance" docs section
quotes when it claims the daemon's overhead is noise next to verification
itself.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import NUM_CHANGES, record_row
from repro.core.realconfig import RealConfig
from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions
from repro.serve.stream import ChangeBatch, encode_batch
from repro.workloads import ospf_snapshot, stream_batches

#: Batches per configuration (flap pairs keep the stream applicable).
NUM_BATCHES = max(10, NUM_CHANGES * 4)


def _stream(labeled):
    batches = stream_batches(labeled, count=NUM_BATCHES, seed=11)
    return [
        ChangeBatch(
            batch_id=f"{index:06d}",
            changes=changes,
            payload=encode_batch(f"{index:06d}", changes),
        )
        for index, changes in enumerate(batches)
    ]


def _percentiles(samples):
    ordered = sorted(samples)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _run_daemon(snapshot, batches, options, tmp_path, tag):
    latencies = []
    clock = time.perf_counter

    def sample(daemon, batch, ok):
        latencies.append(clock() - sample.started)

    def stamp(daemon=None, batch=None, ok=None):
        sample.started = clock()

    daemon = ServeDaemon(
        RealConfig(snapshot),
        iter(batches),
        DeadLetterBox(tmp_path / f"dl-{tag}"),
        options,
        sleep=lambda seconds: None,
        on_batch_done=sample,
    )
    # Time the whole run for throughput; per-batch latency is measured
    # from each batch's pop to its completion callback.
    original_process = daemon._process_batch

    def timed_process(batch):
        stamp()
        return original_process(batch)

    daemon._process_batch = timed_process
    started = clock()
    stats = daemon.run()
    elapsed = clock() - started
    assert stats.batches_ok == len(batches)
    return elapsed, latencies


def test_serve_throughput(fattree, tmp_path):
    snapshot = ospf_snapshot(fattree)
    batches = _stream(fattree)

    # Baseline: the verifier loop with no serving machinery at all.
    bare = RealConfig(snapshot)
    bare_latencies = []
    started = time.perf_counter()
    for batch in batches:
        t0 = time.perf_counter()
        bare.apply_changes(batch.changes)
        bare_latencies.append(time.perf_counter() - t0)
    bare_elapsed = time.perf_counter() - started

    plain = ServeOptions(
        max_retries=0, breaker_threshold=0, backoff_base=0.0
    )
    robust = ServeOptions(
        deadline_seconds=30.0,
        max_retries=2,
        breaker_threshold=3,
        backoff_base=0.0,
        audit_every=0,
        checkpoint_every=NUM_BATCHES // 2,
        checkpoint_file=tmp_path / "serve.ckpt",
        health_file=tmp_path / "health.json",
    )
    plain_elapsed, plain_latencies = _run_daemon(
        snapshot, batches, plain, tmp_path, "plain"
    )
    robust_elapsed, robust_latencies = _run_daemon(
        snapshot, batches, robust, tmp_path, "robust"
    )

    for tag, elapsed, latencies in (
        ("bare verifier loop", bare_elapsed, bare_latencies),
        ("daemon, robustness off", plain_elapsed, plain_latencies),
        ("daemon, robustness on", robust_elapsed, robust_latencies),
    ):
        p50, p99 = _percentiles(latencies)
        record_row(
            "Serving throughput (flap stream)",
            f"{tag:24s} | {len(batches) / elapsed:8.1f} batches/s | "
            f"p50 {p50 * 1000:7.2f}ms | p99 {p99 * 1000:7.2f}ms",
        )

    # The serving wrapper (queue + spans + breaker bookkeeping) must not
    # dominate verification; health/checkpoint writes are bounded I/O.
    assert plain_elapsed < bare_elapsed * 3 + 1.0
    assert robust_elapsed < bare_elapsed * 5 + 2.0
