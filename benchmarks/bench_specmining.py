"""§2 / §5 — specification mining: incremental vs from-scratch data plane
generation across network conditions.

The paper: "incremental data plane generation for link failures is 20x
faster than non-incremental data plane generation".  The comparison is
engine-incremental vs engine-from-scratch (RealConfig Full per condition);
we also report the domain-specific baseline sweep for context (Config2Spec
uses Batfish the same way).

Sweep size is capped by REPRO_SWEEP_LIMIT (default 12) so the
from-scratch-engine arm stays tractable; the speedup is per-condition, so
the cap does not bias the ratio.
"""

from __future__ import annotations

import time


from benchmarks.conftest import SWEEP_LIMIT, record_row
from repro.config.changes import apply_changes
from repro.routing.program import ControlPlane
from repro.workloads import ospf_snapshot
from repro.workloads.specmining import (
    from_scratch_sweep,
    incremental_sweep,
)


def engine_scratch_sweep(labeled, snapshot, limit):
    """The paper's non-incremental arm: a fresh engine evaluation of every
    condition (RealConfig Full, per link failure)."""
    from repro.workloads.specmining import SweepResult, _conditions, _signature

    result = SweepResult(mode="engine-from-scratch")
    conditions = _conditions(labeled)[:limit]
    started = time.perf_counter()
    for label, failure in conditions:
        failed, _ = apply_changes(snapshot, [failure])
        control_plane = ControlPlane()
        control_plane.update_to(failed)
        result.fib_signatures[label] = _signature(
            frozenset(control_plane.fib())
        )
        result.conditions += 1
    result.total_seconds = time.perf_counter() - started
    return result


def test_specmining_sweep(benchmark, fattree):
    snapshot = ospf_snapshot(fattree)

    incremental = incremental_sweep(fattree, snapshot, limit=SWEEP_LIMIT)
    scratch_engine = engine_scratch_sweep(fattree, snapshot, SWEEP_LIMIT)
    scratch_baseline = from_scratch_sweep(fattree, snapshot, limit=SWEEP_LIMIT)

    # All three arms must compute identical data planes per condition.
    assert incremental.fib_signatures == scratch_engine.fib_signatures
    assert incremental.fib_signatures == scratch_baseline.fib_signatures

    speedup = (
        scratch_engine.per_condition_seconds
        / incremental.per_condition_seconds
    )
    record_row(
        "Spec mining: all-single-link-failure sweep (OSPF)",
        f"incremental        {incremental.per_condition_seconds*1000:8.1f} ms/condition",
    )
    record_row(
        "Spec mining: all-single-link-failure sweep (OSPF)",
        f"engine from-scratch {scratch_engine.per_condition_seconds*1000:7.1f} ms/condition"
        f"  -> speedup {speedup:5.1f}x (paper: ~20x at k=12)",
    )
    record_row(
        "Spec mining: all-single-link-failure sweep (OSPF)",
        f"Batfish-role sweep  {scratch_baseline.per_condition_seconds*1000:7.1f} ms/condition"
        f" (domain-specific baseline, for context)",
    )

    benchmark.extra_info["speedup_vs_engine_scratch"] = speedup
    # Benchmark one incremental condition (fail + restore).
    control_plane = ControlPlane()
    control_plane.update_to(snapshot)
    from repro.workloads.specmining import _conditions

    _, failure = _conditions(fattree)[0]
    failed, _ = apply_changes(snapshot, [failure])
    state = {"flip": False}

    def setup():
        target = failed if not state["flip"] else snapshot
        state["flip"] = not state["flip"]
        return (target,), {}

    benchmark.pedantic(control_plane.update_to, setup=setup, rounds=6, iterations=1)

    # The paper's claim direction: incremental wins by a wide margin.
    assert speedup > 3.0
