"""Table 2 — average data plane generation time.

Paper (fat-tree k=12):

    Protocol | Batfish Full | RealConfig Full | LinkFailure     | LC/LP
    OSPF     | 7.13 s       | 36.11 s         | 0.39 s (1.1 %)  | 0.39 s (1.1 %)
    BGP      | 3.81 s       | 3.92 s          | 0.19 s (4.8 %)  | 0.12 s (3.1 %)

Shape to reproduce: the domain-specific from-scratch baseline ("Batfish")
beats the general-purpose engine on full computation, but the engine's
*incremental* updates are a few percent of its own full time.

The pytest-benchmark entries time the incremental update (one change
forward; the state is reset between rounds via a rollback performed in the
setup, outside the timed region).  The printed table additionally reports
full-computation times measured once per protocol.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import NUM_CHANGES, record_row, time_call
from repro.baseline import simulate
from repro.config.changes import apply_changes
from repro.routing.program import ControlPlane
from repro.workloads import (
    bgp_snapshot,
    lc_changes,
    link_failures,
    lp_changes,
    ospf_snapshot,
)


def _measure_protocol(labeled, protocol):
    snapshot = (
        ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
    )
    batfish_full = time_call(lambda: simulate(snapshot))

    control_plane = ControlPlane()
    engine_full = time_call(lambda: control_plane.update_to(snapshot))

    def incremental_times(changes):
        times = []
        for change in changes[:NUM_CHANGES]:
            changed, _ = apply_changes(snapshot, [change])
            times.append(time_call(lambda: control_plane.update_to(changed)))
            control_plane.update_to(snapshot)  # roll back (not timed)
        return times

    failures = incremental_times(link_failures(labeled, seed=1))
    if protocol == "ospf":
        tweaks = incremental_times(lc_changes(labeled, seed=2))
    else:
        tweaks = incremental_times(lp_changes(labeled, seed=2))
    return batfish_full, engine_full, failures, tweaks


@pytest.mark.parametrize("protocol", ["ospf", "bgp"])
def test_table2_generation(benchmark, fattree, protocol):
    batfish_full, engine_full, failures, tweaks = _measure_protocol(
        fattree, protocol
    )
    mean_failure = statistics.mean(failures)
    mean_tweak = statistics.mean(tweaks)

    label = "LC" if protocol == "ospf" else "LP"
    record_row(
        "Table 2: average data plane generation time",
        f"{protocol.upper():5s} | Batfish Full {batfish_full:7.2f}s | "
        f"RealConfig Full {engine_full:7.2f}s | "
        f"LinkFailure {mean_failure:6.3f}s ({100 * mean_failure / engine_full:4.1f}%) | "
        f"{label} {mean_tweak:6.3f}s ({100 * mean_tweak / engine_full:4.1f}%)",
    )

    # Benchmark the incremental LinkFailure update (forward step timed; the
    # rollback happens in setup).
    snapshot = (
        ospf_snapshot(fattree) if protocol == "ospf" else bgp_snapshot(fattree)
    )
    control_plane = ControlPlane()
    control_plane.update_to(snapshot)
    changed, _ = apply_changes(snapshot, [link_failures(fattree, seed=7)[0]])

    def setup():
        control_plane.update_to(snapshot)
        return (), {}

    benchmark.extra_info["full_seconds"] = engine_full
    benchmark.extra_info["batfish_seconds"] = batfish_full
    benchmark.pedantic(
        lambda: control_plane.update_to(changed),
        setup=setup,
        rounds=3,
        iterations=1,
    )

    # The headline claims: incremental beats full recomputation massively.
    assert mean_failure < engine_full / 2
    assert mean_tweak < engine_full / 2
