"""Table 3 — model update and policy checking (fat tree running BGP).

Paper (k=12):

    Change      | #Rules         | Order | #ECs | T1   | #Pairs       | T2
    LinkFailure | +26/-28 (0.32%)| +,-   | 28   | 3ms  | 286/10224    | 58ms
                |                | -,+   | 54   | 10ms | (2.79%)      |
    LP          | +54/-54 (0.64%)| +,-   | 54   | 6ms  | 132/10224    | 61ms
                |                | -,+   | 108  | 20ms | (1.29%)      |

Shape to reproduce: (a) well under 1-5 % of rules/pairs affected, (b)
deletion-first ("-,+") needs more EC moves and more time than
insertion-first ("+,-"), (c) model update + policy check well under the
generation time.

The model runs in APKeep's strict-priority mode, which is what produces the
paper's order asymmetry; #Pairs counts ordered pairs of prefix-originating
(edge) nodes, matching the paper's 10224 = 72 x 71 x 2 at k=12.
"""

from __future__ import annotations

import statistics
import time

import pytest

from benchmarks.conftest import NUM_CHANGES, SCALE_K, record_row
from repro.config.changes import apply_changes
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import updates_from_fib
from repro.policy.checker import IncrementalChecker
from repro.routing.program import ControlPlane
from repro.workloads import bgp_snapshot, link_failures, lp_changes
from repro.workloads import ospf_snapshot


def _pipeline(labeled, protocol, order):
    snapshot = (
        ospf_snapshot(labeled) if protocol == "ospf" else bgp_snapshot(labeled)
    )
    control_plane = ControlPlane()
    fib_delta = control_plane.update_to(snapshot)
    model = NetworkModel(labeled.topology, mode="priority")
    updater = BatchUpdater(model, order)
    updater.apply(updates_from_fib(fib_delta.inserted, fib_delta.deleted))
    checker = IncrementalChecker(model, sorted(labeled.host_prefixes))
    return snapshot, control_plane, model, updater, checker


def _run_changes(labeled, protocol, order, changes):
    snapshot, control_plane, model, updater, checker = _pipeline(
        labeled, protocol, order
    )
    total_rules = model.num_rules()
    total_pairs = checker.total_pairs()
    rows = []
    for change in changes[:NUM_CHANGES]:
        changed, _ = apply_changes(snapshot, [change])
        fib_delta = control_plane.update_to(changed)
        updates = updates_from_fib(fib_delta.inserted, fib_delta.deleted)

        started = time.perf_counter()
        batch = updater.apply(updates)
        t1 = time.perf_counter() - started

        started = time.perf_counter()
        report = checker.check_batch(batch)
        t2 = time.perf_counter() - started

        rows.append(
            {
                "inserts": batch.num_inserts,
                "deletes": batch.num_deletes,
                "moves": batch.num_moves,
                "t1": t1,
                "pairs": len(report.affected_pairs),
                "t2": t2,
            }
        )
        # Roll back for the next change (not measured).
        rollback = control_plane.update_to(snapshot)
        back = updater.apply(updates_from_fib(rollback.inserted, rollback.deleted))
        checker.check_batch(back)
    return rows, total_rules, total_pairs


CASES = [
    ("bgp", "LinkFailure", lambda labeled: link_failures(labeled, seed=3)),
    # LP sampled on edge (ToR) uplinks, where import preference changes the
    # selected paths (matching the paper's non-trivial +54/-54 batches).
    ("bgp", "LP", lambda labeled: lp_changes(labeled, seed=4, roles=("edge",))),
]


@pytest.mark.parametrize("protocol,kind,gen", CASES, ids=["linkfailure", "lp"])
@pytest.mark.parametrize("order", ["insertion-first", "deletion-first"])
def test_table3_model_update(benchmark, fattree, protocol, kind, gen, order):
    changes = gen(fattree)
    rows, total_rules, total_pairs = _run_changes(
        fattree, protocol, order, changes
    )
    mean = lambda key: statistics.mean(r[key] for r in rows)
    rule_pct = 100 * (mean("inserts") + mean("deletes")) / max(total_rules, 1)
    pair_pct = 100 * mean("pairs") / max(total_pairs, 1)
    sign = "+,-" if order == "insertion-first" else "-,+"
    record_row(
        "Table 3: model update and policy checking (BGP)",
        f"{kind:12s} | +{mean('inserts'):5.1f}/-{mean('deletes'):5.1f} rules "
        f"({rule_pct:4.2f}%) | {sign} | {mean('moves'):6.1f} ECs | "
        f"T1 {mean('t1') * 1000:6.1f}ms | "
        f"{mean('pairs'):6.1f}/{total_pairs} pairs ({pair_pct:4.2f}%) | "
        f"T2 {mean('t2') * 1000:6.1f}ms",
    )

    # Benchmark one full model-update + check round trip.
    snapshot, control_plane, model, updater, checker = _pipeline(
        fattree, protocol, order
    )
    changed, _ = apply_changes(snapshot, [changes[0]])
    state = {"flip": False}

    def target(updates):
        batch = updater.apply(updates)
        checker.check_batch(batch)

    def setup_toggle():
        # Toggle between the changed and original snapshots so every round
        # applies a same-sized batch (the rollback happens here, untimed).
        target_snapshot = changed if not state["flip"] else snapshot
        state["flip"] = not state["flip"]
        fib_delta = control_plane.update_to(target_snapshot)
        return (updates_from_fib(fib_delta.inserted, fib_delta.deleted),), {}

    benchmark.extra_info["total_rules"] = total_rules
    benchmark.extra_info["total_pairs"] = total_pairs
    benchmark.pedantic(target, setup=setup_toggle, rounds=4, iterations=1)

    # Shape assertions.  The pair fraction is scale-dependent (an edge
    # uplink's preference change touches ECs delivered among most edges at
    # small k; the paper's 1.29-2.79 % emerges at k=12), so the tight bound
    # applies only at paper-like scales.
    assert rule_pct < 25.0
    assert 0 < mean("pairs") <= total_pairs
    if SCALE_K >= 10:
        assert pair_pct < 10.0
