"""Telemetry overhead — the no-op default must stay out of the hot path.

Every stage of the pipeline is instrumented with spans and counters that
dispatch through process-global no-op defaults.  This bench verifies the
acceptance bound of the telemetry PR: with tracing off, incremental
verification medians stay within a few percent of an uninstrumented
pipeline (measured here as traced-vs-untraced, since the uninstrumented
code no longer exists), and reports what full tracing + metrics costs.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import NUM_CHANGES, record_row
from repro.core.realconfig import RealConfig
from repro.telemetry import MetricsRegistry, Tracer, set_metrics, set_tracer
from repro.workloads import link_failures, ospf_snapshot


def _run_workload(verifier, changes):
    samples = []
    for change in changes:
        inverse = change.invert(verifier.snapshot)
        delta = verifier.apply_change(change)
        samples.append(delta.timings.total)
        verifier.apply_change(inverse)
    return samples


def test_noop_telemetry_overhead(fattree):
    snapshot = ospf_snapshot(fattree)
    changes = link_failures(fattree, seed=21)[:NUM_CHANGES]

    verifier = RealConfig(snapshot)
    _run_workload(verifier, changes)  # warm up caches/allocator
    off = _run_workload(verifier, changes)

    tracer, registry = Tracer(), MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    try:
        on = _run_workload(verifier, changes)
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)

    off_median = statistics.median(off)
    on_median = statistics.median(on)
    record_row(
        "Telemetry overhead: incremental verification medians",
        f"tracing off {off_median * 1000:7.2f}ms | "
        f"tracing+metrics on {on_median * 1000:7.2f}ms | "
        f"ratio {on_median / off_median:5.2f}x | "
        f"{len(tracer.finished)} spans recorded",
    )
    # Full collection is allowed measurable cost; it must stay in the same
    # order of magnitude (a regression here means a span landed inside a
    # per-record loop).
    assert on_median < off_median * 2 + 0.005
