"""Multi-tenant serving — throughput, tail latency, and blast radius.

Two rounds over a zipf-skewed fleet of 100+ tenants (tiny rings, so the
numbers isolate the tenancy machinery, not verification cost):

1. **sustained** — drain the whole fleet under a memory budget far below
   the fleet's total hydrated footprint, so the LRU constantly evicts and
   rehydrates (the p99 serve latency is dominated by checkpoint
   restores, which is exactly the tail multi-tenancy adds);
2. **fault round** — poison one tenant's stream and kill-and-restart the
   service mid-drain; the fleet must finish with exactly one degraded
   tenant and everyone else fully committed.

Results land in ``BENCH_tenants.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from benchmarks.conftest import record_row
from repro.serve.engine import ServeOptions
from repro.tenants import (
    TenantRegistry,
    TenantService,
    TenantServiceOptions,
    discover_tenants,
)
from repro.workloads.tenants import build_fleet, poison_stream

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_tenants.json"

NUM_TENANTS = int(os.environ.get("REPRO_BENCH_TENANTS", "120"))
TOTAL_BATCHES = int(os.environ.get("REPRO_BENCH_TENANT_BATCHES", "360"))
ZIPF_EXPONENT = 1.1
SEED = 2020
#: Hydrated tenants the LRU budget roughly admits; far below the fleet.
BUDGET_TENANTS = int(os.environ.get("REPRO_BENCH_TENANT_BUDGET", "20"))
VICTIM = "t000"


def _per_tenant_footprint(root) -> int:
    registry = TenantRegistry(
        ServeOptions(breaker_threshold=0, backoff_base=0.0)
    )
    config = discover_tenants(root)[0]
    registry.register(config)
    registry.hydrate(config.tenant_id)
    footprint = registry.state(config.tenant_id).footprint
    registry.evict_all()
    return footprint


def _service(root, budget=0):
    return TenantService(
        root,
        TenantServiceOptions(
            serve=ServeOptions(breaker_threshold=0, backoff_base=0.0),
            memory_budget_bytes=budget,
            poll_interval=0.01,
        ),
    )


def _timed_run(service):
    """Run the service, timing every _serve_one dispatch (hydration
    included — that is the tail the LRU budget creates)."""
    latencies = []
    inner = service._serve_one

    def timed(ready):
        started = time.perf_counter()
        inner(ready)
        latencies.append(time.perf_counter() - started)

    service._serve_one = timed
    started = time.perf_counter()
    stats = service.run()
    wall = time.perf_counter() - started
    return stats, wall, latencies


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_tenant_fleet_throughput_and_blast_radius(tmp_path):
    # -- sustained round under eviction pressure -----------------------------
    root = tmp_path / "fleet"
    build_fleet(
        root,
        NUM_TENANTS,
        total_batches=TOTAL_BATCHES,
        exponent=ZIPF_EXPONENT,
        seed=SEED,
    )
    footprint = _per_tenant_footprint(root)
    budget = footprint * BUDGET_TENANTS
    service = _service(root, budget=budget)
    stats, wall, latencies = _timed_run(service)

    batches = sum(s.batches_seen for s in stats.values())
    hydrations = sum(s.hydrations for s in service.registry.states())
    evictions = sum(s.evictions for s in service.registry.states())
    assert batches >= TOTAL_BATCHES * 0.9
    assert all(s.quarantined == 0 for s in stats.values())
    # The budget really was binding: the fleet cannot fit, so the LRU
    # had to cycle tenants through their checkpoints.
    assert budget < footprint * NUM_TENANTS
    assert evictions > NUM_TENANTS - BUDGET_TENANTS
    sustained = {
        "wall_seconds": wall,
        "batches": batches,
        "batches_per_second": batches / wall,
        "serve_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "serve_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "hydrations": hydrations,
        "evictions": evictions,
        "memory_budget_bytes": budget,
        "fleet_footprint_bytes_if_all_hydrated": footprint * NUM_TENANTS,
    }

    # -- fault round: poison + kill-one-tenant restart -----------------------
    fault_root = tmp_path / "fault-fleet"
    build_fleet(
        fault_root,
        NUM_TENANTS,
        total_batches=TOTAL_BATCHES,
        exponent=ZIPF_EXPONENT,
        seed=SEED,
    )
    poison_stream(fault_root / VICTIM)
    first = _service(fault_root, budget=budget)
    first.journal.subscribe(
        lambda e: first.request_stop()
        if e.get("event") == "committed" and e.get("tenant") == VICTIM
        else None
    )
    started = time.perf_counter()
    first_stats = first.run()
    second = _service(fault_root, budget=budget)
    second_stats = second.run()
    fault_wall = time.perf_counter() - started

    degraded = second.tenants_payload()["degraded"]
    assert degraded == [VICTIM]
    survivors_ok = sum(
        first_stats[tid].batches_ok + second_stats[tid].batches_ok
        for tid in first_stats
        if tid != VICTIM
    )
    fault_batches = sum(
        first_stats[tid].batches_seen + second_stats[tid].batches_seen
        for tid in first_stats
    )
    fault = {
        "wall_seconds": fault_wall,
        "batches": fault_batches,
        "batches_per_second": fault_batches / fault_wall,
        "degraded_tenants": degraded,
        "victim_quarantined": second_stats[VICTIM].quarantined,
        "survivor_batches_ok": survivors_ok,
    }

    payload = {
        "benchmark": "tenant-fleet",
        "tenants": NUM_TENANTS,
        "total_batches": TOTAL_BATCHES,
        "zipf_exponent": ZIPF_EXPONENT,
        "budget_tenants": BUDGET_TENANTS,
        "per_tenant_footprint_bytes": footprint,
        "sustained": sustained,
        "fault_round": fault,
        "note": (
            "tiny per-tenant rings isolate tenancy overhead (scheduling, "
            "LRU checkpoint churn) from verification cost; serve latency "
            "includes rehydration when the tenant was evicted"
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    record_row(
        "multi-tenant serving (bench_tenants.py)",
        f"{NUM_TENANTS} tenants, budget {BUDGET_TENANTS}: "
        f"{sustained['batches_per_second']:.1f} batches/s, "
        f"p50 {sustained['serve_p50_ms']:.1f} ms, "
        f"p99 {sustained['serve_p99_ms']:.1f} ms, "
        f"{evictions} evictions",
    )
    record_row(
        "multi-tenant serving (bench_tenants.py)",
        f"fault round: {fault['batches_per_second']:.1f} batches/s, "
        f"degraded={degraded}, survivors committed {survivors_ok}",
    )
    assert statistics.median(latencies) >= 0  # latencies were collected
