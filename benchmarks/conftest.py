"""Benchmark configuration and the paper-style table reporter.

Scale is controlled with environment variables:

- ``REPRO_FATTREE_K`` (default 6): the fat-tree arity.  The paper uses
  k=12 (180 nodes / 864 links); the default keeps the suite interactive.
- ``REPRO_BENCH_CHANGES`` (default 5): changes averaged per change type.
- ``REPRO_SWEEP_LIMIT`` (default 12): link-failure conditions in the
  specification-mining sweep.

Each benchmark registers rows with :func:`record_row`; the tables are
printed after the pytest-benchmark summary so a run reproduces the paper's
Table 2 / Table 3 layout alongside raw timings.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List

import pytest

from repro.net.topologies import fat_tree

SCALE_K = int(os.environ.get("REPRO_FATTREE_K", "6"))
NUM_CHANGES = int(os.environ.get("REPRO_BENCH_CHANGES", "5"))
SWEEP_LIMIT = int(os.environ.get("REPRO_SWEEP_LIMIT", "12"))

#: table title -> list of already-formatted rows
_REPORT: Dict[str, List[str]] = {}


def record_row(table: str, row: str) -> None:
    _REPORT.setdefault(table, []).append(row)


def time_call(fn: Callable[[], object]) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


@pytest.fixture(scope="session")
def fattree():
    return fat_tree(SCALE_K)


@pytest.fixture(scope="session")
def scale_note():
    nodes = fat_tree(SCALE_K).topology.num_nodes()
    return f"fat-tree(k={SCALE_K}): {nodes} nodes (paper: k=12, 180 nodes)"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT:
        return
    terminalreporter.write_sep("=", "paper-style result tables")
    terminalreporter.write_line(
        f"scale: fat-tree(k={SCALE_K}) — set REPRO_FATTREE_K=12 for paper scale"
    )
    for table in sorted(_REPORT):
        terminalreporter.write_sep("-", table)
        for row in _REPORT[table]:
            terminalreporter.write_line(row)
