#!/usr/bin/env python3
"""Auditing a mixed-protocol enterprise network.

Combines three of the library's capabilities on a realistic network (OSPF
core + eBGP border + redistribution + static default + ACLs):

1. *specification mining* (paper §2): which pairs stay reachable under
   every single link failure, and with how many disjoint paths;
2. *policy verification*: the security intent (no telnet from the
   provider) and the availability intent (internet reaches the users);
3. *packet tracing* (paper §4): concrete evidence for the audit report.

Run:  python examples/enterprise_audit.py
"""

from repro.net.headerspace import HeaderBox, header
from repro.policy import (
    LoopFree,
    Reachability,
    SpecificationMiner,
    format_traces,
    isolation,
    trace_packet,
)
from repro.core import RealConfig
from repro.workloads import build_enterprise
from repro.workloads.enterprise import PROVIDER_PREFIX


def main() -> None:
    net = build_enterprise(access_per_core=1)
    print(f"network: {net.labeled.topology} "
          f"({len(net.cores)} core, {len(net.access)} access, border, provider)")

    # -- 1. mine the fault-tolerance specification -------------------------
    print("\n[1] mining the specification under all single link failures...")
    miner = SpecificationMiner(
        net.labeled, net.snapshot, endpoints=net.access + [net.provider]
    )
    spec = miner.mine()
    print(f"    {spec.summary()}")
    print(f"    finding: {len(spec.fragile)} fragile pairs — every access "
          f"router is single-homed")

    # Remediation: dual-home the access layer, then re-mine.
    print("\n[1b] remediation: dual-home every access router; re-mine...")
    fixed = build_enterprise(access_per_core=1, dual_homed=True)
    fixed_spec = SpecificationMiner(
        fixed.labeled, fixed.snapshot, endpoints=fixed.access + [fixed.provider]
    ).mine()
    print(f"    {fixed_spec.summary()}")
    remaining = sorted(fixed_spec.fragile)
    if remaining:
        for src, dst in remaining:
            print(f"    still fragile: {src} -> {dst} "
                  f"(the single border/provider uplink)")
    widths = {
        (s, d): w for (s, d), w in fixed_spec.min_width.items()
        if (s, d) in fixed_spec.always_reachable
    }
    if widths:
        print(f"    surviving width across failures: "
              f"min={min(widths.values())}")

    # -- 2. verify the operator intent --------------------------------------
    print("\n[2] verifying intent policies...")
    user_prefix = net.labeled.host_prefixes["acc0"][0]
    verifier = RealConfig(
        net.snapshot,
        endpoints=net.access + [net.provider],
        policies=[
            LoopFree("loop-free"),
            Reachability(
                "inet-reaches-users",
                src=net.provider,
                dst="acc0",
                match=HeaderBox.build(
                    dst_ip=user_prefix.as_interval(), proto=(6, 6),
                    dst_port=(443, 443),
                ),
            ),
            isolation(
                "no-telnet-from-inet",
                net.provider,
                "acc0",
                HeaderBox.build(
                    dst_ip=user_prefix.as_interval(), proto=(6, 6),
                    dst_port=(23, 23),
                ),
            ),
        ],
    )
    for status in verifier.policy_statuses():
        print(f"    {status}")

    # -- 3. evidence traces ---------------------------------------------------
    print("\n[3] evidence: packet traces from the provider edge")
    https = header(user_prefix.first() + 9, proto=6, dst_port=443)
    print("  HTTPS to a user subnet:")
    print("   ", format_traces(trace_packet(verifier.model, https,
                                             net.provider)).replace("\n", "\n    "))
    telnet = header(user_prefix.first() + 9, proto=6, dst_port=23)
    print("  telnet to the same subnet (must die at the border ACL):")
    print("   ", format_traces(trace_packet(verifier.model, telnet,
                                             net.provider)).replace("\n", "\n    "))

    internal = header(PROVIDER_PREFIX.first() + 40, proto=6, dst_port=443)
    print("  a user reaching the internet prefix:")
    print("   ", format_traces(trace_packet(verifier.model, internal,
                                             "acc2")).replace("\n", "\n    "))


if __name__ == "__main__":
    main()
