#!/usr/bin/env python3
"""Continuous integration for network configuration (paper §2, "Regular
maintenance" + the CI analogy of "Planning large-scale changes").

A fat-tree data center runs BGP.  An operator submits a stream of small
maintenance changes; each is verified incrementally before "merging" — a
change that violates policy is rejected and rolled back, exactly like a
failing CI build.  Incremental verification is what makes the per-change
feedback loop interactive.

Run:  python examples/maintenance_ci.py
"""

import time

from repro import (
    BlackholeFree,
    LoopFree,
    Reachability,
    RealConfig,
    SetLocalPref,
    ShutdownInterface,
    bgp_snapshot,
    fat_tree,
)
from repro.config.changes import Change
from repro.net.headerspace import HeaderBox


def build_verifier(labeled):
    snapshot = bgp_snapshot(labeled)
    edges = labeled.edge_nodes()
    policies = [LoopFree("no-loops"), BlackholeFree("no-blackholes")]
    # Intent: every edge switch reaches every other edge's host prefix.
    for src in edges:
        for dst in edges:
            if src == dst:
                continue
            policies.append(
                Reachability(
                    f"reach:{src}->{dst}",
                    src=src,
                    dst=dst,
                    match=HeaderBox.from_dst_prefix(
                        labeled.host_prefixes[dst][0]
                    ),
                )
            )
    return RealConfig(snapshot, endpoints=edges, policies=policies)


def submit(verifier, change: Change) -> bool:
    """One CI run: verify the change; roll back when it breaks policy."""
    inverse = change.invert(verifier.snapshot)
    started = time.perf_counter()
    delta = verifier.apply_change(change)
    elapsed = (time.perf_counter() - started) * 1000
    if delta.ok:
        print(f"  MERGED   ({elapsed:6.1f} ms)  {change.describe()}")
        return True
    names = ", ".join(s.policy.name for s in delta.newly_violated)
    print(f"  REJECTED ({elapsed:6.1f} ms)  {change.describe()}")
    print(f"           violates: {names}")
    verifier.apply_change(inverse)
    return False


def main() -> None:
    labeled = fat_tree(4)
    print(f"network: {labeled.topology}, "
          f"{len(labeled.edge_nodes())} edge switches")
    verifier = build_verifier(labeled)
    print(f"policies registered: {len(verifier.policy_statuses())}")
    print(f"initial verification: {verifier.initial.report.summary()}\n")

    # The maintenance queue: routine tweaks, then a risky sequence that
    # would cut edge0_0 off from the fabric.
    queue = [
        SetLocalPref("edge0_0", "up0", 150),   # prefer one uplink
        ShutdownInterface("agg0_0", "down0"),  # drain a link for maintenance
        SetLocalPref("edge2_1", "up1", 150),
        ShutdownInterface("agg0_1", "down0"),  # would isolate edge0_0: REJECT
        ShutdownInterface("core0", "eth2"),    # safe elsewhere
    ]
    merged = 0
    for change in queue:
        merged += submit(verifier, change)
    print(f"\n{merged}/{len(queue)} changes merged; "
          f"{len(verifier.violated_policies())} policies violated at HEAD")


if __name__ == "__main__":
    main()
