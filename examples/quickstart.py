#!/usr/bin/env python3
"""Quickstart: verify configuration changes incrementally.

Builds a small BGP network (a 4-ring, one AS per router), registers a few
policies, then verifies changes one by one — exactly the RealConfig
workflow of the paper's Figure 1:

    config change -> data plane change -> model change -> policy change

Run:  python examples/quickstart.py
"""

from repro import (
    EnableInterface,
    LoopFree,
    Reachability,
    RealConfig,
    ShutdownInterface,
    bgp_snapshot,
    ring,
)
from repro.net.headerspace import HeaderBox, header
from repro.policy.trace import format_traces, trace_packet


def main() -> None:
    # 1. A topology and its configurations (4 routers in a ring, eBGP).
    labeled = ring(4)
    snapshot = bgp_snapshot(labeled)
    print(f"network: {labeled.topology}")

    # 2. Policies: a global invariant plus a reachability intent.
    r2_prefix = labeled.host_prefixes["r2"][0]
    policies = [
        LoopFree("no-loops"),
        Reachability(
            "r0-reaches-r2",
            src="r0",
            dst="r2",
            match=HeaderBox.from_dst_prefix(r2_prefix),
        ),
    ]

    # 3. The verifier: loads the snapshot, builds the EC model, checks.
    verifier = RealConfig(snapshot, endpoints=["r0", "r1", "r2", "r3"],
                          policies=policies)
    print(f"initial load: {verifier.initial.report.summary()}")
    for status in verifier.policy_statuses():
        print(f"  {status}")

    # 4. A change that survives: one link down, the ring reroutes.
    print("\n--- change 1: fail the r1-r2 link ---")
    delta = verifier.apply_change(ShutdownInterface("r1", "eth1"))
    print(delta.summary())
    print("verdict:", "OK" if delta.ok else "VIOLATES POLICIES")

    # 5. A change that breaks the intent: the second path to r2 dies too.
    print("\n--- change 2: fail the r2-r3 link ---")
    delta = verifier.apply_change(ShutdownInterface("r3", "eth0"))
    print(delta.summary())
    for status in delta.newly_violated:
        print(f"  newly violated: {status}")

    # 6. The repair: bring the first link back; RealConfig reports the
    #    policy as newly satisfied ("helps operators test whether a repair
    #    plan works", §4.2).
    print("\n--- repair: restore the r1-r2 link ---")
    delta = verifier.apply_change(EnableInterface("r1", "eth1"))
    for status in delta.newly_satisfied:
        print(f"  newly satisfied: {status}")
    print("verdict:", "OK" if not verifier.violated_policies() else "still broken")

    # 7. Debugging: dump a concrete packet's forwarding paths ("what rules
    #    they match, which path they take", paper §4).
    print("\n--- trace: a packet from r0 to r2's subnet ---")
    packet = header(r2_prefix.first() + 10, proto=6, dst_port=443)
    print(format_traces(trace_packet(verifier.model, packet, "r0")))


if __name__ == "__main__":
    main()
