#!/usr/bin/env python3
"""Specification mining with incremental data plane generation (paper §2).

Config2Spec-style mining: which reachability policies hold under *every*
single link failure?  The dominant cost is generating the data plane for
each failure condition; the paper's point is that conditions differ only
slightly, so incremental generation across the sweep is ~20x faster than
recomputing each condition from scratch.

This example mines the "always reachable" edge-to-edge pairs of a fat-tree
running OSPF, comparing the incremental sweep with from-scratch generation.

Run:  python examples/specification_mining.py
"""

import time

from repro import ShutdownInterface, fat_tree, ospf_snapshot
from repro.config.changes import apply_changes
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import updates_from_fib
from repro.policy.checker import IncrementalChecker
from repro.routing.program import ControlPlane


def mine_incrementally(labeled, snapshot, conditions):
    """One warm verifier; fail -> record reachable pairs -> restore."""
    edges = labeled.edge_nodes()
    control_plane = ControlPlane()
    fib = control_plane.update_to(snapshot)
    model = NetworkModel(labeled.topology)
    updater = BatchUpdater(model)
    updater.apply(updates_from_fib(fib.inserted, fib.deleted))
    checker = IncrementalChecker(model, edges)

    def reachable_pairs():
        return {
            pair
            for pair, ecs in checker.delivered_pair_map().items()
            if ecs
        }

    always = reachable_pairs()
    for failure in conditions:
        failed, _ = apply_changes(snapshot, [failure])
        delta = control_plane.update_to(failed)
        batch = updater.apply(updates_from_fib(delta.inserted, delta.deleted))
        checker.check_batch(batch)
        always &= reachable_pairs()
        # Restore for the next condition.
        delta = control_plane.update_to(snapshot)
        batch = updater.apply(updates_from_fib(delta.inserted, delta.deleted))
        checker.check_batch(batch)
    return always


def mine_from_scratch(labeled, snapshot, conditions):
    """Fresh control plane + model + checker per condition."""
    edges = labeled.edge_nodes()

    def pairs_for(snap):
        control_plane = ControlPlane()
        fib = control_plane.update_to(snap)
        model = NetworkModel(labeled.topology)
        updater = BatchUpdater(model)
        batch = updater.apply(updates_from_fib(fib.inserted, fib.deleted))
        checker = IncrementalChecker(model, edges)
        return {
            pair for pair, ecs in checker.delivered_pair_map().items() if ecs
        }

    always = pairs_for(snapshot)
    for failure in conditions:
        failed, _ = apply_changes(snapshot, [failure])
        always &= pairs_for(failed)
    return always


def main() -> None:
    labeled = fat_tree(4)
    snapshot = ospf_snapshot(labeled)
    links = sorted(labeled.topology.links(), key=lambda l: (str(l.a), str(l.b)))
    conditions = [
        ShutdownInterface(link.a.node, link.a.name) for link in links[:12]
    ]
    print(f"network: {labeled.topology}; mining over "
          f"{len(conditions)} single-link-failure conditions")

    started = time.perf_counter()
    incremental = mine_incrementally(labeled, snapshot, conditions)
    incremental_seconds = time.perf_counter() - started
    print(f"incremental sweep:   {incremental_seconds:6.2f} s")

    started = time.perf_counter()
    scratch = mine_from_scratch(labeled, snapshot, conditions)
    scratch_seconds = time.perf_counter() - started
    print(f"from-scratch sweep:  {scratch_seconds:6.2f} s "
          f"(speedup {scratch_seconds / incremental_seconds:.1f}x)")

    assert incremental == scratch, "the two sweeps must mine the same spec"
    print(f"\nmined specification: {len(incremental)} edge-to-edge pairs are "
          f"reachable under every single link failure")
    sample = sorted(incremental)[:5]
    for src, dst in sample:
        print(f"  always reachable: {src} -> {dst}")
    print("  ...")


if __name__ == "__main__":
    main()
