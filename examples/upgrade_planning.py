#!/usr/bin/env python3
"""Planning a large-scale change in small, verified steps (paper §2).

Modeled on the Alibaba WAN upgrade the paper cites: ACLs are migrated from
core routers to dedicated gateway devices (here: the aggregation layer),
re-configuring a large fraction of the network.  The operator plans the
upgrade in phases and *incrementally verifies the partial plan after each
phase*, so a bug is localized to the phase that introduced it instead of
surfacing only after the whole multi-week plan is executed.

The plan (fat-tree, OSPF):

  Phase 1  install the security ACLs on every aggregation switch (unbound);
  Phase 2  bind them inbound on the aggregation downlinks;
  Phase 3  remove the legacy core-router ACLs.

Phase 2 as first drafted contains a classic bug — the new ACL forgets the
trailing ``permit ip any any`` — which the verifier catches immediately,
the phase is corrected, and the plan proceeds.

Run:  python examples/upgrade_planning.py
"""

from repro import (
    Reachability,
    RealConfig,
    isolation,
    fat_tree,
    ospf_snapshot,
)
from repro.config.changes import AddAclEntry, BindAcl, RemoveAclEntry, UnbindAcl
from repro.config.schema import AclEntry
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox


def telnet_box(prefix: Prefix) -> HeaderBox:
    return HeaderBox.build(
        dst_ip=prefix.as_interval(), proto=(6, 6), dst_port=(23, 23)
    )


def legacy_acls(labeled):
    """The starting state: telnet blocked at the core (the legacy design)."""
    changes = []
    for core in (n for n, r in labeled.roles.items() if r == "core"):
        changes.append(
            AddAclEntry("%s" % core, "LEGACY",
                        AclEntry(10, "deny", proto=6, dst_port=(23, 23)))
        )
        changes.append(AddAclEntry(core, "LEGACY", AclEntry(20, "permit")))
        for iface in labeled.topology.node(core).interfaces:
            changes.append(BindAcl(core, iface, "LEGACY", "in"))
    return changes


def main() -> None:
    labeled = fat_tree(4)
    snapshot = ospf_snapshot(labeled)
    edges = labeled.edge_nodes()
    aggs = sorted(n for n, r in labeled.roles.items() if r == "agg")

    policies = []
    for dst in edges[:4]:
        prefix = labeled.host_prefixes[dst][0]
        src = edges[-1] if dst != edges[-1] else edges[0]
        policies.append(
            isolation(f"no-telnet:{src}->{dst}", src, dst, telnet_box(prefix))
        )
        policies.append(
            Reachability(
                f"reach:{src}->{dst}", src=src, dst=dst,
                match=HeaderBox.build(
                    dst_ip=prefix.as_interval(), proto=(6, 6), dst_port=(443, 443)
                ),
            )
        )

    verifier = RealConfig(snapshot, endpoints=edges, policies=policies)
    print("phase 0: install the legacy core ACLs (the pre-upgrade state)")
    delta = verifier.apply_changes(legacy_acls(labeled))
    print(f"  {delta.report.summary()}")
    assert not verifier.violated_policies(), "legacy state must be clean"

    print("\nphase 1: stage the new ACLs on the aggregation layer (unbound)")
    phase1 = []
    for agg in aggs:
        phase1.append(
            AddAclEntry(agg, "EDGE_SEC",
                        AclEntry(10, "deny", proto=6, dst_port=(23, 23)))
        )
    delta = verifier.apply_changes(phase1)
    print(f"  {delta.report.summary()}  (no behaviour change: ACLs unbound)")
    assert delta.ok

    print("\nphase 2 (draft): bind EDGE_SEC on aggregation downlinks")
    draft = [
        BindAcl(agg, iface, "EDGE_SEC", "in")
        for agg in aggs
        for iface in labeled.topology.node(agg).interfaces
        if iface.startswith("down")
    ]
    delta = verifier.apply_changes(draft)
    if not delta.ok:
        print("  BUG CAUGHT after this phase (not weeks later):")
        for status in delta.newly_violated[:4]:
            print(f"    {status}")
        print("  -> the draft ACL is missing the trailing permit; rolling back")
        verifier.apply_changes(
            [UnbindAcl(agg, iface, "in") for agg in aggs
             for iface in labeled.topology.node(agg).interfaces
             if iface.startswith("down")]
        )

    print("\nphase 2 (fixed): add the trailing permit, then bind")
    fixed = [
        AddAclEntry(agg, "EDGE_SEC", AclEntry(100, "permit")) for agg in aggs
    ] + draft
    delta = verifier.apply_changes(fixed)
    print(f"  {delta.report.summary()}")
    assert delta.ok, [str(s) for s in delta.newly_violated]

    print("\nphase 3: retire the legacy core ACLs")
    phase3 = []
    for core in (n for n, r in labeled.roles.items() if r == "core"):
        for iface in labeled.topology.node(core).interfaces:
            phase3.append(UnbindAcl(core, iface, "in"))
        phase3.append(RemoveAclEntry(core, "LEGACY", 10))
        phase3.append(RemoveAclEntry(core, "LEGACY", 20))
    delta = verifier.apply_changes(phase3)
    print(f"  {delta.report.summary()}")
    assert delta.ok, [str(s) for s in delta.newly_violated]

    print("\nupgrade complete; all policies hold:")
    for status in verifier.policy_statuses()[:6]:
        print(f"  {status}")
    print(f"  ... ({len(verifier.policy_statuses())} total)")


if __name__ == "__main__":
    main()
