"""repro — a reproduction of *Incremental Network Configuration
Verification* (HotNets '20) and its prototype, RealConfig.

The public API in one import::

    from repro import (
        RealConfig,            # the incremental verifier (paper Figure 1)
        Snapshot,              # topology + device configurations
        fat_tree,              # the paper's evaluation topology
        ospf_snapshot, bgp_snapshot,
        ShutdownInterface, SetOspfCost, SetLocalPref,
        Reachability, Waypoint, LoopFree, BlackholeFree,
    )

Subpackages:

- :mod:`repro.net` — addressing, header space, topologies;
- :mod:`repro.config` — configuration schema, text dialect, diffing,
  typed change operations;
- :mod:`repro.ddlog` — the differential (incremental) computation engine
  and its Datalog-flavoured DSL;
- :mod:`repro.routing` — OSPF / BGP / static / connected / redistribution
  semantics as Datalog rules, producing FIB deltas;
- :mod:`repro.baseline` — the from-scratch simulator (Batfish's role);
- :mod:`repro.dataplane` — the APKeep-style EC model with batch updates;
- :mod:`repro.policy` — the incremental policy checker;
- :mod:`repro.core` — the RealConfig pipeline tying it all together;
- :mod:`repro.workloads` — the paper's experiment workloads.
"""

from repro.config import (
    Change,
    CompositeChange,
    EnableInterface,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    Snapshot,
    apply_changes,
    parse_device,
    render_device,
)
from repro.core import LintGateError, RealConfig, VerificationDelta
from repro.lint import LintRunner, Severity, lint_snapshot
from repro.net import Prefix, Topology, fat_tree, grid, line, random_connected, ring
from repro.policy import (
    BlackholeFree,
    LoopFree,
    Reachability,
    Waypoint,
    isolation,
)
from repro.workloads import bgp_snapshot, ospf_snapshot, snapshot_for

__version__ = "0.1.0"

__all__ = [
    "Change",
    "CompositeChange",
    "EnableInterface",
    "SetLocalPref",
    "SetOspfCost",
    "ShutdownInterface",
    "Snapshot",
    "apply_changes",
    "parse_device",
    "render_device",
    "LintGateError",
    "LintRunner",
    "RealConfig",
    "Severity",
    "VerificationDelta",
    "lint_snapshot",
    "Prefix",
    "Topology",
    "fat_tree",
    "grid",
    "line",
    "random_connected",
    "ring",
    "BlackholeFree",
    "LoopFree",
    "Reachability",
    "Waypoint",
    "isolation",
    "bgp_snapshot",
    "ospf_snapshot",
    "snapshot_for",
    "__version__",
]
