"""From-scratch (non-incremental) control plane simulation."""

from repro.baseline.path_vector import (
    BgpDivergenceError,
    BgpSession,
    PathVectorSimulation,
)
from repro.baseline.simulator import SimulationResult, simulate
from repro.baseline.spf import all_pairs_distances, dijkstra, ecmp_next_hops

__all__ = [
    "BgpDivergenceError",
    "BgpSession",
    "PathVectorSimulation",
    "SimulationResult",
    "simulate",
    "all_pairs_distances",
    "dijkstra",
    "ecmp_next_hops",
]
