"""From-scratch BGP computation: synchronous path-vector iteration.

Mirrors the semantics of :mod:`repro.routing.bgp` with a conventional
simulation loop: every round, each router recomputes its best routes from
its neighbors' previous-round advertisements; iteration stops at a fixpoint
(or raises after a bound, the classic sign of a BGP dispute wheel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.routing.policies import (
    DEFAULT_LOCAL_PREF,
    Policy,
    apply_policy,
    permits,
)


class BgpDivergenceError(RuntimeError):
    """The synchronous path-vector iteration did not reach a fixpoint."""


@dataclass(frozen=True)
class BgpSession:
    """One directed session edge: ``node`` imports via ``recv_if`` from
    ``peer`` exporting via ``send_if``."""

    node: str
    recv_if: str
    peer: str
    send_if: str


#: A candidate route: (local pref, AS path, receiving interface).
Route = Tuple[int, Tuple[int, ...], str]

#: Pseudo-interface of locally originated routes (matches the Datalog model).
LOCAL = "@local"


def _strictly_contains(anet: int, aplen: int, net: int, plen: int) -> bool:
    if plen <= aplen:
        return False
    mask = (0xFFFFFFFF << (32 - aplen)) & 0xFFFFFFFF if aplen else 0
    return (net & mask) == anet


def _preference(route: Route) -> Tuple[int, int]:
    return (route[0], -len(route[1]))


def select(candidates: Set[Route]) -> Tuple[Optional[Route], List[str]]:
    """Best advertised route plus every multipath next-hop interface."""
    if not candidates:
        return None, []
    best = max(_preference(route) for route in candidates)
    winners = sorted(
        (route for route in candidates if _preference(route) == best),
        key=lambda route: (route[1], route[2]),
    )
    next_hops = sorted(
        {route[2] for route in candidates if _preference(route) == best}
        - {LOCAL}
    )
    return winners[0], next_hops


class PathVectorSimulation:
    """Synchronous path-vector BGP over explicit sessions."""

    def __init__(
        self,
        asn_of: Dict[str, int],
        sessions: List[BgpSession],
        originated: Dict[str, Set[Tuple[int, int]]],
        policy_in: Dict[Tuple[str, str], Policy],
        policy_out: Dict[Tuple[str, str], Policy],
        max_rounds: int = 1000,
        aggregates: Optional[Dict[str, Set[Tuple[int, int]]]] = None,
    ) -> None:
        self.asn_of = asn_of
        self.sessions = sessions
        self.originated = originated
        self.policy_in = policy_in
        self.policy_out = policy_out
        self.max_rounds = max_rounds
        self.aggregates = aggregates or {}
        #: node -> prefix -> advertised best route
        self.best: Dict[str, Dict[Tuple[int, int], Route]] = {}
        #: node -> prefix -> multipath receive interfaces
        self.next_hops: Dict[str, Dict[Tuple[int, int], List[str]]] = {}
        self.rounds = 0

    def run(self) -> None:
        best: Dict[str, Dict[Tuple[int, int], Route]] = {
            node: {} for node in self.asn_of
        }
        for _ in range(self.max_rounds):
            self.rounds += 1
            new_best, new_hops = self._one_round(best)
            if new_best == best:
                self.best = new_best
                self.next_hops = new_hops
                return
            best = new_best
        raise BgpDivergenceError(
            f"BGP did not converge within {self.max_rounds} rounds"
        )

    def _one_round(
        self, previous: Dict[str, Dict[Tuple[int, int], Route]]
    ) -> Tuple[
        Dict[str, Dict[Tuple[int, int], Route]],
        Dict[str, Dict[Tuple[int, int], List[str]]],
    ]:
        candidates: Dict[str, Dict[Tuple[int, int], Set[Route]]] = {
            node: {} for node in self.asn_of
        }
        for node, prefixes in self.originated.items():
            for prefix in prefixes:
                candidates[node].setdefault(prefix, set()).add(
                    (DEFAULT_LOCAL_PREF, (), LOCAL)
                )
        # Route aggregation: originate an aggregate while the previous
        # round's table holds a strictly more specific route (mirrors the
        # Datalog model's recursion through bgp_best).
        for node, aggs in self.aggregates.items():
            table = previous.get(node, {})
            for anet, aplen in aggs:
                if any(
                    _strictly_contains(anet, aplen, net, plen)
                    for net, plen in table
                ):
                    candidates[node].setdefault((anet, aplen), set()).add(
                        (DEFAULT_LOCAL_PREF, (), LOCAL)
                    )
        for session in self.sessions:
            exports = previous.get(session.peer, {})
            peer_asn = self.asn_of[session.peer]
            my_asn = self.asn_of[session.node]
            out_policy = self.policy_out.get(
                (session.peer, session.send_if), ()
            )
            in_policy = self.policy_in.get((session.node, session.recv_if), ())
            for prefix, route in exports.items():
                path = (peer_asn,) + route[1]
                if my_asn in path:
                    continue
                network, plen = prefix
                if not permits(out_policy, network, plen):
                    continue
                local_pref = apply_policy(
                    in_policy, network, plen, DEFAULT_LOCAL_PREF
                )
                if local_pref is None:
                    continue
                candidates[session.node].setdefault(prefix, set()).add(
                    (local_pref, path, session.recv_if)
                )
        new_best: Dict[str, Dict[Tuple[int, int], Route]] = {}
        new_hops: Dict[str, Dict[Tuple[int, int], List[str]]] = {}
        for node, per_prefix in candidates.items():
            new_best[node] = {}
            new_hops[node] = {}
            for prefix, routes in per_prefix.items():
                chosen, hops = select(routes)
                if chosen is not None:
                    new_best[node][prefix] = chosen
                    if hops:
                        new_hops[node][prefix] = hops
        return new_best, new_hops
