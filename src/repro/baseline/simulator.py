"""The from-scratch configuration simulator (the "Batfish (current)" role).

Given a snapshot, :func:`simulate` computes the converged FIB with
conventional domain-specific algorithms — Dijkstra SPF for OSPF, synchronous
path-vector iteration for BGP, an administrative-distance RIB merge — with
no incremental state whatsoever.  It fills two roles:

- the paper's Table 2 "Batfish Full" baseline: the thing RealConfig's
  incremental updates are compared against;
- an independent correctness oracle: tests assert the incremental engine's
  FIB equals this simulator's FIB after arbitrary change sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config.schema import DeviceConfig, Snapshot
from repro.net.addr import Prefix
from repro.baseline.path_vector import (
    BgpSession,
    PathVectorSimulation,
)
from repro.baseline.spf import Adjacency, all_pairs_distances, ecmp_next_hops
from repro.routing.policies import encode_route_map
from repro.routing.types import ACCEPT, AdminDistance, FibEntry

PrefixKey = Tuple[int, int]


@dataclass
class SimulationResult:
    """The converged state of a from-scratch simulation."""

    fib: Set[FibEntry] = field(default_factory=set)
    ospf_distances: Dict[str, Dict[str, int]] = field(default_factory=dict)
    bgp_rounds: int = 0

    def fib_at(self, node: str) -> List[FibEntry]:
        return sorted(entry for entry in self.fib if entry.node == node)


def _iface_up(device: Optional[DeviceConfig], iface: str) -> bool:
    if device is None or iface not in device.interfaces:
        return False
    return device.interfaces[iface].is_up()


def _static_out_interfaces(device: DeviceConfig, route) -> List[str]:
    """The interfaces an active static route forwards out of (empty when
    the route is inactive).

    Interface form: the named interface, while up.  IP form: every up
    interface whose connected subnet covers the next hop (matching the
    Datalog model, which derives one candidate per covering interface).
    """
    if route.next_hop_interface is not None:
        if _iface_up(device, route.next_hop_interface):
            return [route.next_hop_interface]
        return []
    return [
        iface.name
        for iface in device.interfaces.values()
        if iface.is_up()
        and iface.prefix is not None
        and iface.prefix.contains_address(route.next_hop_ip)
    ]


def simulate(snapshot: Snapshot) -> SimulationResult:
    """Compute the converged FIB of ``snapshot`` from scratch."""
    result = SimulationResult()
    #: (node, prefix) -> set of (ad, metric, out interface)
    rib: Dict[Tuple[str, PrefixKey], Set[Tuple[int, int, str]]] = {}

    def add_route(
        node: str, prefix: PrefixKey, ad: int, metric: int, out_iface: str
    ) -> None:
        rib.setdefault((node, prefix), set()).add((ad, metric, out_iface))

    _connected_and_static(snapshot, add_route)
    ospf_state = _ospf(snapshot, add_route, result)
    _bgp(snapshot, ospf_state, add_route, result)

    for (node, (network, plen)), candidates in rib.items():
        best = min((ad, metric) for ad, metric, _ in candidates)
        for ad, metric, out_iface in candidates:
            if (ad, metric) == best:
                result.fib.add(FibEntry(node, Prefix(network, plen), out_iface))
    return result


# -- connected and static -----------------------------------------------------


def _connected_and_static(snapshot: Snapshot, add_route) -> None:
    for device in snapshot.iter_devices():
        for iface in device.interfaces.values():
            if iface.is_up() and iface.prefix is not None:
                add_route(
                    device.hostname,
                    (iface.prefix.network, iface.prefix.length),
                    int(AdminDistance.CONNECTED),
                    0,
                    ACCEPT,
                )
        for route in device.static_routes:
            for iface in _static_out_interfaces(device, route):
                add_route(
                    device.hostname,
                    (route.prefix.network, route.prefix.length),
                    route.admin_distance,
                    0,
                    iface,
                )


# -- OSPF ----------------------------------------------------------------------


@dataclass
class _OspfState:
    adjacency: Adjacency = field(default_factory=dict)
    distances: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: advertising router -> {(prefix, metric)}
    dests: Dict[str, Set[Tuple[PrefixKey, int]]] = field(default_factory=dict)
    #: advertising router -> {(prefix, metric)} for redistributed routes
    externals: Dict[str, Set[Tuple[PrefixKey, int]]] = field(default_factory=dict)


def _ospf_enabled(device: Optional[DeviceConfig], iface: str) -> bool:
    if device is None or device.ospf is None or iface not in device.interfaces:
        return False
    return device.interfaces[iface].ospf_enabled


def _ospf(snapshot: Snapshot, add_route, result: SimulationResult) -> _OspfState:
    state = _OspfState()
    topology = snapshot.topology
    for device in snapshot.iter_devices():
        if device.ospf is not None:
            state.adjacency.setdefault(device.hostname, [])

    for link in topology.links():
        for end, other in (link.endpoints(), tuple(reversed(link.endpoints()))):
            device = snapshot.devices.get(end.node)
            peer = snapshot.devices.get(other.node)
            if (
                _iface_up(device, end.name)
                and _iface_up(peer, other.name)
                and _ospf_enabled(device, end.name)
                and _ospf_enabled(peer, other.name)
            ):
                cost = device.interfaces[end.name].ospf_cost
                state.adjacency.setdefault(end.node, []).append(
                    (other.node, end.name, cost)
                )

    for device in snapshot.iter_devices():
        if device.ospf is None:
            continue
        node = device.hostname
        for iface in device.interfaces.values():
            if iface.ospf_enabled and iface.is_up() and iface.prefix is not None:
                state.dests.setdefault(node, set()).add(
                    ((iface.prefix.network, iface.prefix.length), 0)
                )
        for redist in device.ospf.redistribute:
            if redist.source == "static":
                for route in device.static_routes:
                    if _static_out_interfaces(device, route):
                        state.externals.setdefault(node, set()).add(
                            (
                                (route.prefix.network, route.prefix.length),
                                redist.metric,
                            )
                        )
            elif redist.source == "connected":
                for iface in device.interfaces.values():
                    if iface.is_up() and iface.prefix is not None:
                        state.externals.setdefault(node, set()).add(
                            (
                                (iface.prefix.network, iface.prefix.length),
                                redist.metric,
                            )
                        )
            # "bgp" externals are filled in by _bgp (they need BGP's result).

    state.distances = all_pairs_distances(state.adjacency)
    result.ospf_distances = state.distances
    _install_ospf_routes(state, add_route)
    return state


def _install_ospf_routes(state: _OspfState, add_route) -> None:
    for source in state.adjacency:
        for target, dist in state.distances.get(source, {}).items():
            if source == target:
                continue
            hops = ecmp_next_hops(state.adjacency, state.distances, source, target)
            for prefix, metric in state.dests.get(target, set()):
                for iface in hops:
                    add_route(
                        source,
                        prefix,
                        int(AdminDistance.OSPF),
                        dist + metric,
                        iface,
                    )
            for prefix, metric in state.externals.get(target, set()):
                for iface in hops:
                    add_route(
                        source,
                        prefix,
                        int(AdminDistance.OSPF_EXTERNAL),
                        dist + metric,
                        iface,
                    )


# -- BGP -----------------------------------------------------------------------


def _bgp(
    snapshot: Snapshot,
    ospf_state: _OspfState,
    add_route,
    result: SimulationResult,
) -> None:
    asn_of: Dict[str, int] = {}
    for device in snapshot.iter_devices():
        if device.bgp is not None:
            asn_of[device.hostname] = device.bgp.asn
    if not asn_of:
        return

    topology = snapshot.topology
    sessions: List[BgpSession] = []
    policy_in: Dict[Tuple[str, str], tuple] = {}
    policy_out: Dict[Tuple[str, str], tuple] = {}
    originated: Dict[str, Set[PrefixKey]] = {node: set() for node in asn_of}

    for device in snapshot.iter_devices():
        if device.bgp is None:
            continue
        node = device.hostname
        for neighbor in device.bgp.neighbors.values():
            rm_in = (
                device.route_maps.get(neighbor.route_map_in)
                if neighbor.route_map_in
                else None
            )
            rm_out = (
                device.route_maps.get(neighbor.route_map_out)
                if neighbor.route_map_out
                else None
            )
            policy_in[(node, neighbor.interface)] = encode_route_map(rm_in)
            policy_out[(node, neighbor.interface)] = encode_route_map(rm_out)

    for link in topology.links():
        for end, other in (link.endpoints(), tuple(reversed(link.endpoints()))):
            device = snapshot.devices.get(end.node)
            peer = snapshot.devices.get(other.node)
            if device is None or peer is None:
                continue
            if device.bgp is None or peer.bgp is None:
                continue
            my_neighbor = device.bgp.neighbors.get(end.name)
            their_neighbor = peer.bgp.neighbors.get(other.name)
            if my_neighbor is None or their_neighbor is None:
                continue
            if not (_iface_up(device, end.name) and _iface_up(peer, other.name)):
                continue
            if (
                my_neighbor.remote_as != peer.bgp.asn
                or their_neighbor.remote_as != device.bgp.asn
            ):
                continue
            sessions.append(
                BgpSession(end.node, end.name, other.node, other.name)
            )

    aggregates: Dict[str, Set[PrefixKey]] = {}
    for device in snapshot.iter_devices():
        if device.bgp is None:
            continue
        node = device.hostname
        for prefix in device.bgp.aggregates:
            aggregates.setdefault(node, set()).add(
                (prefix.network, prefix.length)
            )
        for prefix in device.bgp.networks:
            originated[node].add((prefix.network, prefix.length))
        for redist in device.bgp.redistribute:
            if redist.source == "static":
                for route in device.static_routes:
                    if _static_out_interfaces(device, route):
                        originated[node].add(
                            (route.prefix.network, route.prefix.length)
                        )
            elif redist.source == "connected":
                for iface in device.interfaces.values():
                    if iface.is_up() and iface.prefix is not None:
                        originated[node].add(
                            (iface.prefix.network, iface.prefix.length)
                        )
            elif redist.source == "ospf":
                # Routes *learned* via OSPF (not the router's own injected
                # prefixes), matching RIB-based redistribution semantics.
                for target, dests in ospf_state.dests.items():
                    dist = ospf_state.distances.get(node, {}).get(target)
                    if dist is not None and node != target:
                        for prefix, _ in dests:
                            originated[node].add(prefix)

    simulation = PathVectorSimulation(
        asn_of, sessions, originated, policy_in, policy_out,
        aggregates=aggregates,
    )
    simulation.run()
    result.bgp_rounds = simulation.rounds

    for node, per_prefix in simulation.next_hops.items():
        for (network, plen), interfaces in per_prefix.items():
            best = simulation.best[node][(network, plen)]
            for iface in interfaces:
                add_route(
                    node,
                    (network, plen),
                    int(AdminDistance.EBGP),
                    len(best[1]),
                    iface,
                )

    # Redistribute BGP into OSPF now that BGP has converged.
    extra: Dict[str, Set[Tuple[PrefixKey, int]]] = {}
    for device in snapshot.iter_devices():
        if device.ospf is None:
            continue
        for redist in device.ospf.redistribute:
            if redist.source != "bgp":
                continue
            node = device.hostname
            for prefix in simulation.best.get(node, {}):
                extra.setdefault(node, set()).add((prefix, redist.metric))
    if extra:
        patched = _OspfState(
            adjacency=ospf_state.adjacency,
            distances=ospf_state.distances,
            dests={},
            externals=extra,
        )
        _install_ospf_routes(patched, add_route)
