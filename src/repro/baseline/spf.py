"""From-scratch OSPF shortest-path-first computation.

The domain-specific baseline: plain Dijkstra per source over the OSPF
adjacency graph, with equal-cost multipath next-hop extraction.  This is an
*independent* implementation of the semantics the Datalog model expresses,
used both as the paper's Batfish-style full-computation baseline (Table 2)
and as a correctness oracle for the incremental engine.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

#: adjacency: node -> [(neighbor, out interface, cost)]
Adjacency = Dict[str, List[Tuple[str, str, int]]]


def dijkstra(adjacency: Adjacency, source: str) -> Dict[str, int]:
    """Shortest distances from ``source`` to every reachable node."""
    dist: Dict[str, int] = {source: 0}
    heap: List[Tuple[int, str]] = [(0, source)]
    settled: Set[str] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor, _, edge_cost in adjacency.get(node, []):
            candidate = cost + edge_cost
            if candidate < dist.get(neighbor, candidate + 1):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def all_pairs_distances(adjacency: Adjacency) -> Dict[str, Dict[str, int]]:
    return {source: dijkstra(adjacency, source) for source in adjacency}


def ecmp_next_hops(
    adjacency: Adjacency,
    distances: Dict[str, Dict[str, int]],
    source: str,
    target: str,
) -> List[str]:
    """All interfaces of ``source`` on a shortest path to ``target``.

    An interface toward neighbor ``w`` qualifies when
    ``cost(source, w) + dist(w, target) == dist(source, target)``.
    """
    if source == target:
        return []
    best = distances.get(source, {}).get(target)
    if best is None:
        return []
    interfaces: Set[str] = set()
    for neighbor, out_iface, edge_cost in adjacency.get(source, []):
        via = distances.get(neighbor, {}).get(target)
        if via is not None and edge_cost + via == best:
            interfaces.add(out_iface)
    return sorted(interfaces)
