"""Deterministic crash injection over the storage layer.

``repro.chaos.points`` names every durability boundary; the driver
(``python -m repro.chaos.driver``) runs a small serve workload with one
of them armed to die, and the harness (`repro chaos`) re-runs the matrix
and asserts the recovery invariants: no batch lost or applied twice, FIB
fingerprint byte-identical to the fault-free run, journal seqs gapless.

Only the stdlib-only ``points`` API is re-exported eagerly — the driver
and harness pull in the full serve stack and are imported lazily so the
instrumented modules (journal, checkpoint, atomic) can import this
package without cycles.
"""

from repro.chaos.points import (
    CRASH_POINTS,
    ENV_VAR,
    EXIT_CODE,
    CrashPointHit,
    arm,
    crash_point,
    disarm,
    point_names,
)

__all__ = [
    "CRASH_POINTS",
    "ENV_VAR",
    "EXIT_CODE",
    "CrashPointHit",
    "arm",
    "crash_point",
    "disarm",
    "point_names",
]
