"""The crash-matrix workload: one deterministic serve run per invocation.

The harness (:mod:`repro.chaos.harness`) runs this module as a subprocess
— first with ``REPRO_CRASH_POINT`` armed so the process dies at one named
durability boundary, then again unarmed so recovery resumes from whatever
the crash left on disk.  Determinism is the whole point: given the same
``WORKDIR``/``--batches``/``--seed``, the fault-free end state (FIB
fingerprint, cursor, disposal set) is a constant the harness can compare
every crashed-and-recovered run against.

The workload is a ring topology serving a flap-pair change stream with a
checkpoint cadence of two batches, plus one deliberately malformed
stream line — so a single run crosses *every* durability boundary this
PR instruments: checkpoint tmp/fsync/rotate/replace/manifest, journal
append, cursor commit, telemetry export (via the health file's sibling,
the journal), and the dead-letter dump for the poison batch.

Run it by hand to poke at a crashed workdir::

    python -m repro.chaos.driver /tmp/chaos --batches 8 --seed 0
    REPRO_CRASH_POINT=checkpoint.replace \\
        python -m repro.chaos.driver /tmp/chaos --batches 8 --seed 0

Exit codes: 0 on a clean run (quarantines expected — the poison line is
part of the workload), 1 on verification failure, 2 on workload error.
An armed crash point exits with :data:`repro.chaos.points.EXIT_CODE`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional

#: Workdir layout — shared with the harness, which reads these back.
STREAM_NAME = "stream.jsonl"
CHECKPOINT_NAME = "ckpt"
JOURNAL_NAME = "journal.jsonl"
HEALTH_NAME = "health.json"
DEADLETTER_NAME = "deadletter"
RESULT_NAME = "result.json"

#: Ring size: small enough to converge in milliseconds, large enough
#: that flap pairs actually move equivalence classes.
RING_NODES = 6

DEFAULT_BATCHES = 8
DEFAULT_SEED = 0


def poison_index(batches: int) -> int:
    """The stream index rewritten as a malformed batch (never the last
    one, so recovery always has committed work on both sides of it)."""
    return batches // 2


def build_stream(workdir: Path, batches: int, seed: int) -> Path:
    """Write the change stream once per workdir (idempotent across the
    crash/recover pair — recovery must see the *same* stream)."""
    from repro.net.topologies import ring
    from repro.serve.stream import write_stream
    from repro.workloads.changegen import stream_batches

    stream_path = workdir / STREAM_NAME
    if stream_path.exists():
        return stream_path
    labeled = ring(RING_NODES)
    write_stream(
        stream_batches(labeled, "ospf", count=batches, seed=seed),
        stream_path,
    )
    # One malformed line mid-stream: keeps its id but loses its changes
    # list, so decode yields a ChangeBatch with decode_error and the
    # daemon exercises malformed → quarantine → deadletter.dump.
    index = poison_index(batches)
    lines = stream_path.read_text().splitlines()
    lines[index] = json.dumps(
        {"id": f"{index:06d}", "changes": "not-a-list"}, sort_keys=True
    )
    stream_path.write_text("\n".join(lines) + "\n")
    return stream_path


def _fresh_verifier(seed: int):
    from repro.core.realconfig import RealConfig
    from repro.net.topologies import ring
    from repro.policy.spec import BlackholeFree, LoopFree
    from repro.workloads.fattree_configs import snapshot_for

    snapshot = snapshot_for(ring(RING_NODES), "ospf")
    return RealConfig(
        snapshot,
        policies=[LoopFree("loop-free"), BlackholeFree("blackhole-free")],
    )


def _write_result(workdir: Path, payload: dict) -> None:
    """Atomic result drop — the harness must never read a torn result."""
    fd, tmp_name = tempfile.mkstemp(
        dir=str(workdir), prefix=RESULT_NAME, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, workdir / RESULT_NAME)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run(
    workdir: Path, batches: int = DEFAULT_BATCHES, seed: int = DEFAULT_SEED
) -> int:
    from repro.resilience.checkpoint import CheckpointError, restore_checkpoint
    from repro.serve import DeadLetterBox, ServeDaemon, ServeOptions
    from repro.serve.stream import fib_fingerprint, read_stream

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    stream_path = build_stream(workdir, batches, seed)

    checkpoint_file = workdir / CHECKPOINT_NAME
    resume_fallback: Optional[dict] = None
    cursor = 0
    if checkpoint_file.exists() or checkpoint_file.with_name(
        checkpoint_file.name + ".1"
    ).exists():
        try:
            restored = restore_checkpoint(checkpoint_file)
        except CheckpointError as error:
            # Nothing in the ring verified: start over from the snapshot
            # (cursor 0 replays the whole stream — slow but correct).
            print(f"chaos driver: no usable checkpoint ({error})")
            verifier = _fresh_verifier(seed)
        else:
            verifier = restored.verifier
            cursor = int((restored.extras.get("serve") or {}).get("cursor", 0))
            if restored.fell_back:
                resume_fallback = {
                    "requested": str(restored.requested),
                    "used": str(restored.path),
                    "generation": restored.generation,
                    "skipped": [
                        {"path": str(p), "error": str(e)}
                        for p, e in restored.skipped
                    ],
                }
    else:
        verifier = _fresh_verifier(seed)

    options = ServeOptions(
        checkpoint_every=2,
        checkpoint_file=checkpoint_file,
        journal_file=workdir / JOURNAL_NAME,
        health_file=workdir / HEALTH_NAME,
        max_retries=1,
        backoff_base=0.0,
        breaker_threshold=0,
    )
    daemon = ServeDaemon(
        verifier,
        read_stream(stream_path),
        DeadLetterBox(workdir / DEADLETTER_NAME),
        options,
        resume_cursor=cursor,
        resume_fallback=resume_fallback,
    )
    stats = daemon.run()

    result = {
        "fib_fingerprint": fib_fingerprint(daemon.verifier),
        "cursor": daemon.cursor,
        "stream_batches": batches,
        "resume_cursor": cursor,
        "resume_fallback": resume_fallback,
        "journal_seq": daemon.journal.seq,
        "journal_degraded": daemon.journal.degraded,
        "batches_seen": stats.batches_seen,
        "batches_ok": stats.batches_ok,
        "quarantined": stats.quarantined,
        "quarantined_ids": list(stats.quarantined_ids),
        "checkpoint_failures": stats.checkpoint_failures,
        "skipped_on_resume": stats.skipped_on_resume,
    }
    _write_result(workdir, result)
    print(
        f"chaos driver: cursor {daemon.cursor}/{batches}, "
        f"fingerprint {result['fib_fingerprint'][:12]}, "
        f"{stats.quarantined} quarantined"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.driver", description=__doc__
    )
    parser.add_argument("workdir", help="scratch directory for this run")
    parser.add_argument(
        "--batches", type=int, default=DEFAULT_BATCHES, metavar="N"
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, metavar="S")
    args = parser.parse_args(argv)
    try:
        return run(Path(args.workdir), batches=args.batches, seed=args.seed)
    except Exception as error:  # noqa: BLE001 — workload error, exit 2
        print(f"chaos driver error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
