"""The crash matrix: kill the workload at every durability boundary.

For each cell ``(crash point, hit count)`` the harness runs the
deterministic workload (:mod:`repro.chaos.driver`) twice in a fresh
working directory:

1. **armed** — ``REPRO_CRASH_POINT=point[:hits]`` in the child's
   environment, expecting the process to die with
   :data:`~repro.chaos.points.EXIT_CODE` at exactly that boundary
   (an exit of 0 means the point was never reached — that is a matrix
   failure too, because an uninstrumented boundary proves nothing);
2. **recovered** — the same command unarmed, resuming from whatever the
   crash left on disk: a torn journal tail, a half-rotated generation
   ring, a dead-letter entry without its meta.json, ...

and then asserts the recovery invariants against a fault-free baseline
run:

- the final FIB fingerprint is byte-identical to the baseline's;
- the stream cursor reaches the end of the stream;
- the journal's durable seqs are gapless (``1..max`` with no hole and
  no duplicate) across however many daemon lifetimes the cell took;
- every stream batch was disposed of (committed, rebuilt, or
  quarantined) **exactly once per surviving lineage**: within each
  daemon run the disposals advance contiguously from that run's start
  cursor, and the reconstruction over all runs covers every batch.

The smoke matrix (:data:`SMOKE_POINTS`, one point per boundary class)
is what CI runs per-PR; ``repro chaos --matrix`` runs every registered
point at several hit depths.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.chaos import driver as chaos_driver
from repro.chaos.points import CRASH_POINTS, ENV_VAR, EXIT_CODE, point_names
from repro.obs.journal import (
    EVENT_COMMITTED,
    EVENT_QUARANTINED,
    EVENT_REBUILD,
    EVENT_START,
    read_events,
)

__all__ = [
    "CellResult",
    "DISPOSAL_EVENTS",
    "MatrixReport",
    "SMOKE_POINTS",
    "matrix_cells",
    "run_cell",
    "run_matrix",
    "verify_journal",
]

#: Events that dispose of exactly one stream batch.  ``malformed`` and
#: ``lint-rejected`` are *not* here: both are followed by the
#: ``quarantined`` event that is the actual disposal.
DISPOSAL_EVENTS = (EVENT_COMMITTED, EVENT_REBUILD, EVENT_QUARANTINED)

#: One crash point per boundary class — the per-PR CI subset.
SMOKE_POINTS: Tuple[str, ...] = (
    "checkpoint.replace",
    "journal.append",
    "cursor.commit",
    "telemetry.export",
    "deadletter.dump",
)

#: Hit depths per point for the full matrix.  Depth 1 dies at the very
#: first crossing (often before any batch committed); the deeper hit
#: dies mid-stream with generations already rotated.  ``deadletter.dump``
#: is crossed exactly once (one poison batch per workload), so it only
#: has depth 1.
_EXTRA_HITS: Dict[str, Tuple[int, ...]] = {"deadletter.dump": (1,)}
_DEFAULT_HITS: Tuple[int, ...] = (1, 3)


def matrix_cells(
    points: Optional[Sequence[str]] = None, smoke: bool = False
) -> Tuple[Tuple[str, int], ...]:
    """The ``(point, hits)`` cells to run.  ``points`` restricts the
    matrix to a subset; ``smoke`` selects :data:`SMOKE_POINTS` at depth
    1 only."""
    known = point_names()
    if points is not None:
        unknown = [p for p in points if p not in known]
        if unknown:
            raise ValueError(f"unknown crash point(s): {', '.join(unknown)}")
        chosen: Sequence[str] = points
    elif smoke:
        chosen = SMOKE_POINTS
    else:
        chosen = known
    if smoke:
        depths: Callable[[str], Tuple[int, ...]] = lambda p: (1,)
    else:
        depths = lambda p: _EXTRA_HITS.get(p, _DEFAULT_HITS)
    return tuple((p, h) for p in chosen for h in depths(p))


@dataclass(frozen=True)
class CellResult:
    """One ``(point, hits)`` cell of the matrix."""

    point: str
    hits: int
    workdir: str
    crash_exit: Optional[int] = None
    recover_exit: Optional[int] = None
    fingerprint: Optional[str] = None
    cursor: Optional[int] = None
    failures: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "hits": self.hits,
            "workdir": self.workdir,
            "crash_exit": self.crash_exit,
            "recover_exit": self.recover_exit,
            "fingerprint": self.fingerprint,
            "cursor": self.cursor,
            "ok": self.ok,
            "failures": list(self.failures),
        }


@dataclass
class MatrixReport:
    """The whole matrix: the baseline constants plus one cell per kill."""

    batches: int
    seed: int
    baseline_fingerprint: str = ""
    baseline_cursor: int = 0
    baseline_quarantined: int = 0
    cells: List[CellResult] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(cell.ok for cell in self.cells)

    @property
    def failed_cells(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def to_dict(self) -> dict:
        return {
            "batches": self.batches,
            "seed": self.seed,
            "baseline_fingerprint": self.baseline_fingerprint,
            "baseline_cursor": self.baseline_cursor,
            "baseline_quarantined": self.baseline_quarantined,
            "ok": self.ok,
            "error": self.error,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _driver_env(armed: Optional[str] = None) -> Dict[str, str]:
    """The subprocess environment: the current one with ``src`` on
    PYTHONPATH (so the child finds this checkout, not an installed
    repro) and the crash variable set or scrubbed."""
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    env.pop(ENV_VAR, None)
    if armed is not None:
        env[ENV_VAR] = armed
    return env


def _run_driver(
    workdir: Path,
    batches: int,
    seed: int,
    armed: Optional[str] = None,
    timeout: float = 300.0,
) -> "subprocess.CompletedProcess[str]":
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.chaos.driver",
            str(workdir),
            "--batches",
            str(batches),
            "--seed",
            str(seed),
        ],
        env=_driver_env(armed),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _load_result(workdir: Path) -> Optional[dict]:
    try:
        with open(workdir / chaos_driver.RESULT_NAME) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def verify_journal(journal_path: Path, batches: int) -> List[str]:
    """The journal-level recovery invariants for one finished cell.

    Returns human-readable failure strings (empty = all invariants hold).
    """
    failures: List[str] = []
    events = list(read_events(journal_path))
    if not events:
        return [f"journal {journal_path} has no durable events"]

    # Gapless seqs: every durable line numbered 1..max exactly once.
    seqs = sorted(e["seq"] for e in events)
    expected = list(range(1, seqs[-1] + 1))
    if seqs != expected:
        missing = sorted(set(expected) - set(seqs))[:5]
        dupes = sorted({s for s in seqs if seqs.count(s) > 1})[:5]
        failures.append(
            f"journal seqs not gapless: missing {missing}, dupes {dupes}"
        )

    # Split into daemon lifetimes at each daemon-start event.
    runs: List[dict] = []
    for event in events:
        if event.get("event") == EVENT_START:
            runs.append({"cursor": int(event.get("cursor", 0)), "batches": []})
        elif event.get("event") in DISPOSAL_EVENTS and runs:
            runs[-1]["batches"].append(event.get("batch"))
    if not runs:
        return failures + ["journal has no daemon-start event"]

    # Within each lifetime, disposals advance contiguously from that
    # run's start cursor: stream index == batch id by construction.
    final: Dict[int, int] = {}  # stream index -> disposing run
    for number, run in enumerate(runs):
        start = run["cursor"]
        want = [f"{start + i:06d}" for i in range(len(run["batches"]))]
        if run["batches"] != want:
            failures.append(
                f"run {number} (cursor {start}) disposed {run['batches']}, "
                f"expected the contiguous {want}"
            )
            continue
        for offset in range(len(run["batches"])):
            final[start + offset] = number

    # The reconstruction must cover the whole stream: every batch
    # disposed (exactly once — `final` is per-index by construction).
    covered = sorted(final)
    if covered != list(range(batches)):
        failures.append(
            f"disposals cover stream indices {covered}, "
            f"expected 0..{batches - 1}"
        )
    return failures


def run_cell(
    root: Path,
    point: str,
    hits: int,
    batches: int,
    seed: int,
    baseline_fingerprint: str,
    timeout: float = 300.0,
) -> CellResult:
    """Run one matrix cell in ``root/<point>_<hits>``: crash, recover,
    verify."""
    workdir = root / f"{point.replace('.', '_')}_{hits}"
    workdir.mkdir(parents=True, exist_ok=True)
    failures: List[str] = []

    armed = point if hits == 1 else f"{point}:{hits}"
    crashed = _run_driver(workdir, batches, seed, armed=armed, timeout=timeout)
    if crashed.returncode != EXIT_CODE:
        failures.append(
            f"armed run exited {crashed.returncode}, expected {EXIT_CODE} "
            + (
                "(crash point never hit)"
                if crashed.returncode == 0
                else f"(stderr: {crashed.stderr.strip()[-300:]})"
            )
        )
        return CellResult(
            point,
            hits,
            str(workdir),
            crash_exit=crashed.returncode,
            failures=tuple(failures),
        )

    recovered = _run_driver(workdir, batches, seed, timeout=timeout)
    if recovered.returncode != 0:
        failures.append(
            f"recovery run exited {recovered.returncode} "
            f"(stderr: {recovered.stderr.strip()[-300:]})"
        )
        return CellResult(
            point,
            hits,
            str(workdir),
            crash_exit=crashed.returncode,
            recover_exit=recovered.returncode,
            failures=tuple(failures),
        )

    result = _load_result(workdir)
    fingerprint = None
    cursor = None
    if result is None:
        failures.append("recovery run left no readable result.json")
    else:
        fingerprint = result.get("fib_fingerprint")
        cursor = result.get("cursor")
        if fingerprint != baseline_fingerprint:
            failures.append(
                f"FIB fingerprint {fingerprint} != baseline "
                f"{baseline_fingerprint} — recovered state diverged"
            )
        if cursor != batches:
            failures.append(
                f"final cursor {cursor} != stream length {batches}"
            )
    failures.extend(
        verify_journal(workdir / chaos_driver.JOURNAL_NAME, batches)
    )
    return CellResult(
        point,
        hits,
        str(workdir),
        crash_exit=crashed.returncode,
        recover_exit=recovered.returncode,
        fingerprint=fingerprint,
        cursor=cursor,
        failures=tuple(failures),
    )


def run_matrix(
    root: Optional[Path] = None,
    points: Optional[Sequence[str]] = None,
    smoke: bool = False,
    batches: int = chaos_driver.DEFAULT_BATCHES,
    seed: int = chaos_driver.DEFAULT_SEED,
    timeout: float = 300.0,
    progress: Optional[Callable[[str], None]] = None,
) -> MatrixReport:
    """Run the crash matrix and return the full report.

    ``root`` holds one subdirectory per cell plus ``baseline/``; when
    omitted a temporary directory is created (and left in place for
    post-mortems — the cells' journals *are* the evidence)."""
    say = progress or (lambda message: None)
    if root is None:
        root = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    root = Path(root)
    report = MatrixReport(batches=batches, seed=seed)

    say(f"baseline: fault-free run in {root / 'baseline'}")
    baseline_dir = root / "baseline"
    baseline_dir.mkdir(parents=True, exist_ok=True)
    baseline_proc = _run_driver(baseline_dir, batches, seed, timeout=timeout)
    baseline = _load_result(baseline_dir)
    if baseline_proc.returncode != 0 or baseline is None:
        report.error = (
            f"baseline run failed (exit {baseline_proc.returncode}): "
            f"{baseline_proc.stderr.strip()[-300:]}"
        )
        return report
    report.baseline_fingerprint = baseline["fib_fingerprint"]
    report.baseline_cursor = baseline["cursor"]
    report.baseline_quarantined = baseline["quarantined"]

    for point, hits in matrix_cells(points, smoke=smoke):
        cell = run_cell(
            root,
            point,
            hits,
            batches,
            seed,
            report.baseline_fingerprint,
            timeout=timeout,
        )
        report.cells.append(cell)
        status = "ok" if cell.ok else "FAIL: " + "; ".join(cell.failures)
        say(f"kill at {point} (hit {hits}): {status}")
    return report


# Re-exported so `python -m repro.chaos.harness --list` style tooling and
# the docs table test can iterate the registry without importing points.
REGISTERED_POINTS = CRASH_POINTS
