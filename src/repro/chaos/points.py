"""Named crash points at every durability boundary.

A *crash point* marks the instant between two storage side effects where
a process death must leave recoverable state: after the checkpoint temp
file is written but before the fsync, after the fsync but before the
rename, after a batch commits but before the cursor advances, and so on.
The registry below is the single source of truth — the chaos matrix
(`repro chaos`), the DESIGN §4i table, and the instrumentation call
sites are all tested against it.

Activation is deliberately dual:

- **Subprocess mode** (the chaos harness): set ``REPRO_CRASH_POINT`` to
  ``"name"`` or ``"name:N"`` in the child's environment and the N-th
  execution of that point calls ``os._exit(EXIT_CODE)`` — no cleanup
  handlers, no atexit, exactly like SIGKILL at that instruction.
- **In-process mode** (unit tests): ``arm(name, mode="raise")`` makes
  the point raise :class:`CrashPointHit` instead, so a test can assert
  on-disk state without forking.

This module must stay stdlib-only with no repro imports: it is called
from ``telemetry.atomic``, ``obs.journal``, ``resilience.checkpoint``,
and ``serve`` — importing any of them here would cycle.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

__all__ = [
    "CRASH_POINTS",
    "ENV_VAR",
    "EXIT_CODE",
    "CrashPointHit",
    "arm",
    "crash_point",
    "disarm",
    "point_names",
]

#: Environment variable read once at import: ``"name"`` or ``"name:N"``
#: (die on the N-th hit, 1-based).
ENV_VAR = "REPRO_CRASH_POINT"

#: Exit status used by ``os._exit`` — matches SIGKILL's 128+9 so the
#: harness can treat "we killed it" uniformly.
EXIT_CODE = 137

#: Every instrumented durability boundary: (name, what dies in between).
#: Names are ``<subsystem>.<instant>``. The chaos matrix iterates this
#: tuple; a test asserts each name has exactly one call site and one
#: DESIGN.md table row.
CRASH_POINTS: Tuple[Tuple[str, str], ...] = (
    (
        "checkpoint.tmp",
        "checkpoint temp file written and flushed, not yet fsynced",
    ),
    (
        "checkpoint.fsync",
        "checkpoint temp file fsynced, not yet rotated or renamed",
    ),
    (
        "checkpoint.rotate",
        "generation ring rotated, new checkpoint not yet renamed in",
    ),
    (
        "checkpoint.replace",
        "checkpoint renamed into place, manifest not yet rewritten",
    ),
    (
        "checkpoint.manifest",
        "checkpoint and manifest both durable (post-commit control)",
    ),
    (
        "journal.append",
        "journal line half-written (torn tail, no trailing newline)",
    ),
    (
        "cursor.commit",
        "batch committed and journaled, cursor not yet advanced",
    ),
    (
        "telemetry.export",
        "telemetry temp file fsynced, not yet renamed over the target",
    ),
    (
        "deadletter.dump",
        "dead-letter batch payload written, meta.json not yet written",
    ),
)

_NAMES = frozenset(name for name, _ in CRASH_POINTS)


class CrashPointHit(RuntimeError):
    """Raised (instead of dying) when a point armed in-process fires."""


def point_names() -> Tuple[str, ...]:
    return tuple(name for name, _ in CRASH_POINTS)


def _parse_env(value: str) -> Tuple[str, int]:
    name, _, count = value.partition(":")
    try:
        hits = int(count) if count else 1
    except ValueError:
        hits = 1
    return name, max(1, hits)


class _Armed:
    __slots__ = ("name", "hits", "mode", "seen")

    def __init__(self, name: str, hits: int, mode: str) -> None:
        self.name = name
        self.hits = hits
        self.mode = mode
        self.seen = 0


_armed: Optional[_Armed] = None

_env = os.environ.get(ENV_VAR)
if _env:
    _env_name, _env_hits = _parse_env(_env)
    if _env_name in _NAMES:
        _armed = _Armed(_env_name, _env_hits, "exit")
    del _env_name, _env_hits
del _env


def arm(name: str, hits: int = 1, mode: str = "raise") -> None:
    """Arm one crash point in-process.

    ``mode="raise"`` raises :class:`CrashPointHit` on the ``hits``-th
    execution; ``mode="exit"`` dies with ``os._exit(EXIT_CODE)`` exactly
    like the subprocess env var. Only one point can be armed at a time.
    """
    global _armed
    if name not in _NAMES:
        raise ValueError(f"unknown crash point: {name!r}")
    if mode not in ("raise", "exit"):
        raise ValueError(f"unknown crash mode: {mode!r}")
    _armed = _Armed(name, max(1, hits), mode)


def disarm() -> None:
    global _armed
    _armed = None


def crash_point(
    name: str, tear: Optional[Callable[[], None]] = None
) -> None:
    """Die here if this point is armed; no-op (fast) otherwise.

    ``tear`` runs just before dying — call sites use it to leave the
    *realistic* partial state behind (e.g. ``journal.append`` writes the
    torn half-line a mid-write kill would leave).
    """
    armed = _armed
    if armed is None or armed.name != name:
        return
    armed.seen += 1
    if armed.seen < armed.hits:
        return
    if tear is not None:
        tear()
    if armed.mode == "exit":
        os._exit(EXIT_CODE)
    disarm()
    raise CrashPointHit(name)
