"""The ``repro`` command line interface.

Subcommands (also available as ``python -m repro``):

- ``generate``  synthesize a topology + configuration snapshot on disk;
- ``show-fib``  compute and print the converged FIB of a snapshot;
- ``verify``    incrementally verify the change from one snapshot to
  another (loop- and blackhole-freedom plus optional all-pairs edge
  reachability), printing the paper-style delta report;
- ``trace``     dump the forwarding paths of a concrete packet;
- ``mine``      mine the fault-tolerance specification (which pairs stay
  reachable under every single link failure, and how many disjoint paths
  survive);
- ``diff``      show the configuration-line diff between two snapshots;
- ``lint``      run semantic static analysis over a snapshot (full, or
  scoped to the diff against a base snapshot), with text / JSON / SARIF
  output;
- ``profile``   replay a generated change workload through the verifier
  and print the per-stage latency breakdown with incremental-work ratios;
- ``checkpoint`` verify a snapshot and serialize the verifier's full state
  to a file; ``verify --resume-from FILE`` later resumes from it without
  re-converging the control plane;
- ``audit``     recompute the FIB / EC model / policy verdicts from
  scratch and diff them against a verifier's incremental state (built
  from a snapshot directory or restored from a checkpoint file); with
  ``--recover``, rebuild on drift and re-audit;
- ``serve``     long-lived change-stream daemon: verify a stream of
  change batches with per-batch deadlines, retry + backoff, poison-batch
  quarantine, a circuit breaker that degrades to full-rebuild mode, a
  health-file heartbeat, and graceful checkpointing shutdown;
- ``watch``     the polling alias of ``serve`` — pick up new batch files
  dropped into a directory;
- ``serve --tenants DIR`` serves a whole fleet: one verifier per tenant
  directory, with per-tenant fault isolation, weighted-fair scheduling,
  bounded per-tenant queues, and an LRU memory budget over hydrated
  models (cold tenants live as checkpoints);
- ``tenant``    fleet administration for ``serve --tenants``:
  ``add`` / ``evict`` / ``status`` / ``replay``;
- ``top``       compact dashboard of a running serve daemon, read from
  the live introspection server (``serve --obs-port``);
- ``tail``      replay / follow a serve daemon's event journal over the
  same introspection server (``--journal FILE --repair`` fixes a torn
  final line in place);
- ``chaos``     run the deterministic crash matrix: kill a serve
  workload at every instrumented durability boundary in turn and prove
  recovery (byte-identical FIB fingerprint, gapless journal seqs, no
  batch lost or applied twice);
- ``emit-stream`` generate a JSONL change-batch stream (the producer
  side of ``serve``).

Global observability flags (before the subcommand):

- ``--trace FILE``    record spans and write Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``);
- ``--metrics FILE``  record counters/histograms and write the Prometheus
  text exposition.

Exit-code contract (CI gates rely on it):

- ``0`` — clean: empty diff, no lint finding at/above the failure
  threshold, verification/trace/mine succeeded;
- ``1`` — finding: non-empty diff, lint diagnostics at/above ``--fail-on``,
  a newly violated policy, an undelivered packet, or a fragile pair;
- ``2`` — usage or input error (bad arguments, unparseable snapshot).

Example session::

    python -m repro generate --topology fat-tree:4 --protocol bgp --out base
    cp -r base changed && $EDITOR changed/configs/agg0_0.cfg
    python -m repro diff base changed
    python -m repro lint changed --base base --format text
    python -m repro verify base changed
    python -m repro trace changed --source edge0_0 --dst 172.16.7.5
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.config.diff import diff_snapshots
from repro.config.io import load_snapshot, save_snapshot
from repro.config.schema import ConfigError
from repro.core.realconfig import LintGateError, RealConfig
from repro.lint import LintRunner, Severity, Suppression
from repro.lint.output import FORMATTERS
from repro.net.addr import parse_ipv4
from repro.net.headerspace import HeaderBox, header
from repro.net.topologies import fat_tree, grid, line, random_connected, ring
from repro.policy.spec import BlackholeFree, LoopFree, Reachability
from repro.policy.trace import format_traces, trace_packet
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    atomic_write_text,
    chrome_trace,
    get_tracer,
    names,
    prometheus_text,
    set_metrics,
    set_tracer,
    summary_tree,
    tracing_enabled,
)
from repro.workloads import snapshot_for


class CliError(Exception):
    """User-facing CLI failure."""


def _build_topology(spec: str):
    """Parse 'fat-tree:4', 'ring:5', 'line:3', 'grid:3x4', 'random:8:3'."""
    kind, _, rest = spec.partition(":")
    try:
        if kind == "fat-tree":
            return fat_tree(int(rest))
        if kind == "ring":
            return ring(int(rest))
        if kind == "line":
            return line(int(rest))
        if kind == "grid":
            rows, _, cols = rest.partition("x")
            return grid(int(rows), int(cols))
        if kind == "random":
            n, _, extra = rest.partition(":")
            return random_connected(int(n), int(extra or 0), seed=0)
    except ValueError as error:
        raise CliError(f"bad topology spec {spec!r}: {error}") from error
    raise CliError(
        f"unknown topology kind {kind!r} "
        "(expected fat-tree:k, ring:n, line:n, grid:RxC, random:n[:extra])"
    )


def cmd_generate(args: argparse.Namespace) -> int:
    labeled = _build_topology(args.topology)
    snapshot = snapshot_for(labeled, args.protocol)
    save_snapshot(snapshot, args.out)
    print(
        f"wrote {labeled.topology.num_nodes()} device configs "
        f"({args.protocol}) and topology to {args.out}/"
    )
    return 0


def cmd_show_fib(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    from repro.routing.program import ControlPlane

    control_plane = ControlPlane()
    control_plane.update_to(snapshot)
    entries = control_plane.fib()
    for entry in entries:
        if args.node is None or entry.node == args.node:
            print(entry)
    print(f"-- {len(entries)} entries total", file=sys.stderr)
    return 0


def _reachability_policies(snapshot) -> List[Reachability]:
    """All-pairs reachability between prefix-originating devices."""
    owners = {}
    for device in snapshot.iter_devices():
        prefixes = []
        if device.bgp is not None:
            prefixes.extend(device.bgp.networks)
        for iface in device.interfaces.values():
            if (
                iface.prefix is not None
                and iface.name.startswith("host")
                and iface.is_up()
            ):
                prefixes.append(iface.prefix)
        if prefixes:
            owners[device.hostname] = prefixes[0]
    policies = []
    for src in sorted(owners):
        for dst in sorted(owners):
            if src == dst:
                continue
            policies.append(
                Reachability(
                    f"reach:{src}->{dst}",
                    src=src,
                    dst=dst,
                    match=HeaderBox.from_dst_prefix(owners[dst]),
                )
            )
    return policies


def _pool_kwargs(args: argparse.Namespace) -> dict:
    """RealConfig kwargs for the global --workers/--parallel-backend flags."""
    return {
        "workers": args.workers or 1,
        "parallel_backend": args.parallel_backend or "auto",
    }


def _restore_resolved(args: argparse.Namespace, path: str):
    """Restore a checkpoint through the generation ring, applying any
    pool-flag overrides.  Returns the full
    :class:`~repro.resilience.checkpoint.RestoredCheckpoint` so callers
    can read the extras (stream cursor) from the *same* resolution that
    produced the verifier.  A fallback to an older generation is
    reported on stderr — the newest file was corrupt and the operator
    should know — but never fails the restore."""
    from repro.resilience.checkpoint import restore_checkpoint

    restored = restore_checkpoint(path)
    verifier = restored.verifier
    if args.workers is not None or args.parallel_backend is not None:
        verifier.set_workers(
            verifier._options.get("workers", 1)
            if args.workers is None
            else args.workers,
            args.parallel_backend,
        )
    if restored.fell_back:
        for skipped_path, error in restored.skipped:
            print(
                f"warning: skipped checkpoint generation "
                f"{skipped_path}: {error}",
                file=sys.stderr,
            )
        print(
            f"warning: fell back to checkpoint generation "
            f"{restored.generation} ({restored.path})",
            file=sys.stderr,
        )
    return restored


def _restore_verifier(args: argparse.Namespace, path: str) -> RealConfig:
    """Restore a checkpoint, applying any pool-flag overrides."""
    return _restore_resolved(args, path).verifier


def cmd_verify(args: argparse.Namespace) -> int:
    base = load_snapshot(args.base)
    changed = load_snapshot(args.changed)
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    if args.all_pairs:
        policies.extend(_reachability_policies(base))
    if args.resume_from is not None:
        verifier = _restore_verifier(args, args.resume_from)
        print(
            f"resumed verifier from {args.resume_from}: "
            f"{verifier.initial.report.summary()}"
        )
    else:
        verifier = RealConfig(
            base, policies=policies, lint_mode=args.lint, **_pool_kwargs(args)
        )
        print(f"base snapshot verified: {verifier.initial.report.summary()}")
    broken_at_base = verifier.violated_policies()
    for status in broken_at_base:
        print(f"  already violated at base: {status}")
    try:
        delta = verifier.verify_snapshot(changed)
    except LintGateError as error:
        print(f"REFUSED by lint gate: {error}", file=sys.stderr)
        verifier.close()
        return 1
    except ConfigError as error:
        # e.g. the changed snapshot alters the topology: refused up front,
        # the verifier's state is untouched.
        print(f"error: cannot verify changed snapshot: {error}", file=sys.stderr)
        verifier.close()
        return 2
    verifier.close()
    print(delta.summary())
    if delta.lint is not None:
        for diag in delta.lint.diagnostics:
            print(f"  lint: {diag}")
    for status in delta.newly_violated:
        print(f"  NEWLY VIOLATED: {status}")
    for status in delta.newly_satisfied:
        print(f"  newly satisfied: {status}")
    return 0 if delta.ok else 1


def _serve_verifier(args: argparse.Namespace):
    """The (verifier, resume_cursor, resume_fallback) triple for a
    serve/watch run.  Verifier and cursor come from one checkpoint
    resolution — resolving twice could straddle a concurrent write and
    pair generation N state with generation N-1's cursor."""
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    if args.all_pairs:
        snapshot = load_snapshot(args.snapshot)
        policies.extend(_reachability_policies(snapshot))
    if args.resume_from is not None:
        restored = _restore_resolved(args, args.resume_from)
        cursor = int((restored.extras.get("serve") or {}).get("cursor", 0))
        fallback = None
        if restored.fell_back:
            fallback = {
                "requested": str(restored.requested),
                "used": str(restored.path),
                "generation": restored.generation,
                "skipped": [
                    {"path": str(p), "error": str(e)}
                    for p, e in restored.skipped
                ],
            }
        print(
            f"resumed verifier from {restored.path} "
            f"at stream cursor {cursor}"
        )
        return restored.verifier, cursor, fallback
    snapshot = load_snapshot(args.snapshot)
    verifier = RealConfig(
        snapshot, policies=policies, lint_mode=args.lint, **_pool_kwargs(args)
    )
    print(f"base snapshot verified: {verifier.initial.report.summary()}")
    return verifier, 0, None


def cmd_serve(args: argparse.Namespace) -> int:
    """Long-lived serving loop over a change stream (and ``repro watch``,
    which polls a directory for new batch files instead of reading a
    finite stream)."""
    from repro.serve import (
        DeadLetterBox,
        ServeDaemon,
        ServeOptions,
        read_stream,
        watch_stream,
    )

    if getattr(args, "tenants", None) is not None:
        if args.snapshot is not None or args.stream is not None:
            raise CliError(
                "--tenants serves per-tenant snapshots/streams from DIR; "
                "do not also pass SNAPSHOT or --stream"
            )
        if args.resume_from is not None:
            raise CliError(
                "--resume-from is implicit in multi-tenant mode: each "
                "tenant resumes from its own checkpoint.ckpt"
            )
        return _cmd_serve_tenants(args)
    if args.snapshot is None or args.stream is None:
        raise CliError(
            f"{args.command} needs SNAPSHOT and --stream"
            + (" (or --tenants DIR)" if args.command == "serve" else "")
        )
    verifier, cursor, resume_fallback = _serve_verifier(args)
    watching = args.command == "watch"
    options = ServeOptions(
        deadline_seconds=args.deadline,
        max_retries=args.max_retries,
        backoff_base=args.backoff_base,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        queue_capacity=args.queue_capacity,
        poll_interval=args.poll_interval,
        audit_every=args.audit_every,
        checkpoint_every=args.checkpoint_every,
        checkpoint_generations=args.checkpoint_generations,
        health_file=args.health_file,
        checkpoint_file=args.checkpoint,
        journal_file=args.journal,
        obs_port=args.obs_port,
    )
    if watching:
        source = watch_stream(
            args.stream,
            idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        )
    else:
        source = read_stream(args.stream)
    daemon = ServeDaemon(
        verifier,
        source,
        DeadLetterBox(args.dead_letter),
        options,
        resume_cursor=cursor,
        resume_fallback=resume_fallback,
    )
    if daemon.obs_server is not None:
        print(
            f"introspection server on {daemon.obs_server.url} "
            f"(try: repro top {daemon.obs_server.host}:"
            f"{daemon.obs_server.port})"
        )
    stats = daemon.run(handle_signals=True)
    print(f"serve finished: {stats.summary()}")
    if stats.quarantined:
        print(
            f"  {stats.quarantined} poison batch(es) in {args.dead_letter} "
            f"— inspect error.txt/meta.json, fix the cause, then replay "
            f"with: repro serve {args.snapshot} --stream {args.dead_letter}",
            file=sys.stderr,
        )
    if args.checkpoint is not None:
        print(f"  final checkpoint: {args.checkpoint} (cursor {daemon.cursor})")
    return 0 if stats.clean else 1


def _cmd_serve_tenants(args: argparse.Namespace) -> int:
    """``repro serve --tenants DIR``: the multi-tenant service."""
    from repro.serve import ServeOptions
    from repro.tenants import TenantService, TenantServiceOptions

    options = TenantServiceOptions(
        serve=ServeOptions(
            deadline_seconds=args.deadline,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            checkpoint_generations=args.checkpoint_generations,
        ),
        memory_budget_bytes=int(args.memory_budget * 1024 * 1024),
        tenant_queue_capacity=args.tenant_queue,
        checkpoint_every=args.checkpoint_every,
        poll_interval=args.poll_interval,
        drain=not args.linger,
        health_file=args.health_file,
        journal_file=args.journal,
        obs_port=args.obs_port,
    )
    service = TenantService(args.tenants, options)
    print(f"serving {len(service.registry)} tenant(s) from {args.tenants}")
    if service.obs_server is not None:
        print(
            f"introspection server on {service.obs_server.url} "
            f"(try: curl {service.obs_server.url}/tenants)"
        )
    service.run(handle_signals=True)
    totals = service._totals()
    print(f"serve finished: {service.summary()}")
    for state in service.registry.states():
        if state.degraded:
            print(
                f"  degraded tenant {state.tenant_id}: "
                f"{state.stats.quarantined} quarantined "
                f"(replay with: repro tenant replay {args.tenants} "
                f"{state.tenant_id})",
                file=sys.stderr,
            )
    clean = (
        totals["quarantined"] == 0
        and totals["new_violations"] == 0
        and totals["failed"] == 0
    )
    return 0 if clean else 1


def cmd_tenant(args: argparse.Namespace) -> int:
    """``repro tenant {add,evict,status,replay}`` fleet administration."""
    from repro.tenants import TenantConfig, discover_tenants

    directory = args.directory
    if args.tenant_command == "add":
        from repro.config.io import save_snapshot as _save
        from repro.serve.stream import write_stream
        from repro.workloads import snapshot_for, stream_batches

        root = os.path.join(directory, args.id)
        if os.path.isdir(root):
            raise CliError(f"tenant directory {root} already exists")
        labeled = _build_topology(args.topology)
        config = TenantConfig(args.id, root, weight=args.weight)
        config.save()
        snapshot = snapshot_for(labeled, args.protocol)
        _save(snapshot, config.snapshot_dir)
        if args.batches > 0:
            write_stream(
                stream_batches(
                    labeled,
                    protocol=args.protocol,
                    count=args.batches,
                    seed=args.seed,
                ),
                config.stream_file,
            )
        print(
            f"added tenant {args.id} ({args.topology}, {args.protocol}, "
            f"{args.batches} batch(es), weight {args.weight}) under "
            f"{directory} — a live 'serve --tenants' picks it up at its "
            "next control scan"
        )
        return 0

    if args.tenant_command == "evict":
        config = TenantConfig.load(os.path.join(directory, args.id))
        config.evict_marker.touch()
        print(
            f"eviction requested for tenant {config.tenant_id}: a live "
            "service will checkpoint and release it at its next control "
            "scan"
        )
        return 0

    if args.tenant_command == "status":
        import json as _json

        if args.server is not None:
            payload = _json.loads(
                _obs_get(_obs_base_url(args.server) + "/tenants")
            )
            tenants = payload["tenants"]
        else:
            from repro.resilience.checkpoint import read_checkpoint_extras
            from repro.serve import DeadLetterBox

            tenants = []
            for config in discover_tenants(directory):
                cursor = 0
                if config.checkpoint_file.exists():
                    extras = read_checkpoint_extras(config.checkpoint_file)
                    cursor = int((extras.get("serve") or {}).get("cursor", 0))
                quarantined = (
                    len(DeadLetterBox(config.deadletter_dir))
                    if config.deadletter_dir.is_dir()
                    else 0
                )
                tenants.append(
                    {
                        "tenant": config.tenant_id,
                        "weight": config.weight,
                        "status": "offline",
                        "degraded": quarantined > 0,
                        "cursor": cursor,
                        "quarantined": quarantined,
                    }
                )
        degraded = 0
        for entry in tenants:
            flag = " DEGRADED" if entry.get("degraded") else ""
            degraded += 1 if entry.get("degraded") else 0
            print(
                f"{entry['tenant']:<12} {entry.get('status', '?'):<9} "
                f"cursor {entry.get('cursor', 0):>5}  "
                f"quarantined {entry.get('quarantined', 0)}"
                f"{flag}"
            )
        print(f"-- {len(tenants)} tenant(s), {degraded} degraded")
        return 1 if degraded else 0

    if args.tenant_command == "replay":
        from repro.core.realconfig import RealConfig as _RealConfig
        from repro.resilience.checkpoint import read_checkpoint
        from repro.serve import BatchEngine, DeadLetterBox, ServeOptions

        config = TenantConfig.load(os.path.join(directory, args.id))
        box = DeadLetterBox(config.deadletter_dir)
        if len(box) == 0:
            print(f"tenant {config.tenant_id}: dead-letter box is empty")
            return 0
        if config.checkpoint_file.exists():
            verifier = read_checkpoint(config.checkpoint_file)
            print(f"restored {config.tenant_id} from its checkpoint")
        else:
            verifier = _RealConfig(load_snapshot(config.snapshot_dir))
            print(f"built {config.tenant_id} from its snapshot")
        engine = BatchEngine(
            verifier,
            DeadLetterBox(config.deadletter_dir / "replay-failures"),
            options=ServeOptions(breaker_threshold=0, backoff_base=0.0),
        )
        replayed = failed = 0
        for batch in box.replay():
            if engine.process_batch(batch):
                replayed += 1
            else:
                failed += 1
        engine.close()
        print(
            f"replayed {replayed}/{replayed + failed} quarantined "
            f"batch(es) for {config.tenant_id}"
            + (f"; {failed} failed again" if failed else "")
        )
        return 0 if failed == 0 else 1

    raise CliError(f"unknown tenant subcommand {args.tenant_command!r}")


def cmd_emit_stream(args: argparse.Namespace) -> int:
    """Producer side of ``repro serve``: generate a change-batch stream."""
    from repro.net.topologies import LabeledTopology
    from repro.workloads import emit_stream

    snapshot = load_snapshot(args.snapshot)
    labeled = LabeledTopology(snapshot.topology)
    count = emit_stream(
        labeled,
        args.out,
        protocol=args.protocol,
        count=args.count,
        seed=args.seed,
    )
    print(f"wrote {count} change batch(es) to {args.out}")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    import os

    snapshot = load_snapshot(args.snapshot)
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    if args.all_pairs:
        policies.extend(_reachability_policies(snapshot))
    verifier = RealConfig(
        snapshot, policies=policies, lint_mode=args.lint, **_pool_kwargs(args)
    )
    print(f"snapshot verified: {verifier.initial.report.summary()}")
    verifier.checkpoint(args.out)
    verifier.close()
    print(f"wrote checkpoint to {args.out} ({os.path.getsize(args.out)} bytes)")
    return 0


def _load_verifier_state(state: str, args: argparse.Namespace) -> RealConfig:
    """A verifier from either a checkpoint file or a snapshot directory."""
    import os

    if os.path.isdir(state):
        snapshot = load_snapshot(state)
        verifier = RealConfig(
            snapshot,
            policies=[LoopFree("loop-free"), BlackholeFree("blackhole-free")],
            **_pool_kwargs(args),
        )
        print(f"built verifier from snapshot {state}")
        return verifier
    verifier = _restore_verifier(args, state)
    print(f"restored verifier from checkpoint {state}")
    return verifier


def _print_drift(report) -> None:
    print(report.summary())
    for entry in report.fib_missing[:10]:
        print(f"  FIB missing: {entry}")
    for entry in report.fib_extra[:10]:
        print(f"  FIB extra:   {entry}")
    for drift in report.port_drift[:10]:
        print(f"  port drift:  {drift}")
    for drift in report.policy_drift[:10]:
        print(f"  policy drift: {drift}")


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.resilience.audit import audit, recover

    verifier = _load_verifier_state(args.state, args)
    try:
        if args.recover:
            report, post = recover(verifier)
            _print_drift(report)
            if post is not None:
                print(f"recovered by rebuild: {post.summary()}")
            return 0 if report.ok else 1
        report = audit(verifier)
        _print_drift(report)
        return 0 if report.ok else 1
    finally:
        verifier.close()


def cmd_trace(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    verifier = RealConfig(snapshot)
    packet = header(
        parse_ipv4(args.dst),
        src_ip=parse_ipv4(args.src) if args.src else 0,
        proto=args.proto,
        dst_port=args.port,
    )
    traces = trace_packet(verifier.model, packet, args.source)
    print(format_traces(traces))
    return 0 if any(t.delivered() for t in traces) else 1


def cmd_mine(args: argparse.Namespace) -> int:
    """Mine the fault-tolerance specification under single link failures."""
    from repro.net.topologies import LabeledTopology
    from repro.policy.mining import SpecificationMiner

    snapshot = load_snapshot(args.snapshot)
    labeled = LabeledTopology(snapshot.topology)
    # Endpoints: devices originating host prefixes (host* stubs or BGP
    # network statements) — same heuristic as verify --all-pairs.
    endpoints = sorted(
        {
            device.hostname
            for device in snapshot.iter_devices()
            if (device.bgp is not None and device.bgp.networks)
            or any(
                iface.name.startswith("host") and iface.prefix is not None
                for iface in device.interfaces.values()
            )
        }
    )
    if len(endpoints) < 2:
        print("error: fewer than two endpoint devices found", file=sys.stderr)
        return 2
    miner = SpecificationMiner(labeled, snapshot, endpoints=endpoints)
    spec = miner.mine(with_widths=not args.no_widths)
    print(spec.summary())
    for src, dst in sorted(spec.always_reachable):
        width = spec.min_width.get((src, dst))
        suffix = f" (width >= {width})" if width is not None else ""
        print(f"  always: {src} -> {dst}{suffix}")
    for src, dst in sorted(spec.fragile):
        print(f"  FRAGILE: {src} -> {dst}")
    return 0 if not spec.fragile else 1


def cmd_diff(args: argparse.Namespace) -> int:
    base = load_snapshot(args.base)
    changed = load_snapshot(args.changed)
    diff = diff_snapshots(base, changed)
    print(diff)
    print(f"-- {diff.summary()}", file=sys.stderr)
    return 0 if diff.is_empty() else 1


def cmd_lint(args: argparse.Namespace) -> int:
    if args.explain is not None:
        from repro.lint.passes import explain_code

        text = explain_code(args.explain)
        if text is None:
            raise CliError(f"unknown lint code {args.explain!r}")
        print(text)
        return 0
    if args.snapshot is None:
        raise CliError("snapshot directory required (or use --explain CODE)")
    try:
        suppressions = [Suppression.parse(text) for text in args.suppress]
    except ValueError as error:
        raise CliError(str(error)) from error
    # Load without referential validation: dangling references are exactly
    # what the undefined-references pass reports as diagnostics.
    snapshot = load_snapshot(args.snapshot, validate=False)
    runner = LintRunner(suppressions=suppressions)
    if args.base is not None:
        base = load_snapshot(args.base, validate=False)
        previous = runner.run(base)
        diff = diff_snapshots(base, snapshot)
        result = runner.run_incremental(snapshot, diff, previous)
        print(
            f"-- incremental: {len(result.passes_run)}/"
            f"{len(runner.passes)} passes re-run over "
            f"{diff.summary()}; "
            f"{result.objects_scanned}/{result.objects_total} graph "
            "objects analyzed",
            file=sys.stderr,
        )
    else:
        result = runner.run(snapshot)
    print(FORMATTERS[args.format](result, snapshot))
    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    return 0 if result.ok(fail_on=threshold) else 1


def _profile_changes(args: argparse.Namespace, snapshot):
    from repro.net.topologies import LabeledTopology
    from repro.workloads import lc_changes, link_failures, lp_changes

    labeled = LabeledTopology(snapshot.topology)
    generators = {
        "link-failure": link_failures,
        "lc": lc_changes,
        "lp": lp_changes,
    }
    changes = generators[args.workload](labeled, seed=args.seed)
    if not changes:
        raise CliError(
            f"workload {args.workload!r} produced no changes for this snapshot"
        )
    return changes[: args.count]


def _stat_row(label: str, samples: List[float]) -> str:
    import statistics

    ms = [s * 1000 for s in samples]
    return (
        f"  {label:<14s} {statistics.mean(ms):9.2f} "
        f"{statistics.median(ms):9.2f} {min(ms):9.2f} {max(ms):9.2f}"
    )


def _ratio(part: float, whole: float) -> str:
    if whole <= 0:
        return "n/a"
    return f"{part / whole:.3f}"


def _print_worker_attribution(tracer: Tracer) -> None:
    """Aggregate the grafted ``parallel.worker`` spans into a per-worker
    wall-clock table: rounds handled, dispatch-queue wait, and compute
    per phase — plus the compute split across the worker-side stages."""
    per_worker = {}
    stage_totals = {}
    for sp in tracer.finished:
        if sp.name == names.SPAN_WORKER:
            idx = sp.attributes.get("worker", -1)
            row = per_worker.setdefault(
                idx,
                {
                    "rounds": 0,
                    "queue_wait": 0.0,
                    "seed": 0.0,
                    "model": 0.0,
                    "policy": 0.0,
                },
            )
            row["rounds"] += 1
            row["queue_wait"] += sp.attributes.get("queue_wait_seconds", 0.0)
            phase = sp.attributes.get("phase")
            if phase in ("seed", "model", "policy"):
                row[phase] += sp.duration
        elif sp.name.startswith(names.SPAN_WORKER + "."):
            stage = sp.name[len(names.SPAN_WORKER) + 1:]
            stage_totals[stage] = stage_totals.get(stage, 0.0) + sp.duration
    print()
    print("parallel worker attribution (grafted worker spans, ms)")
    if not per_worker:
        print("  no worker spans recorded (inline backend seeds eagerly; "
              "rounds may have run before tracing was enabled)")
        return
    print(f"  {'worker':<8s} {'rounds':>6s} {'queue':>9s} {'seed':>9s} "
          f"{'model':>9s} {'policy':>9s}")
    for idx in sorted(per_worker):
        row = per_worker[idx]
        print(
            f"  w{idx:<7d} {row['rounds']:>6d} "
            f"{row['queue_wait'] * 1000:>9.2f} {row['seed'] * 1000:>9.2f} "
            f"{row['model'] * 1000:>9.2f} {row['policy'] * 1000:>9.2f}"
        )
    if stage_totals:
        split = ", ".join(
            f"{stage} {seconds * 1000:.2f}"
            for stage, seconds in sorted(stage_totals.items())
        )
        print(f"  compute split across workers (ms): {split}")


def cmd_profile(args: argparse.Namespace) -> int:
    """Replay a generated change workload and print where time and
    incremental work went — the CLI face of the paper's Tables 2-3."""
    if (args.workers or 1) > 1 and not tracing_enabled():
        # Per-worker attribution is built from grafted worker spans, so a
        # parallel profile records them on a local tracer even when the
        # global --trace flag did not install one.
        local = Tracer()
        previous = set_tracer(local)
        try:
            return _profile_run(args)
        finally:
            set_tracer(previous)
    return _profile_run(args)


def _profile_run(args: argparse.Namespace) -> int:
    import statistics

    snapshot = load_snapshot(args.snapshot)
    policies = [LoopFree("loop-free"), BlackholeFree("blackhole-free")]
    if args.all_pairs:
        policies.extend(_reachability_policies(snapshot))
    verifier = RealConfig(
        snapshot, policies=policies, lint_mode=args.lint, **_pool_kwargs(args)
    )
    changes = _profile_changes(args, snapshot)
    initial = verifier.initial

    stages = {
        "config diff": [],
        "lint gate": [],
        "generation": [],
        "model update": [],
        "policy check": [],
        "total": [],
    }
    work = {
        "ddlog records": [],
        "ddlog messages": [],
        "ddlog recomputes": [],
        "ecs affected": [],
        "ec moves": [],
        "ports touched": [],
        "policies rechecked": [],
        "lint units reused": [],
        "lint units run": [],
        "lint objects scanned": [],
        "lint objects total": [],
    }
    verified = 0
    for _ in range(args.repeat):
        for change in changes:
            inverse = change.invert(verifier.snapshot)
            delta = verifier.apply_change(change)
            verified += 1
            timings = delta.timings
            stages["config diff"].append(timings.config_diff)
            stages["lint gate"].append(timings.lint)
            stages["generation"].append(timings.generation)
            stages["model update"].append(timings.model_update)
            stages["policy check"].append(timings.policy_check)
            stages["total"].append(timings.total)
            if delta.engine is not None:
                work["ddlog records"].append(delta.engine.records)
                work["ddlog messages"].append(delta.engine.messages)
                work["ddlog recomputes"].append(delta.engine.recompute_calls)
            if delta.batch is not None:
                work["ecs affected"].append(
                    len(delta.batch.affected_ec_ids(verifier.model))
                )
                work["ec moves"].append(delta.batch.num_moves)
                work["ports touched"].append(delta.batch.ports_touched)
            work["policies rechecked"].append(delta.report.policies_rechecked)
            if delta.lint is not None:
                work["lint units reused"].append(delta.lint.units_reused)
                work["lint units run"].append(delta.lint.units_run)
                work["lint objects scanned"].append(
                    delta.lint.objects_scanned
                )
                work["lint objects total"].append(delta.lint.objects_total)
            verifier.apply_change(inverse)  # roll back (also verified)

    num_devices = sum(1 for _ in snapshot.iter_devices())
    print(
        f"profiled {len(changes)} {args.workload} change(s) x "
        f"{args.repeat} repeat(s) = {verified} verification(s) "
        f"on {args.snapshot} ({num_devices} devices, "
        f"{verifier.model.num_ecs()} ECs, "
        f"{len(verifier.checker.policies())} policies, lint={args.lint})"
    )
    print(
        f"initial convergence: {initial.timings.total * 1000:.1f} ms, "
        f"{len(initial.rule_updates)} rule updates"
        + (
            f", {initial.engine.records} ddlog records"
            if initial.engine is not None
            else ""
        )
    )
    print()
    print(f"  {'stage':<14s} {'mean ms':>9s} {'median':>9s} "
          f"{'min':>9s} {'max':>9s}")
    for label, samples in stages.items():
        print(_stat_row(label, samples))
    print()
    print("incremental work (mean per change / snapshot total = ratio)")

    def mean_of(key: str) -> Optional[float]:
        return statistics.mean(work[key]) if work[key] else None

    records = mean_of("ddlog records")
    if records is not None and initial.engine is not None:
        print(
            f"  ddlog records      {records:10.1f} / "
            f"{initial.engine.records} initial-epoch = "
            f"{_ratio(records, initial.engine.records)}"
        )
        print(
            f"  ddlog messages     {mean_of('ddlog messages'):10.1f}   "
            f"(recomputes {mean_of('ddlog recomputes'):.1f})"
        )
    ecs = mean_of("ecs affected")
    if ecs is not None:
        total_ecs = verifier.model.num_ecs()
        print(
            f"  ECs affected       {ecs:10.1f} / {total_ecs} total = "
            f"{_ratio(ecs, total_ecs)}"
        )
        print(
            f"  EC moves           {mean_of('ec moves'):10.1f}   "
            f"(ports touched {mean_of('ports touched'):.1f})"
        )
    rechecked = mean_of("policies rechecked")
    if rechecked is not None:
        registered = len(verifier.checker.policies())
        print(
            f"  policies rechecked {rechecked:10.1f} / {registered} "
            f"registered = {_ratio(rechecked, registered)}"
        )
    reused = mean_of("lint units reused")
    if reused is not None:
        units = reused + (mean_of("lint units run") or 0.0)
        print(
            f"  lint units reused  {reused:10.1f} / {units:.1f} total = "
            f"{_ratio(reused, units)}"
        )
    scanned = mean_of("lint objects scanned")
    if scanned is not None:
        graph_objects = mean_of("lint objects total") or 0.0
        print(
            f"  lint objects       {scanned:10.1f} / {graph_objects:.1f} "
            f"graph = {_ratio(scanned, graph_objects)}"
        )
    if (args.workers or 1) > 1 and get_tracer().enabled:
        _print_worker_attribution(get_tracer())
    verifier.close()
    return 0


def _obs_base_url(target: str) -> str:
    """Accept 'HOST:PORT', ':PORT', or a full URL for top/tail."""
    if target.startswith(":"):
        target = "127.0.0.1" + target
    if "://" not in target:
        target = "http://" + target
    return target.rstrip("/")


def _obs_get(url: str, timeout: float = 5.0) -> str:
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:  # noqa: S310 - loopback
        return response.read().decode("utf-8")


def _render_top(health: dict, stats: dict) -> None:
    breaker = health.get("breaker") or {}
    print(
        f"status={health.get('status')} mode={health.get('mode')} "
        f"cursor={health.get('cursor')} "
        f"queue={health.get('queue_depth')} "
        f"breaker={breaker.get('state', 'off')}"
    )
    print(
        f"  batches {health.get('batches_ok')}/{health.get('batches_seen')}"
        f" ok, {health.get('retries')} retries, "
        f"{health.get('quarantined')} quarantined, "
        f"{health.get('new_violations')} new violations"
    )
    histograms = stats.get("histograms") or {}
    if histograms:
        print(f"  {'stage':<12s} {'count':>6s} {'mean ms':>9s} {'p50':>8s} "
              f"{'p95':>8s} {'p99':>8s} {'max':>8s}")
        for stage, h in sorted(histograms.items()):
            print(
                f"  {stage:<12s} {h['count']:>6d} "
                f"{h['mean_seconds'] * 1000:>9.2f} "
                f"{h['p50_seconds'] * 1000:>8.2f} "
                f"{h['p95_seconds'] * 1000:>8.2f} "
                f"{h['p99_seconds'] * 1000:>8.2f} "
                f"{h['max_seconds'] * 1000:>8.2f}"
            )
    print(
        f"  journal seq {stats.get('journal_seq')}, "
        f"flight dumps {stats.get('flight_dumps')}"
    )


def cmd_top(args: argparse.Namespace) -> int:
    """One-shot (or --watch) dashboard over /health and /stats."""
    import json

    base = _obs_base_url(args.server)
    try:
        while True:
            health = json.loads(_obs_get(base + "/health"))
            stats = json.loads(_obs_get(base + "/stats"))
            if args.watch > 0:
                print(f"-- {time.strftime('%H:%M:%S')} {base}")
            _render_top(health, stats)
            if args.watch <= 0:
                return 0
            time.sleep(args.watch)
            print()
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError) as error:
        raise CliError(
            f"cannot read introspection server at {base}: {error}"
        ) from error


def _format_event(event: dict) -> str:
    threaded = {"seq", "ts", "event", "cid", "batch", "stage", "worker",
                "finding"}
    extras = " ".join(
        f"{key}={event[key]}" for key in sorted(event) if key not in threaded
    )
    stamp = time.strftime("%H:%M:%S", time.localtime(event.get("ts", 0)))
    line = (
        f"{event.get('seq', '?'):>6} {stamp} "
        f"{event.get('event', '?'):<18s} {event.get('cid', '')}"
    )
    return f"{line}  {extras}" if extras else line


def cmd_tail(args: argparse.Namespace) -> int:
    """Replay (and with --follow, keep streaming) the event journal."""
    import json

    if args.journal is None and args.server is None:
        raise CliError("tail needs a SERVER address or --journal FILE")
    if args.journal is not None and args.server is not None:
        raise CliError("pass either a SERVER address or --journal, not both")
    if args.repair:
        if args.journal is None:
            raise CliError("--repair works on a --journal FILE, not a server")
        from repro.obs import repair_journal

        report = repair_journal(args.journal)
        if report.action == "missing":
            raise CliError(f"no journal file at {args.journal}")
        if report.action == "none":
            print(
                f"{args.journal}: clean ({report.kept_bytes} bytes, "
                f"last seq {report.last_seq})"
            )
        else:
            print(f"{args.journal}: {report.action} — {report.detail}")
        return 0
    since = args.since

    if args.journal is not None:
        # Offline mode: replay the JSONL file directly — works after the
        # daemon has exited (seqs are the same ones /events serves).
        from repro.obs import follow_events, read_events

        try:
            if not args.follow:
                for event in read_events(args.journal, since=since):
                    print(_format_event(event))
                return 0
            # follow_events survives logrotate-style rotation and
            # in-place truncation: it re-opens on inode change and
            # resets its cursor when the file shrinks, where a naive
            # re-read with a rising `since` would go silent forever.
            for event in follow_events(
                args.journal, since=since, poll_interval=args.interval
            ):
                print(_format_event(event))
        except KeyboardInterrupt:
            return 0
        return 0

    base = _obs_base_url(args.server)
    try:
        while True:
            body = _obs_get(f"{base}/events?since={since}")
            for line in body.splitlines():
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                since = max(since, event.get("seq", since))
                print(_format_event(event))
            if not args.follow:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError) as error:
        raise CliError(
            f"cannot read introspection server at {base}: {error}"
        ) from error


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: the deterministic crash matrix.

    Kills a subprocess running the serve workload at each named
    durability boundary, restarts it, and asserts the recovery
    invariants (byte-identical FIB fingerprint, gapless journal seqs,
    every batch disposed exactly once).  Exits 0 when every cell
    passes, 1 on any failure, 2 on workload errors.
    """
    from pathlib import Path

    from repro.chaos.harness import matrix_cells, run_matrix
    from repro.chaos.points import CRASH_POINTS

    if args.list:
        width = max(len(name) for name, _ in CRASH_POINTS)
        for name, description in CRASH_POINTS:
            print(f"{name:<{width}}  {description}")
        return 0

    points = None
    if args.points:
        points = [p.strip() for p in args.points.split(",") if p.strip()]
    try:
        cells = matrix_cells(points, smoke=not args.matrix)
    except ValueError as error:
        raise CliError(str(error)) from error
    print(
        f"crash matrix: {len(cells)} cell(s), "
        f"{args.batches} batches, seed {args.seed}"
    )
    report = run_matrix(
        root=Path(args.workdir) if args.workdir else None,
        points=points,
        smoke=not args.matrix,
        batches=args.batches,
        seed=args.seed,
        timeout=args.timeout,
        progress=print,
    )
    if args.report is not None:
        import json as _json

        atomic_write_text(
            args.report,
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        print(f"report written to {args.report}")
    if report.error is not None:
        print(f"error: {report.error}", file=sys.stderr)
        return 2
    failed = report.failed_cells
    print(
        f"crash matrix: {len(report.cells) - len(failed)}/"
        f"{len(report.cells)} cells passed "
        f"(baseline fingerprint {report.baseline_fingerprint[:12]})"
    )
    for cell in failed:
        print(
            f"  FAIL {cell.point} (hit {cell.hits}): "
            + "; ".join(cell.failures),
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RealConfig: incremental network configuration verification",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record spans across the run and write Chrome trace-event "
             "JSON to FILE (open in Perfetto or chrome://tracing)")
    parser.add_argument(
        "--trace-summary", action="store_true",
        help="print the recorded span tree (durations + work attributes) "
             "to stderr when the command finishes")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="record work counters across the run and write the "
             "Prometheus text exposition to FILE")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="verify with a pool of N worker processes (sharded model "
             "update + parallel policy re-check); default 1 = serial. "
             "With --resume-from, overrides the checkpointed setting")
    parser.add_argument(
        "--parallel-backend", choices=["auto", "fork", "inline"],
        default=None,
        help="worker pool backend for --workers > 1 (default auto: "
             "forked processes where available, inline otherwise)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesize a snapshot directory")
    p.add_argument("--topology", required=True,
                   help="fat-tree:k | ring:n | line:n | grid:RxC | random:n[:extra]")
    p.add_argument("--protocol", choices=["ospf", "bgp"], default="ospf")
    p.add_argument("--out", required=True, help="output snapshot directory")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("show-fib", help="print the converged FIB")
    p.add_argument("snapshot", help="snapshot directory")
    p.add_argument("--node", help="restrict to one device")
    p.set_defaults(func=cmd_show_fib)

    p = sub.add_parser(
        "verify",
        help="verify base -> changed incrementally",
        description="Verify the change incrementally. Exits 0 when no "
        "policy became violated, 1 on a new violation or when the "
        "--lint enforce gate refuses the change, 2 on input errors.",
    )
    p.add_argument("base", help="base snapshot directory")
    p.add_argument("changed", help="changed snapshot directory")
    p.add_argument("--all-pairs", action="store_true",
                   help="also check all-pairs reachability between "
                        "prefix-originating devices")
    p.add_argument("--lint", choices=["off", "warn", "enforce"], default="off",
                   help="pre-flight static analysis gate: 'warn' annotates "
                        "the report with diagnostics, 'enforce' refuses "
                        "changes that introduce lint errors (default: off)")
    p.add_argument("--resume-from", metavar="FILE", default=None,
                   help="resume the verifier from a checkpoint file "
                        "(written by 'repro checkpoint') instead of "
                        "re-verifying the base snapshot from scratch")
    p.set_defaults(func=cmd_verify)

    def add_serve_parser(name: str, help_text: str, description: str):
        p = sub.add_parser(name, help=help_text, description=description)
        p.add_argument("snapshot", nargs="?", default=None,
                       help="base snapshot directory (omit with --tenants)")
        p.add_argument("--stream", default=None,
                       help="JSONL stream file or batch directory"
                       if name == "serve"
                       else "directory to poll for new batch files")
        if name == "serve":
            p.add_argument("--tenants", default=None, metavar="DIR",
                           help="multi-tenant mode: serve every tenant "
                                "directory under DIR (each holding "
                                "snapshot/, stream.jsonl, tenant.json) "
                                "with per-tenant fault isolation, "
                                "weighted-fair scheduling, and an LRU "
                                "memory budget over hydrated models")
            p.add_argument("--memory-budget", type=float, default=0.0,
                           metavar="MB",
                           help="multi-tenant: LRU budget over hydrated "
                                "verifier state in megabytes; cold "
                                "tenants are evicted to their checkpoint "
                                "and rehydrated on demand (default: 0 = "
                                "unlimited)")
            p.add_argument("--tenant-queue", type=int, default=8, metavar="N",
                           help="multi-tenant: bound of each tenant's "
                                "pending-batch queue — the per-tenant "
                                "backpressure/load-shed limit (default: 8)")
            p.add_argument("--linger", action="store_true",
                           help="multi-tenant: keep polling for appended "
                                "batches and new tenant directories after "
                                "the streams drain (stop with "
                                "SIGINT/SIGTERM)")
        p.add_argument("--dead-letter", default="deadletter", metavar="DIR",
                       help="quarantine directory for poison batches "
                            "(default: ./deadletter)")
        p.add_argument("--deadline", type=float, default=0.0, metavar="SECONDS",
                       help="wall-clock budget per verification attempt, "
                            "enforced at stage boundaries (default: off)")
        p.add_argument("--max-retries", type=int, default=2,
                       help="retries per batch for transient failures "
                            "(default: 2)")
        p.add_argument("--backoff-base", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base of the exponential retry backoff "
                            "(default: 0.05)")
        p.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                       help="consecutive incremental failures that open the "
                            "circuit breaker and degrade to full-rebuild "
                            "mode; 0 disables the breaker (default: 3)")
        p.add_argument("--breaker-cooldown", type=float, default=5.0,
                       metavar="SECONDS",
                       help="seconds in rebuild mode before probing "
                            "incremental mode again (default: 5)")
        p.add_argument("--queue-size", dest="queue_capacity", type=int,
                       default=16, metavar="N",
                       help="bounded prefetch queue capacity — the "
                            "backpressure limit (default: 16)")
        p.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="sleep between polls when the stream is idle "
                            "(default: 0.5)")
        p.add_argument("--idle-timeout", type=float, default=0.0,
                       metavar="SECONDS",
                       help="watch mode: exit after this long with no new "
                            "batch file (default: 0 = poll forever)")
        p.add_argument("--audit-every", type=int, default=0, metavar="N",
                       help="watchdog: audit incremental state against a "
                            "from-scratch recomputation every N batches "
                            "(default: 0 = off)")
        p.add_argument("--health-file", default=None, metavar="FILE",
                       help="write a JSON liveness/readiness heartbeat "
                            "here after every batch")
        p.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="write a checkpoint (with the stream cursor) "
                            "here on shutdown")
        p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="also checkpoint every N batches (default: 0 = "
                            "only on shutdown)")
        p.add_argument("--checkpoint-generations", type=int, default=3,
                       metavar="N",
                       help="keep the last N checkpoint generations "
                            "(FILE, FILE.1, ...); a corrupt newest "
                            "generation falls back to the previous one "
                            "that verifies (default: 3)")
        p.add_argument("--resume-from", default=None, metavar="FILE",
                       help="restore the verifier and stream cursor from a "
                            "serve checkpoint and continue the stream")
        p.add_argument("--journal", default=None, metavar="FILE",
                       help="append every batch outcome to this JSONL "
                            "event journal (sequence numbers stay gapless "
                            "across daemon restarts on the same file)")
        p.add_argument("--obs-port", type=int, default=None, metavar="PORT",
                       help="start the live introspection HTTP server on "
                            "127.0.0.1:PORT (/health /stats /events "
                            "/metrics; 0 picks an ephemeral port). "
                            "Inspect with 'repro top' and 'repro tail'")
        p.add_argument("--all-pairs", action="store_true",
                       help="also register all-pairs reachability policies")
        p.add_argument("--lint", choices=["off", "warn", "enforce"],
                       default="off", help="lint gate mode (default: off)")
        p.set_defaults(func=cmd_serve)
        return p

    add_serve_parser(
        "serve",
        "serve a change-batch stream fault-tolerantly",
        "Keep a verifier alive across a stream of change batches with "
        "per-batch deadlines, retry with exponential backoff, poison-batch "
        "quarantine to a dead-letter directory, a circuit breaker that "
        "degrades to full-rebuild mode, and graceful shutdown that "
        "checkpoints the stream cursor. Exits 0 when every batch "
        "committed cleanly, 1 when any batch was quarantined or a policy "
        "became violated, 2 on input errors.",
    )
    add_serve_parser(
        "watch",
        "poll a directory for change batches and serve them",
        "The polling alias of 'serve': watch --stream DIR picks up new "
        "*.json batch files in sorted-name order as producers drop them, "
        "with the same deadline/retry/quarantine/breaker machinery. "
        "Stop with SIGINT/SIGTERM (graceful, checkpointing) or "
        "--idle-timeout.",
    )

    p = sub.add_parser(
        "tenant",
        help="administer a multi-tenant service root (add/evict/status/replay)",
        description="Fleet administration for 'repro serve --tenants DIR'. "
        "'add' materializes a new tenant directory (snapshot + stream + "
        "tenant.json) that a live service admits at its next control "
        "scan; 'evict' asks a live service to checkpoint-and-release a "
        "tenant's in-memory model; 'status' lists the fleet (offline "
        "from the directory, or live via --server); 'replay' re-runs a "
        "tenant's quarantined dead-letter batches against its "
        "checkpoint. Exits 0 on success, 1 when status finds degraded "
        "tenants or a replay fails again, 2 on input errors.",
    )
    tenant_sub = p.add_subparsers(dest="tenant_command", required=True)

    tp = tenant_sub.add_parser("add", help="materialize a new tenant dir")
    tp.add_argument("directory", help="the service root (--tenants DIR)")
    tp.add_argument("id", help="tenant id (also the directory name)")
    tp.add_argument("--topology", default="ring:4",
                    help="fat-tree:k | ring:n | line:n | grid:RxC "
                         "(default: ring:4)")
    tp.add_argument("--protocol", choices=["ospf", "bgp"], default="ospf")
    tp.add_argument("--batches", type=int, default=10,
                    help="change batches to pre-generate into the "
                         "tenant's stream (default: 10)")
    tp.add_argument("--weight", type=float, default=1.0,
                    help="fair-share scheduling weight (default: 1)")
    tp.add_argument("--seed", type=int, default=0)
    tp.set_defaults(func=cmd_tenant)

    tp = tenant_sub.add_parser(
        "evict", help="ask a live service to checkpoint-and-release a tenant"
    )
    tp.add_argument("directory", help="the service root")
    tp.add_argument("id", help="tenant id")
    tp.set_defaults(func=cmd_tenant)

    tp = tenant_sub.add_parser("status", help="list the fleet's health")
    tp.add_argument("directory", help="the service root")
    tp.add_argument("--server", default=None, metavar="ADDR",
                    help="read live state from a service's introspection "
                         "server (HOST:PORT) instead of the directory")
    tp.set_defaults(func=cmd_tenant)

    tp = tenant_sub.add_parser(
        "replay", help="re-run a tenant's dead-letter batches"
    )
    tp.add_argument("directory", help="the service root")
    tp.add_argument("id", help="tenant id")
    tp.set_defaults(func=cmd_tenant)

    p = sub.add_parser(
        "top",
        help="dashboard of a running serve daemon (via --obs-port)",
        description="Fetch /health and /stats from a daemon's live "
        "introspection server and print a compact dashboard: serving "
        "counters, breaker state, queue depth, and the flight recorder's "
        "per-stage latency percentiles. With --watch, refresh until "
        "interrupted.",
    )
    p.add_argument("server",
                   help="introspection address: HOST:PORT, :PORT, or URL "
                        "(printed by 'repro serve --obs-port')")
    p.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                   help="refresh every SECONDS until interrupted "
                        "(default: print once and exit)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "tail",
        help="stream a serve daemon's event journal (via --obs-port)",
        description="Replay /events from a daemon's live introspection "
        "server — one line per journal event with its seq, correlation "
        "id, and fields. Sequence numbers are gapless across daemon "
        "restarts, so '--since SEQ' resumes exactly where a previous "
        "tail stopped. With --follow, keep polling for new events. "
        "Pass --journal FILE instead of a server address to replay a "
        "journal file offline (after the daemon has exited).",
    )
    p.add_argument("server", nargs="?", default=None,
                   help="introspection address: HOST:PORT, :PORT, or URL")
    p.add_argument("--journal", metavar="FILE", default=None,
                   help="replay this journal file instead of a live server")
    p.add_argument("--since", type=int, default=0, metavar="SEQ",
                   help="only events with seq > SEQ (default: 0 = all)")
    p.add_argument("--follow", "-f", action="store_true",
                   help="keep polling for new events until interrupted")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="poll interval with --follow (default: 1)")
    p.add_argument("--repair", action="store_true",
                   help="with --journal: repair a torn final line in "
                        "place (a complete line that merely lost its "
                        "newline is terminated; a torn fragment is "
                        "truncated) and report what was done, instead "
                        "of only tolerating the tear on read")
    p.set_defaults(func=cmd_tail)

    p = sub.add_parser(
        "chaos",
        help="crash-inject every durability boundary and prove recovery",
        description="Run the deterministic crash matrix: for each named "
        "crash point, kill a subprocess serving a fixed workload at that "
        "exact storage instant, restart it, and assert recovery — FIB "
        "fingerprint byte-identical to the fault-free run, no batch lost "
        "or applied twice, journal seqs gapless. Default: the smoke set "
        "(one point per boundary class); --matrix runs every point at "
        "multiple hit depths. Exits 0 all-pass, 1 on failures, 2 on "
        "workload errors.",
    )
    p.add_argument("--matrix", action="store_true",
                   help="run the full matrix (every crash point at "
                        "multiple hit depths) instead of the smoke set")
    p.add_argument("--points", default=None, metavar="A,B,...",
                   help="comma-separated crash points to run instead "
                        "(see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the registered crash points and exit")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep per-cell scratch dirs (journals, rings, "
                        "dead letters) under DIR for post-mortems "
                        "(default: a fresh temp dir)")
    p.add_argument("--batches", type=int, default=8, metavar="N",
                   help="stream length of the workload (default: 8)")
    p.add_argument("--seed", type=int, default=0, metavar="S",
                   help="workload seed (default: 0)")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                   help="per-subprocess timeout (default: 300)")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="also write the full matrix report as JSON")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "emit-stream",
        help="generate a change-batch stream file for 'repro serve'",
        description="Generate a deterministic flap workload (fail/recover "
        "link pairs, cost/preference toggles) as a JSONL change-batch "
        "stream — the producer side of 'repro serve'.",
    )
    p.add_argument("snapshot", help="snapshot directory to generate against")
    p.add_argument("--out", required=True, help="JSONL stream file to write")
    p.add_argument("--protocol", choices=["ospf", "bgp"], default="ospf")
    p.add_argument("--count", type=int, default=20,
                   help="number of batches (default: 20)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_emit_stream)

    p = sub.add_parser(
        "checkpoint",
        help="verify a snapshot and serialize the verifier state",
        description="Build the verifier on the snapshot and write its "
        "full state (engine histories, EC partition, policy verdicts) to "
        "a checkpoint file. 'repro verify --resume-from FILE' and "
        "'repro audit FILE' load it back without re-convergence.",
    )
    p.add_argument("snapshot", help="snapshot directory")
    p.add_argument("out", help="checkpoint file to write")
    p.add_argument("--all-pairs", action="store_true",
                   help="also register all-pairs reachability policies")
    p.add_argument("--lint", choices=["off", "warn", "enforce"], default="off",
                   help="lint gate mode baked into the checkpoint "
                        "(default: off)")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "audit",
        help="diff incremental verifier state against a from-scratch run",
        description="Recompute the FIB with the from-scratch baseline "
        "simulator (and, in ecmp mode, a freshly built EC model and "
        "policy checker) and diff the results against the verifier's "
        "incremental state. STATE is a snapshot directory (build fresh) "
        "or a checkpoint file (restore). Exits 0 when no drift is found, "
        "1 on drift (even when --recover repaired it), 2 on input errors.",
    )
    p.add_argument("state", help="snapshot directory or checkpoint file")
    p.add_argument("--recover", action="store_true",
                   help="on drift, rebuild the verifier from its current "
                        "snapshot and audit again")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("trace", help="trace a packet through the data plane")
    p.add_argument("snapshot", help="snapshot directory")
    p.add_argument("--source", required=True, help="injection device")
    p.add_argument("--dst", required=True, help="destination IP")
    p.add_argument("--src", help="source IP (default 0.0.0.0)")
    p.add_argument("--proto", type=int, default=0)
    p.add_argument("--port", type=int, default=0)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "mine",
        help="mine fault-tolerance spec under all single link failures",
    )
    p.add_argument("snapshot", help="snapshot directory")
    p.add_argument("--no-widths", action="store_true",
                   help="skip disjoint-path width computation")
    p.set_defaults(func=cmd_mine)

    p = sub.add_parser(
        "diff",
        help="configuration-line diff of two snapshots",
        description="Print the line-level diff. Exits 0 when the snapshots "
        "are identical and 1 when the diff is non-empty, so the command "
        "doubles as a CI gate ('fail the build when configs drifted').",
    )
    p.add_argument("base")
    p.add_argument("changed")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "lint",
        help="semantic static analysis of a snapshot",
        description="Run the repro.lint passes over the snapshot. With "
        "--base, lints incrementally: only passes whose stanza scope "
        "intersects the diff re-run (the rest reuse the base result). "
        "Exits 0 when clean, 1 when any diagnostic reaches --fail-on, "
        "2 on input errors — usable directly as a CI gate. "
        "Cross-device passes (LNK/BGP/BLK/RDL/ISO and friends) analyze "
        "neighborhoods of the network dependency graph; incremental runs "
        "re-analyze only the dependency closure of the changed devices.",
    )
    p.add_argument("snapshot", nargs="?", default=None,
                   help="snapshot directory to lint")
    p.add_argument("--base",
                   help="base snapshot directory: lint incrementally, "
                        "scoped to the diff base -> snapshot")
    p.add_argument("--explain", metavar="CODE", default=None,
                   help="print the documentation for a finding code "
                        "(e.g. BLK001) or pass prefix (e.g. LNK) and exit")
    p.add_argument("--format", choices=sorted(FORMATTERS), default="text",
                   help="output format (default: text)")
    p.add_argument("--fail-on", choices=["error", "warning", "info", "never"],
                   default="error",
                   help="lowest severity that causes exit code 1 "
                        "(default: error)")
    p.add_argument("--suppress", action="append", default=[],
                   metavar="CODE[:device[:stanza]]",
                   help="mute diagnostics matching the glob patterns "
                        "(repeatable)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "profile",
        help="replay a change workload and print the per-stage profile",
        description="Build the verifier on the snapshot, generate a "
        "deterministic change workload, verify each change (plus its "
        "inverse, restoring the snapshot) --repeat times, and print the "
        "per-stage latency breakdown with incremental-work ratios "
        "(ddlog records vs the initial epoch, affected vs total ECs, "
        "rechecked vs registered policies, reused vs run lint units). "
        "Combine with the global --trace/--metrics flags to export the "
        "same run as a Perfetto trace or Prometheus exposition.",
    )
    p.add_argument("snapshot", help="snapshot directory to profile against")
    p.add_argument("--workload", choices=["link-failure", "lc", "lp"],
                   default="link-failure",
                   help="change type to replay (default: link-failure)")
    p.add_argument("--count", type=int, default=5,
                   help="changes sampled from the workload (default: 5)")
    p.add_argument("--repeat", type=int, default=3,
                   help="times the workload is replayed (default: 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload sampling seed (default: 0)")
    p.add_argument("--all-pairs", action="store_true",
                   help="register all-pairs reachability policies too")
    p.add_argument("--lint", choices=["off", "warn", "enforce"],
                   default="warn",
                   help="lint gate mode during the replay (default: warn, "
                        "so lint reuse counters are reported)")
    p.set_defaults(func=cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    tracer = registry = None
    previous_tracer = previous_metrics = None
    if args.trace is not None or args.trace_summary:
        tracer = Tracer()
        previous_tracer = set_tracer(tracer)
    if args.metrics is not None:
        registry = MetricsRegistry()
        previous_metrics = set_metrics(registry)
    try:
        return args.func(args)
    except CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro tail ... | head` closes stdout early; that is not an
        # error.  Detach stdout so the interpreter's shutdown flush does
        # not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        # Export even when the command failed: a trace of a refused or
        # crashed verification is exactly what one wants to look at.
        if tracer is not None:
            set_tracer(previous_tracer)
            if args.trace is not None:
                atomic_write_text(args.trace, chrome_trace(tracer))
                print(
                    f"-- wrote {len(tracer.finished)} span(s) to "
                    f"{args.trace} (Chrome trace-event JSON)",
                    file=sys.stderr,
                )
            if args.trace_summary:
                print(summary_tree(tracer), file=sys.stderr)
        if registry is not None:
            set_metrics(previous_metrics)
            atomic_write_text(args.metrics, prometheus_text(registry))
            print(
                f"-- wrote metrics exposition to {args.metrics}",
                file=sys.stderr,
            )


if __name__ == "__main__":
    sys.exit(main())
