"""Typed configuration change operations.

These are the change kinds the paper's evaluation exercises (§5) plus the
ones its motivation section discusses (§2):

- :class:`ShutdownInterface` / :class:`EnableInterface` — the paper's
  *LinkFailure* change ("failing a link by deactivating the corresponding
  interface");
- :class:`SetOspfCost` — the paper's *LC* change (link cost 1 -> 100);
- :class:`SetLocalPref` — the paper's *LP* change (local preference
  100 -> 150 for routes received at one interface, via an inbound route map);
- ACL, static route, BGP network / neighbor, and redistribution edits — the
  regular-maintenance and large-scale-planning changes of §2.

A change is applied to a :class:`~repro.config.schema.Snapshot` in place;
:func:`apply_changes` clones first and returns the line diff, which is the
input format of the incremental data plane generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.net.addr import Prefix
from repro.config.diff import LineDiff, diff_snapshots
from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    ConfigError,
    Redistribution,
    RouteMap,
    RouteMapClause,
    Snapshot,
    StaticRoute,
)


class ChangeError(ConfigError):
    """Raised when a change cannot be applied to the given snapshot."""


@dataclass
class Change:
    """Base class for configuration changes."""

    def apply(self, snapshot: Snapshot) -> None:
        raise NotImplementedError

    def invert(self, snapshot: Snapshot) -> "Change":
        """The change that would undo this one, given the *pre-change*
        snapshot.  Used by the CI / planning examples to roll back."""
        raise NotImplementedError(f"{type(self).__name__} is not invertible")

    def describe(self) -> str:
        return repr(self)


# -- link / interface changes ----------------------------------------------


@dataclass
class ShutdownInterface(Change):
    """The paper's LinkFailure change: administratively disable an interface."""

    device: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        snapshot.device(self.device).interface(self.interface).shutdown = True

    def invert(self, snapshot: Snapshot) -> Change:
        if snapshot.device(self.device).interface(self.interface).shutdown:
            raise ChangeError(f"{self.device}:{self.interface} is already shut down")
        return EnableInterface(self.device, self.interface)

    def describe(self) -> str:
        return f"LinkFailure: shutdown {self.device}:{self.interface}"


@dataclass
class EnableInterface(Change):
    device: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        snapshot.device(self.device).interface(self.interface).shutdown = False

    def invert(self, snapshot: Snapshot) -> Change:
        return ShutdownInterface(self.device, self.interface)

    def describe(self) -> str:
        return f"LinkRecovery: no shutdown {self.device}:{self.interface}"


@dataclass
class SetOspfCost(Change):
    """The paper's LC change: set the OSPF cost of one interface."""

    device: str
    interface: str
    cost: int

    def apply(self, snapshot: Snapshot) -> None:
        iface = snapshot.device(self.device).interface(self.interface)
        if not iface.ospf_enabled:
            raise ChangeError(
                f"{self.device}:{self.interface} does not run OSPF"
            )
        iface.ospf_cost = self.cost

    def invert(self, snapshot: Snapshot) -> Change:
        old = snapshot.device(self.device).interface(self.interface).ospf_cost
        return SetOspfCost(self.device, self.interface, old)

    def describe(self) -> str:
        return f"LC: {self.device}:{self.interface} ospf cost -> {self.cost}"


# -- BGP changes -------------------------------------------------------------


#: Name of the route map SetLocalPref manages on a neighbor.
def _lp_route_map_name(interface: str) -> str:
    return f"RM_LP_{interface}"


@dataclass
class SetLocalPref(Change):
    """The paper's LP change: set the local preference of routes received at
    one interface (via an inbound route map on that BGP neighbor)."""

    device: str
    interface: str
    local_pref: int
    match_prefix: Optional[Prefix] = None

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        neighbor = device.bgp.neighbors.get(self.interface)
        if neighbor is None:
            raise ChangeError(
                f"{self.device} has no BGP neighbor on {self.interface}"
            )
        rm_name = _lp_route_map_name(self.interface)
        rm = device.route_maps.setdefault(rm_name, RouteMap(rm_name))
        rm.clauses = [
            RouteMapClause(
                seq=10,
                action="permit",
                match_prefix=self.match_prefix,
                set_local_pref=self.local_pref,
            )
        ]
        neighbor.route_map_in = rm_name

    def invert(self, snapshot: Snapshot) -> Change:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        neighbor = device.bgp.neighbors.get(self.interface)
        if neighbor is None:
            raise ChangeError(
                f"{self.device} has no BGP neighbor on {self.interface}"
            )
        if neighbor.route_map_in is None:
            return ClearLocalPref(self.device, self.interface)
        rm = device.route_map(neighbor.route_map_in)
        clause = rm.sorted_clauses()[0]
        return SetLocalPref(
            self.device,
            self.interface,
            clause.set_local_pref if clause.set_local_pref is not None else 100,
            match_prefix=clause.match_prefix,
        )

    def describe(self) -> str:
        scope = f" for {self.match_prefix}" if self.match_prefix else ""
        return (
            f"LP: {self.device}:{self.interface} local-preference -> "
            f"{self.local_pref}{scope}"
        )


@dataclass
class ClearLocalPref(Change):
    """Remove the inbound local-preference route map from a neighbor."""

    device: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        neighbor = device.bgp.neighbors.get(self.interface)
        if neighbor is None:
            raise ChangeError(
                f"{self.device} has no BGP neighbor on {self.interface}"
            )
        rm_name = neighbor.route_map_in
        neighbor.route_map_in = None
        if rm_name is not None and rm_name == _lp_route_map_name(self.interface):
            device.route_maps.pop(rm_name, None)

    def describe(self) -> str:
        return f"LP: {self.device}:{self.interface} local-preference cleared"


@dataclass
class AddBgpNetwork(Change):
    device: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        if self.prefix in device.bgp.networks:
            raise ChangeError(f"{self.device} already announces {self.prefix}")
        device.bgp.networks.append(self.prefix)

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveBgpNetwork(self.device, self.prefix)

    def describe(self) -> str:
        return f"BGP: {self.device} announce {self.prefix}"


@dataclass
class RemoveBgpNetwork(Change):
    device: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None or self.prefix not in device.bgp.networks:
            raise ChangeError(f"{self.device} does not announce {self.prefix}")
        device.bgp.networks.remove(self.prefix)

    def invert(self, snapshot: Snapshot) -> Change:
        return AddBgpNetwork(self.device, self.prefix)

    def describe(self) -> str:
        return f"BGP: {self.device} withdraw {self.prefix}"


@dataclass
class AddBgpAggregate(Change):
    """Configure ``aggregate-address`` on a BGP process."""

    device: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        if self.prefix in device.bgp.aggregates:
            raise ChangeError(f"{self.device} already aggregates {self.prefix}")
        device.bgp.aggregates.append(self.prefix)

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveBgpAggregate(self.device, self.prefix)

    def describe(self) -> str:
        return f"BGP: {self.device} aggregate-address {self.prefix}"


@dataclass
class RemoveBgpAggregate(Change):
    device: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None or self.prefix not in device.bgp.aggregates:
            raise ChangeError(f"{self.device} does not aggregate {self.prefix}")
        device.bgp.aggregates.remove(self.prefix)

    def invert(self, snapshot: Snapshot) -> Change:
        return AddBgpAggregate(self.device, self.prefix)

    def describe(self) -> str:
        return f"BGP: {self.device} no aggregate-address {self.prefix}"


@dataclass
class AddBgpNeighbor(Change):
    device: str
    interface: str
    remote_as: int

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None:
            raise ChangeError(f"{self.device} does not run BGP")
        if self.interface in device.bgp.neighbors:
            raise ChangeError(
                f"{self.device} already peers on {self.interface}"
            )
        device.bgp.add_neighbor(BgpNeighbor(self.interface, self.remote_as))

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveBgpNeighbor(self.device, self.interface)

    def describe(self) -> str:
        return f"BGP: {self.device} add neighbor on {self.interface} (AS {self.remote_as})"


@dataclass
class RemoveBgpNeighbor(Change):
    device: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if device.bgp is None or self.interface not in device.bgp.neighbors:
            raise ChangeError(f"{self.device} has no neighbor on {self.interface}")
        del device.bgp.neighbors[self.interface]

    def invert(self, snapshot: Snapshot) -> Change:
        neighbor = snapshot.device(self.device).bgp.neighbors[self.interface]
        return AddBgpNeighbor(self.device, self.interface, neighbor.remote_as)

    def describe(self) -> str:
        return f"BGP: {self.device} remove neighbor on {self.interface}"


# -- static routes ------------------------------------------------------------


@dataclass
class AddStaticRoute(Change):
    device: str
    prefix: Prefix
    next_hop_interface: str
    admin_distance: int = 1

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        device.interface(self.next_hop_interface)  # validate
        device.static_routes.append(
            StaticRoute(
                self.prefix,
                self.next_hop_interface,
                admin_distance=self.admin_distance,
            )
        )

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveStaticRoute(self.device, self.prefix, self.next_hop_interface)

    def describe(self) -> str:
        return (
            f"Static: {self.device} route {self.prefix} via "
            f"{self.next_hop_interface}"
        )


@dataclass
class RemoveStaticRoute(Change):
    device: str
    prefix: Prefix
    next_hop_interface: str

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        before = len(device.static_routes)
        device.static_routes = [
            r
            for r in device.static_routes
            if not (
                r.prefix == self.prefix
                and r.next_hop_interface == self.next_hop_interface
            )
        ]
        if len(device.static_routes) == before:
            raise ChangeError(
                f"{self.device} has no static route {self.prefix} via "
                f"{self.next_hop_interface}"
            )

    def describe(self) -> str:
        return (
            f"Static: {self.device} remove route {self.prefix} via "
            f"{self.next_hop_interface}"
        )


@dataclass
class AddStaticRouteIp(Change):
    """Static route with an IP next hop (resolved via connected subnets)."""

    device: str
    prefix: Prefix
    next_hop_ip: int
    admin_distance: int = 1

    def apply(self, snapshot: Snapshot) -> None:
        snapshot.device(self.device).static_routes.append(
            StaticRoute(
                self.prefix,
                next_hop_ip=self.next_hop_ip,
                admin_distance=self.admin_distance,
            )
        )

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveStaticRouteIp(self.device, self.prefix, self.next_hop_ip)

    def describe(self) -> str:
        from repro.net.addr import format_ipv4

        return (
            f"Static: {self.device} route {self.prefix} via "
            f"{format_ipv4(self.next_hop_ip)}"
        )


@dataclass
class RemoveStaticRouteIp(Change):
    device: str
    prefix: Prefix
    next_hop_ip: int

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        before = len(device.static_routes)
        device.static_routes = [
            r
            for r in device.static_routes
            if not (r.prefix == self.prefix and r.next_hop_ip == self.next_hop_ip)
        ]
        if len(device.static_routes) == before:
            raise ChangeError(
                f"{self.device} has no static route {self.prefix} via that IP"
            )

    def describe(self) -> str:
        from repro.net.addr import format_ipv4

        return (
            f"Static: {self.device} remove route {self.prefix} via "
            f"{format_ipv4(self.next_hop_ip)}"
        )


# -- ACL changes ---------------------------------------------------------------


@dataclass
class AddAclEntry(Change):
    device: str
    acl_name: str
    entry: AclEntry

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        acl = device.acls.setdefault(self.acl_name, Acl(self.acl_name))
        if any(e.seq == self.entry.seq for e in acl.entries):
            raise ChangeError(
                f"{self.device} ACL {self.acl_name} already has seq {self.entry.seq}"
            )
        acl.entries.append(self.entry)

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveAclEntry(self.device, self.acl_name, self.entry.seq)

    def describe(self) -> str:
        return f"ACL: {self.device} {self.acl_name} add seq {self.entry.seq}"


@dataclass
class RemoveAclEntry(Change):
    device: str
    acl_name: str
    seq: int

    def apply(self, snapshot: Snapshot) -> None:
        acl = snapshot.device(self.device).acl(self.acl_name)
        before = len(acl.entries)
        acl.entries = [e for e in acl.entries if e.seq != self.seq]
        if len(acl.entries) == before:
            raise ChangeError(
                f"{self.device} ACL {self.acl_name} has no seq {self.seq}"
            )

    def describe(self) -> str:
        return f"ACL: {self.device} {self.acl_name} remove seq {self.seq}"


@dataclass
class BindAcl(Change):
    device: str
    interface: str
    acl_name: str
    direction: str = "in"  # "in" | "out"

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        if self.acl_name not in device.acls:
            raise ChangeError(f"{self.device} has no ACL {self.acl_name}")
        iface = device.interface(self.interface)
        if self.direction == "in":
            iface.acl_in = self.acl_name
        elif self.direction == "out":
            iface.acl_out = self.acl_name
        else:
            raise ChangeError(f"bad ACL direction {self.direction!r}")

    def invert(self, snapshot: Snapshot) -> Change:
        return UnbindAcl(self.device, self.interface, self.direction)

    def describe(self) -> str:
        return (
            f"ACL: {self.device}:{self.interface} bind {self.acl_name} "
            f"{self.direction}"
        )


@dataclass
class UnbindAcl(Change):
    device: str
    interface: str
    direction: str = "in"

    def apply(self, snapshot: Snapshot) -> None:
        iface = snapshot.device(self.device).interface(self.interface)
        if self.direction == "in":
            iface.acl_in = None
        elif self.direction == "out":
            iface.acl_out = None
        else:
            raise ChangeError(f"bad ACL direction {self.direction!r}")

    def describe(self) -> str:
        return f"ACL: {self.device}:{self.interface} unbind {self.direction}"


# -- redistribution -------------------------------------------------------------


@dataclass
class AddRedistribution(Change):
    device: str
    protocol: str  # process receiving the routes: "ospf" | "bgp"
    source: str
    metric: int = 20

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        process = device.ospf if self.protocol == "ospf" else device.bgp
        if process is None:
            raise ChangeError(f"{self.device} does not run {self.protocol}")
        if any(r.source == self.source for r in process.redistribute):
            raise ChangeError(
                f"{self.device} {self.protocol} already redistributes {self.source}"
            )
        process.redistribute.append(Redistribution(self.source, self.metric))

    def invert(self, snapshot: Snapshot) -> Change:
        return RemoveRedistribution(self.device, self.protocol, self.source)

    def describe(self) -> str:
        return f"Redist: {self.device} {self.protocol} <- {self.source}"


@dataclass
class RemoveRedistribution(Change):
    device: str
    protocol: str
    source: str

    def apply(self, snapshot: Snapshot) -> None:
        device = snapshot.device(self.device)
        process = device.ospf if self.protocol == "ospf" else device.bgp
        if process is None:
            raise ChangeError(f"{self.device} does not run {self.protocol}")
        before = len(process.redistribute)
        process.redistribute = [
            r for r in process.redistribute if r.source != self.source
        ]
        if len(process.redistribute) == before:
            raise ChangeError(
                f"{self.device} {self.protocol} does not redistribute {self.source}"
            )

    def describe(self) -> str:
        return f"Redist: {self.device} {self.protocol} drop {self.source}"


# -- composites and helpers -----------------------------------------------------


@dataclass
class CompositeChange(Change):
    """A batch of changes applied atomically (the planning use case of §2)."""

    changes: List[Change] = field(default_factory=list)
    label: str = ""

    def apply(self, snapshot: Snapshot) -> None:
        for change in self.changes:
            change.apply(snapshot)

    def invert(self, snapshot: Snapshot) -> Change:
        staging = snapshot.clone()
        inverses: List[Change] = []
        for change in self.changes:
            inverses.append(change.invert(staging))
            change.apply(staging)
        inverses.reverse()
        return CompositeChange(inverses, label=f"undo {self.label}".strip())

    def describe(self) -> str:
        title = self.label or f"batch of {len(self.changes)}"
        return f"Composite[{title}]: " + "; ".join(
            c.describe() for c in self.changes
        )


def apply_changes(
    snapshot: Snapshot, changes: Sequence[Change]
) -> Tuple[Snapshot, LineDiff]:
    """Apply changes to a clone of ``snapshot``.

    Returns the new snapshot and the line-level diff — the exact input format
    of RealConfig's incremental data plane generator.
    """
    new_snapshot = snapshot.clone()
    for change in changes:
        change.apply(new_snapshot)
    return new_snapshot, diff_snapshots(snapshot, new_snapshot)
