"""Snapshot diffing at configuration-line granularity.

The paper defines a configuration change as a set of inserted and deleted
configuration lines ("Modifications can be seen as deleting an old line and
inserting a new line").  Because :mod:`repro.config.lang` renders devices
canonically, two snapshots can be diffed as multisets of
``(device, stanza, line)`` triples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from repro.config.lang import device_lines
from repro.config.schema import Snapshot


@dataclass(frozen=True, order=True)
class ConfigLine:
    """One configuration line, attributed to a device and stanza."""

    device: str
    stanza: str
    text: str

    def __str__(self) -> str:
        return f"{self.device}[{self.stanza or 'top'}]: {self.text.strip()}"


@dataclass
class LineDiff:
    """The inserted and deleted lines between two snapshots."""

    inserted: List[ConfigLine] = field(default_factory=list)
    deleted: List[ConfigLine] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def size(self) -> int:
        """Total number of changed lines."""
        return len(self.inserted) + len(self.deleted)

    def devices_touched(self) -> List[str]:
        names = {line.device for line in self.inserted}
        names.update(line.device for line in self.deleted)
        return sorted(names)

    def summary(self) -> str:
        return (
            f"+{len(self.inserted)}/-{len(self.deleted)} lines on "
            f"{len(self.devices_touched())} device(s)"
        )

    def __str__(self) -> str:
        parts = [f"- {line}" for line in self.deleted]
        parts += [f"+ {line}" for line in self.inserted]
        return "\n".join(parts) or "(no changes)"


def snapshot_lines(snapshot: Snapshot) -> Counter:
    """All configuration lines of a snapshot, as a multiset."""
    lines: Counter = Counter()
    for device in snapshot.iter_devices():
        for stanza, text in device_lines(device):
            lines[ConfigLine(device.hostname, stanza, text)] += 1
    return lines


def diff_snapshots(old: Snapshot, new: Snapshot) -> LineDiff:
    """Compute the line-level diff from ``old`` to ``new``."""
    old_lines = snapshot_lines(old)
    new_lines = snapshot_lines(new)
    diff = LineDiff()
    for line, count in sorted((new_lines - old_lines).items()):
        diff.inserted.extend([line] * count)
    for line, count in sorted((old_lines - new_lines).items()):
        diff.deleted.extend([line] * count)
    return diff
