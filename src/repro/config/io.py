"""Snapshot persistence.

A snapshot on disk is a directory:

    snapshot/
      topology.json          # nodes, interfaces (prefix/address), links
      configs/
        <hostname>.cfg       # canonical config text (repro.config.lang)

``save_snapshot`` / ``load_snapshot`` round-trip exactly, so an operator
can keep snapshots in version control, edit the ``.cfg`` files by hand, and
verify the edit with ``repro verify`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.config.lang import ParseError, parse_device, render_device
from repro.config.schema import ConfigError, Snapshot
from repro.net.addr import Prefix, format_ipv4, parse_ipv4
from repro.net.topology import InterfaceId, Topology

PathLike = Union[str, Path]

TOPOLOGY_FILE = "topology.json"
CONFIG_DIR = "configs"


def topology_to_dict(topology: Topology) -> Dict:
    """JSON-serializable form of a topology."""
    nodes: Dict[str, Dict] = {}
    for node in topology.nodes():
        interfaces = {}
        for iface in node.interfaces.values():
            entry: Dict[str, str] = {}
            if iface.prefix is not None:
                entry["prefix"] = str(iface.prefix)
            if iface.address is not None:
                entry["address"] = format_ipv4(iface.address)
            interfaces[iface.name] = entry
        nodes[node.name] = {"interfaces": interfaces}
    links = sorted(
        [str(link.a), str(link.b)] for link in topology.links()
    )
    return {"nodes": nodes, "links": links}


def topology_from_dict(data: Dict) -> Topology:
    topology = Topology()
    for name in sorted(data.get("nodes", {})):
        node = data["nodes"][name]
        topology.add_node(name)
        for iface_name in sorted(node.get("interfaces", {})):
            entry = node["interfaces"][iface_name]
            prefix = (
                Prefix.parse(entry["prefix"]) if "prefix" in entry else None
            )
            address = (
                parse_ipv4(entry["address"]) if "address" in entry else None
            )
            topology.add_interface(name, iface_name, prefix=prefix, address=address)
    for a_text, b_text in data.get("links", []):
        a_node, _, a_if = a_text.partition(":")
        b_node, _, b_if = b_text.partition(":")
        topology.add_link(InterfaceId(a_node, a_if), InterfaceId(b_node, b_if))
    return topology


def save_snapshot(snapshot: Snapshot, directory: PathLike) -> Path:
    """Write the snapshot to ``directory`` (created if needed)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    (root / TOPOLOGY_FILE).write_text(
        json.dumps(topology_to_dict(snapshot.topology), indent=2, sort_keys=True)
        + "\n"
    )
    config_dir = root / CONFIG_DIR
    config_dir.mkdir(exist_ok=True)
    wanted = set()
    for device in snapshot.iter_devices():
        filename = f"{device.hostname}.cfg"
        wanted.add(filename)
        (config_dir / filename).write_text(render_device(device))
    # Remove stale config files from a previous save.
    for stale in config_dir.glob("*.cfg"):
        if stale.name not in wanted:
            stale.unlink()
    return root


def load_snapshot(directory: PathLike, validate: bool = True) -> Snapshot:
    """Read a snapshot directory back into memory.

    Referential integrity is checked by default; pass ``validate=False`` to
    load a snapshot with dangling references intact — the lint CLI does so
    to report them as diagnostics instead of aborting the load.
    """
    root = Path(directory)
    topology_path = root / TOPOLOGY_FILE
    if not topology_path.exists():
        raise ConfigError(f"not a snapshot directory (missing {TOPOLOGY_FILE}): {root}")
    topology = topology_from_dict(json.loads(topology_path.read_text()))
    snapshot = Snapshot(topology)
    config_dir = root / CONFIG_DIR
    if not config_dir.is_dir():
        raise ConfigError(f"missing {CONFIG_DIR}/ under {root}")
    for path in sorted(config_dir.glob("*.cfg")):
        try:
            device = parse_device(path.read_text())
        except ParseError as error:
            raise error.with_filename(path.name) from None
        if device.hostname != path.stem:
            raise ConfigError(
                f"{path.name}: hostname {device.hostname!r} does not match "
                f"the file name"
            )
        snapshot.add_device(device)
    if validate:
        snapshot.validate()
    return snapshot
