"""The configuration text dialect: rendering and parsing.

The paper treats configuration changes as *insertions and deletions of
configuration lines*.  To make that concrete we define a small Cisco-flavored
text dialect with a canonical rendering, so that

    parse(render(config)) == config        (structural round trip)

and so two snapshots can be diffed line-by-line (``repro.config.diff``).

Each line belongs to a *stanza* (an ``interface ...``, ``router ...``,
``route-map ...``, or ``ip access-list ...`` block, or the top level), which
is how the diff attributes a changed line to the configuration object it
affects.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.net.addr import Prefix, format_ipv4, parse_ipv4
from repro.config.schema import (
    Acl,
    AclEntry,
    BgpNeighbor,
    BgpProcess,
    ConfigError,
    DeviceConfig,
    InterfaceConfig,
    OspfProcess,
    Redistribution,
    RouteMap,
    RouteMapClause,
    StaticRoute,
)

#: Stanza key for top-level lines.
TOP = ""


class ParseError(ConfigError):
    """Raised when configuration text cannot be parsed.

    ``filename`` names the source file when the text came from disk (set by
    :func:`repro.config.io.load_snapshot`), so multi-device loads report
    *which* device file failed, not just the line number.
    """

    def __init__(
        self, line_no: int, line: str, reason: str, filename: Optional[str] = None
    ) -> None:
        prefix = f"{filename}: " if filename else ""
        super().__init__(f"{prefix}line {line_no}: {reason}: {line!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason
        self.filename = filename

    def with_filename(self, filename: str) -> "ParseError":
        """A copy of this error attributed to ``filename``."""
        return ParseError(self.line_no, self.line, self.reason, filename=filename)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_device(config: DeviceConfig) -> str:
    """Render a device configuration to canonical text."""
    return "\n".join(text for _, text in device_lines(config)) + "\n"


def device_lines(config: DeviceConfig) -> Iterator[Tuple[str, str]]:
    """Yield ``(stanza_key, line_text)`` pairs in canonical order.

    The stanza key identifies the enclosing block; header lines of a block
    carry their own key.  This is the unit of diffing.
    """
    yield TOP, f"hostname {config.hostname}"

    for name in sorted(config.interfaces):
        iface = config.interfaces[name]
        key = f"interface {name}"
        yield key, key
        if iface.address is not None and iface.prefix is not None:
            yield key, f" ip address {format_ipv4(iface.address)}/{iface.prefix.length}"
        elif iface.prefix is not None:
            yield key, f" ip network {iface.prefix}"
        if iface.mtu != 1500:
            yield key, f" mtu {iface.mtu}"
        if iface.shutdown:
            yield key, " shutdown"
        if iface.ospf_enabled:
            yield key, " ip ospf enable"
            if iface.ospf_cost != 1:
                yield key, f" ip ospf cost {iface.ospf_cost}"
        if iface.acl_in is not None:
            yield key, f" ip access-group {iface.acl_in} in"
        if iface.acl_out is not None:
            yield key, f" ip access-group {iface.acl_out} out"

    for acl_name in sorted(config.acls):
        acl = config.acls[acl_name]
        key = f"ip access-list {acl_name}"
        yield key, key
        for entry in acl.sorted_entries():
            yield key, " " + _render_acl_entry(entry)

    for rm_name in sorted(config.route_maps):
        rm = config.route_maps[rm_name]
        for clause in rm.sorted_clauses():
            key = f"route-map {rm_name} {clause.action} {clause.seq}"
            yield key, key
            if clause.match_prefix is not None:
                yield key, f" match ip prefix {clause.match_prefix}"
            if clause.set_local_pref is not None:
                yield key, f" set local-preference {clause.set_local_pref}"
            if clause.set_metric is not None:
                yield key, f" set metric {clause.set_metric}"

    if config.ospf is not None:
        key = f"router ospf {config.ospf.process_id}"
        yield key, key
        for redist in config.ospf.redistribute:
            yield key, f" redistribute {redist.source} metric {redist.metric}"

    if config.bgp is not None:
        bgp = config.bgp
        key = f"router bgp {bgp.asn}"
        yield key, key
        for prefix in sorted(bgp.networks):
            yield key, f" network {prefix}"
        for prefix in sorted(bgp.aggregates):
            yield key, f" aggregate-address {prefix}"
        for if_name in sorted(bgp.neighbors):
            neighbor = bgp.neighbors[if_name]
            yield key, f" neighbor {if_name} remote-as {neighbor.remote_as}"
            if neighbor.route_map_in is not None:
                yield key, f" neighbor {if_name} route-map {neighbor.route_map_in} in"
            if neighbor.route_map_out is not None:
                yield key, f" neighbor {if_name} route-map {neighbor.route_map_out} out"
        for redist in bgp.redistribute:
            yield key, f" redistribute {redist.source} metric {redist.metric}"

    def _next_hop_text(route: StaticRoute) -> str:
        if route.next_hop_interface is not None:
            return route.next_hop_interface
        return format_ipv4(route.next_hop_ip)

    for route in sorted(
        config.static_routes, key=lambda r: (r.prefix, _next_hop_text(r))
    ):
        text = f"ip route {route.prefix} {_next_hop_text(route)}"
        if route.admin_distance != 1:
            text += f" {route.admin_distance}"
        yield TOP, text


def _render_acl_entry(entry: AclEntry) -> str:
    proto = "ip" if entry.proto is None else str(entry.proto)
    src = "any" if entry.src is None else str(entry.src)
    dst = "any" if entry.dst is None else str(entry.dst)
    text = f"{entry.seq} {entry.action} {proto} {src} {dst}"
    if entry.dst_port is not None:
        lo, hi = entry.dst_port
        text += f" eq {lo}" if lo == hi else f" range {lo} {hi}"
    return text


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_device(text: str) -> DeviceConfig:
    """Parse canonical configuration text back into a :class:`DeviceConfig`."""
    config = DeviceConfig(hostname="")
    context: Optional[_Context] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        try:
            if not raw.startswith((" ", "\t")):
                context = _parse_top_line(config, line_no, line)
            else:
                if context is None:
                    raise ParseError(line_no, line, "indented line outside any stanza")
                context.parse(config, line_no, line)
        except ConfigError:
            raise
        except ValueError as exc:
            # int()/Prefix.parse()/parse_ipv4() on a malformed field value;
            # surface it as a parse rejection, not an internal crash.
            raise ParseError(line_no, line, f"malformed value ({exc})") from exc
    if not config.hostname:
        raise ParseError(0, "", "missing hostname")
    return config


class _Context:
    """Parser state for the currently open stanza."""

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        raise NotImplementedError


class _InterfaceContext(_Context):
    def __init__(self, iface: InterfaceConfig) -> None:
        self.iface = iface

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        words = line.split()
        if words[:2] == ["ip", "address"] and len(words) == 3:
            addr_text, _, len_text = words[2].partition("/")
            if not len_text.isdigit():
                raise ParseError(line_no, line, "malformed ip address")
            address = parse_ipv4(addr_text)
            length = int(len_text)
            self.iface.address = address
            self.iface.prefix = Prefix.from_address_int(address, length)
        elif words[:2] == ["ip", "network"] and len(words) == 3:
            self.iface.prefix = Prefix.parse(words[2])
        elif words[:1] == ["mtu"] and len(words) == 2 and words[1].isdigit():
            self.iface.mtu = int(words[1])
        elif words == ["shutdown"]:
            self.iface.shutdown = True
        elif words == ["ip", "ospf", "enable"]:
            self.iface.ospf_enabled = True
        elif words[:3] == ["ip", "ospf", "cost"] and len(words) == 4:
            self.iface.ospf_cost = int(words[3])
        elif words[:2] == ["ip", "access-group"] and len(words) == 4:
            if words[3] == "in":
                self.iface.acl_in = words[2]
            elif words[3] == "out":
                self.iface.acl_out = words[2]
            else:
                raise ParseError(line_no, line, "access-group direction")
        else:
            raise ParseError(line_no, line, "unknown interface sub-command")


class _AclContext(_Context):
    def __init__(self, acl: Acl) -> None:
        self.acl = acl

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        words = line.split()
        if len(words) < 5 or not words[0].isdigit():
            raise ParseError(line_no, line, "malformed ACL entry")
        seq = int(words[0])
        action = words[1]
        if action not in ("permit", "deny"):
            raise ParseError(line_no, line, "ACL action must be permit/deny")
        proto = None if words[2] == "ip" else int(words[2])
        src = None if words[3] == "any" else Prefix.parse(words[3])
        dst = None if words[4] == "any" else Prefix.parse(words[4])
        dst_port: Optional[Tuple[int, int]] = None
        rest = words[5:]
        if rest[:1] == ["eq"] and len(rest) == 2:
            dst_port = (int(rest[1]), int(rest[1]))
        elif rest[:1] == ["range"] and len(rest) == 3:
            dst_port = (int(rest[1]), int(rest[2]))
        elif rest:
            raise ParseError(line_no, line, "malformed ACL port clause")
        self.acl.entries.append(
            AclEntry(seq, action, proto=proto, src=src, dst=dst, dst_port=dst_port)
        )


class _RouteMapContext(_Context):
    def __init__(self, clause: RouteMapClause) -> None:
        self.clause = clause

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        words = line.split()
        if words[:3] == ["match", "ip", "prefix"] and len(words) == 4:
            self.clause.match_prefix = Prefix.parse(words[3])
        elif words[:2] == ["set", "local-preference"] and len(words) == 3:
            self.clause.set_local_pref = int(words[2])
        elif words[:2] == ["set", "metric"] and len(words) == 3:
            self.clause.set_metric = int(words[2])
        else:
            raise ParseError(line_no, line, "unknown route-map sub-command")


class _OspfContext(_Context):
    def __init__(self, process: OspfProcess) -> None:
        self.process = process

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        words = line.split()
        if words[:1] == ["redistribute"] and len(words) == 4 and words[2] == "metric":
            self.process.redistribute.append(Redistribution(words[1], int(words[3])))
        else:
            raise ParseError(line_no, line, "unknown OSPF sub-command")


class _BgpContext(_Context):
    def __init__(self, process: BgpProcess) -> None:
        self.process = process

    def parse(self, config: DeviceConfig, line_no: int, line: str) -> None:
        words = line.split()
        if words[:1] == ["network"] and len(words) == 2:
            self.process.networks.append(Prefix.parse(words[1]))
        elif words[:1] == ["aggregate-address"] and len(words) == 2:
            self.process.aggregates.append(Prefix.parse(words[1]))
        elif words[:1] == ["neighbor"] and len(words) == 4 and words[2] == "remote-as":
            self.process.add_neighbor(BgpNeighbor(words[1], int(words[3])))
        elif words[:1] == ["neighbor"] and len(words) == 5 and words[2] == "route-map":
            neighbor = self.process.neighbors.get(words[1])
            if neighbor is None:
                raise ParseError(line_no, line, "route-map before remote-as")
            if words[4] == "in":
                neighbor.route_map_in = words[3]
            elif words[4] == "out":
                neighbor.route_map_out = words[3]
            else:
                raise ParseError(line_no, line, "route-map direction")
        elif words[:1] == ["redistribute"] and len(words) == 4 and words[2] == "metric":
            self.process.redistribute.append(Redistribution(words[1], int(words[3])))
        else:
            raise ParseError(line_no, line, "unknown BGP sub-command")


def _parse_top_line(config: DeviceConfig, line_no: int, line: str) -> Optional[_Context]:
    words = line.split()
    if words[:1] == ["hostname"] and len(words) == 2:
        config.hostname = words[1]
        return None
    if words[:1] == ["interface"] and len(words) == 2:
        iface = config.ensure_interface(words[1])
        return _InterfaceContext(iface)
    if words[:2] == ["ip", "access-list"] and len(words) == 3:
        acl = config.acls.setdefault(words[2], Acl(words[2]))
        return _AclContext(acl)
    if words[:1] == ["route-map"] and len(words) == 4:
        name, action, seq_text = words[1], words[2], words[3]
        if action not in ("permit", "deny") or not seq_text.isdigit():
            raise ParseError(line_no, line, "malformed route-map header")
        rm = config.route_maps.setdefault(name, RouteMap(name))
        clause = RouteMapClause(int(seq_text), action)
        rm.clauses.append(clause)
        return _RouteMapContext(clause)
    if words[:2] == ["router", "ospf"] and len(words) == 3:
        config.ospf = OspfProcess(process_id=int(words[2]))
        return _OspfContext(config.ospf)
    if words[:2] == ["router", "bgp"] and len(words) == 3:
        config.bgp = BgpProcess(asn=int(words[2]))
        return _BgpContext(config.bgp)
    if words[:2] == ["ip", "route"] and len(words) in (4, 5):
        distance = int(words[4]) if len(words) == 5 else 1
        next_hop = words[3]
        if next_hop.count(".") == 3:
            config.static_routes.append(
                StaticRoute(
                    Prefix.parse(words[2]),
                    next_hop_ip=parse_ipv4(next_hop),
                    admin_distance=distance,
                )
            )
        else:
            config.static_routes.append(
                StaticRoute(
                    Prefix.parse(words[2]), next_hop, admin_distance=distance
                )
            )
        return None
    raise ParseError(line_no, line, "unknown top-level command")
