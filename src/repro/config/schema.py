"""Vendor-neutral configuration schema.

RealConfig "models a basic set of configurations including OSPF, BGP, static
routes, access control lists, and route redistribution" (paper §4.2).  This
module defines that configuration model as plain dataclasses:

- per-interface settings (address, shutdown, OSPF cost, ACL bindings),
- an OSPF process (interface participation, redistribution),
- a BGP process (AS number, originated networks, per-neighbor route maps),
- static routes, ACLs, and route maps.

A :class:`Snapshot` bundles the physical topology with one
:class:`DeviceConfig` per node — the unit existing verifiers check from
scratch and RealConfig checks incrementally.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addr import Prefix
from repro.net.topology import Topology


class ConfigError(ValueError):
    """Raised for semantically invalid configurations."""


# -- interface-level configuration ----------------------------------------


@dataclass
class InterfaceConfig:
    """Configuration of one interface."""

    name: str
    prefix: Optional[Prefix] = None
    address: Optional[int] = None
    shutdown: bool = False
    #: Link MTU; only rendered when it differs from the 1500 default.
    mtu: int = 1500
    ospf_enabled: bool = False
    ospf_cost: int = 1
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None

    def is_up(self) -> bool:
        return not self.shutdown


# -- routing processes ------------------------------------------------------


@dataclass
class Redistribution:
    """Redistribute routes from ``source`` protocol into this process."""

    source: str  # "static" | "connected" | "ospf" | "bgp"
    metric: int = 20


@dataclass
class OspfProcess:
    """An OSPF process; interfaces join via ``InterfaceConfig.ospf_enabled``."""

    process_id: int = 1
    redistribute: List[Redistribution] = field(default_factory=list)


@dataclass
class BgpNeighbor:
    """An eBGP session established over a directly connected interface.

    The paper's evaluation peers every node with all of its physical
    neighbors (one AS per node), so sessions are keyed by local interface.
    """

    interface: str
    remote_as: int
    route_map_in: Optional[str] = None
    route_map_out: Optional[str] = None


@dataclass
class BgpProcess:
    asn: int
    networks: List[Prefix] = field(default_factory=list)
    neighbors: Dict[str, BgpNeighbor] = field(default_factory=dict)  # by interface
    redistribute: List[Redistribution] = field(default_factory=list)
    #: ``aggregate-address`` prefixes: originated whenever a strictly more
    #: specific route is present in the BGP table (specifics are still
    #: advertised, i.e. no summary-only suppression).
    aggregates: List[Prefix] = field(default_factory=list)

    def add_neighbor(self, neighbor: BgpNeighbor) -> None:
        self.neighbors[neighbor.interface] = neighbor


@dataclass
class StaticRoute:
    """``ip route <prefix> <interface|next-hop-ip> [distance]``.

    Exactly one of ``next_hop_interface`` / ``next_hop_ip`` is set.  An IP
    next hop is resolved at evaluation time against the router's connected
    subnets (the route is inactive while no up interface covers the
    address).
    """

    prefix: Prefix
    next_hop_interface: Optional[str] = None
    next_hop_ip: Optional[int] = None
    admin_distance: int = 1

    def __post_init__(self) -> None:
        if (self.next_hop_interface is None) == (self.next_hop_ip is None):
            raise ConfigError(
                f"static route {self.prefix}: exactly one of interface/IP "
                "next hop required"
            )


# -- route maps -------------------------------------------------------------


@dataclass
class RouteMapClause:
    """One permit/deny clause of a route map.

    ``match_prefix`` of ``None`` matches every route.  ``set_local_pref``
    only has an effect on BGP routes.
    """

    seq: int
    action: str = "permit"  # "permit" | "deny"
    match_prefix: Optional[Prefix] = None
    set_local_pref: Optional[int] = None
    set_metric: Optional[int] = None

    def matches(self, prefix: Prefix) -> bool:
        return self.match_prefix is None or self.match_prefix.contains(prefix)


@dataclass
class RouteMap:
    name: str
    clauses: List[RouteMapClause] = field(default_factory=list)

    def sorted_clauses(self) -> List[RouteMapClause]:
        return sorted(self.clauses, key=lambda c: c.seq)

    def clause(self, seq: int) -> RouteMapClause:
        for c in self.clauses:
            if c.seq == seq:
                return c
        raise ConfigError(f"route-map {self.name} has no clause {seq}")


# -- ACLs --------------------------------------------------------------------


@dataclass
class AclEntry:
    """One numbered entry of an access list.

    ``proto`` of ``None`` means any protocol; prefixes of ``None`` mean any
    address; ``dst_port`` of ``None`` means any port (inclusive range
    otherwise).
    """

    seq: int
    action: str  # "permit" | "deny"
    proto: Optional[int] = None
    src: Optional[Prefix] = None
    dst: Optional[Prefix] = None
    dst_port: Optional[Tuple[int, int]] = None


@dataclass
class Acl:
    name: str
    entries: List[AclEntry] = field(default_factory=list)

    def sorted_entries(self) -> List[AclEntry]:
        return sorted(self.entries, key=lambda e: e.seq)


# -- device and network ------------------------------------------------------


@dataclass
class DeviceConfig:
    """The full configuration of one router."""

    hostname: str
    interfaces: Dict[str, InterfaceConfig] = field(default_factory=dict)
    ospf: Optional[OspfProcess] = None
    bgp: Optional[BgpProcess] = None
    static_routes: List[StaticRoute] = field(default_factory=list)
    acls: Dict[str, Acl] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)

    def copy(self) -> "DeviceConfig":
        """A structural deep copy (hand-rolled: ~10x faster than
        ``copy.deepcopy``, which dominates snapshot cloning on large
        networks)."""
        device = DeviceConfig(hostname=self.hostname)
        device.interfaces = {
            name: copy.copy(iface) for name, iface in self.interfaces.items()
        }
        if self.ospf is not None:
            device.ospf = OspfProcess(
                process_id=self.ospf.process_id,
                redistribute=[copy.copy(r) for r in self.ospf.redistribute],
            )
        if self.bgp is not None:
            device.bgp = BgpProcess(
                asn=self.bgp.asn,
                networks=list(self.bgp.networks),
                neighbors={
                    name: copy.copy(neighbor)
                    for name, neighbor in self.bgp.neighbors.items()
                },
                redistribute=[copy.copy(r) for r in self.bgp.redistribute],
                aggregates=list(self.bgp.aggregates),
            )
        device.static_routes = [copy.copy(r) for r in self.static_routes]
        device.acls = {
            name: Acl(acl.name, entries=[copy.copy(e) for e in acl.entries])
            for name, acl in self.acls.items()
        }
        device.route_maps = {
            name: RouteMap(rm.name, clauses=[copy.copy(c) for c in rm.clauses])
            for name, rm in self.route_maps.items()
        }
        return device

    def interface(self, name: str) -> InterfaceConfig:
        try:
            return self.interfaces[name]
        except KeyError:
            raise ConfigError(
                f"device {self.hostname!r} has no interface {name!r}"
            ) from None

    def ensure_interface(self, name: str) -> InterfaceConfig:
        if name not in self.interfaces:
            self.interfaces[name] = InterfaceConfig(name)
        return self.interfaces[name]

    def route_map(self, name: str) -> RouteMap:
        try:
            return self.route_maps[name]
        except KeyError:
            raise ConfigError(
                f"device {self.hostname!r} has no route-map {name!r}"
            ) from None

    def acl(self, name: str) -> Acl:
        try:
            return self.acls[name]
        except KeyError:
            raise ConfigError(
                f"device {self.hostname!r} has no access-list {name!r}"
            ) from None

    def validate(self) -> None:
        """Check referential integrity of the device configuration."""
        for iface in self.interfaces.values():
            for acl_name in (iface.acl_in, iface.acl_out):
                if acl_name is not None and acl_name not in self.acls:
                    raise ConfigError(
                        f"{self.hostname}:{iface.name} binds missing ACL {acl_name!r}"
                    )
        if self.bgp is not None:
            for neighbor in self.bgp.neighbors.values():
                if neighbor.interface not in self.interfaces:
                    raise ConfigError(
                        f"{self.hostname}: BGP neighbor on missing interface "
                        f"{neighbor.interface!r}"
                    )
                for rm in (neighbor.route_map_in, neighbor.route_map_out):
                    if rm is not None and rm not in self.route_maps:
                        raise ConfigError(
                            f"{self.hostname}: neighbor {neighbor.interface} binds "
                            f"missing route-map {rm!r}"
                        )
        for route in self.static_routes:
            if (
                route.next_hop_interface is not None
                and route.next_hop_interface not in self.interfaces
            ):
                raise ConfigError(
                    f"{self.hostname}: static route {route.prefix} via missing "
                    f"interface {route.next_hop_interface!r}"
                )


@dataclass
class Snapshot:
    """A verifiable unit: the topology plus every device's configuration."""

    topology: Topology
    devices: Dict[str, DeviceConfig] = field(default_factory=dict)

    def device(self, name: str) -> DeviceConfig:
        try:
            return self.devices[name]
        except KeyError:
            raise ConfigError(f"no configuration for device {name!r}") from None

    def add_device(self, config: DeviceConfig) -> None:
        if config.hostname in self.devices:
            raise ConfigError(f"duplicate device configuration: {config.hostname!r}")
        self.devices[config.hostname] = config

    def device_names(self) -> List[str]:
        return sorted(self.devices)

    def iter_devices(self) -> Iterator[DeviceConfig]:
        for name in self.device_names():
            yield self.devices[name]

    def clone(self) -> "Snapshot":
        """Deep-copy the configurations (topology is shared, it is immutable
        for the purposes of verification — link failures are configuration
        changes, i.e. interface shutdowns)."""
        return Snapshot(
            self.topology,
            {name: device.copy() for name, device in self.devices.items()},
        )

    def validate(self) -> None:
        for device in self.devices.values():
            device.validate()
