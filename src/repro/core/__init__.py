"""The paper's primary contribution: the RealConfig INCV pipeline."""

from repro.core.generator import (
    IncrementalDataPlaneGenerator,
    extract_filter_rules,
)
from repro.core.realconfig import LintGateError, RealConfig
from repro.core.results import StageTimings, VerificationDelta

__all__ = [
    "IncrementalDataPlaneGenerator",
    "extract_filter_rules",
    "LintGateError",
    "RealConfig",
    "StageTimings",
    "VerificationDelta",
]
