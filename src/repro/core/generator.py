"""Stage 1: the incremental data plane generator.

"Takes the configuration changes as input, and returns the data plane
changes" (paper §4.2).  Two sub-paths, exactly as in the paper:

- *forwarding rules* are generated incrementally by the differential engine
  (:class:`~repro.routing.program.ControlPlane`): config facts in, FIB
  deltas out;
- *filtering rules* are explicit in the configuration, so their changes are
  extracted directly by diffing the filter-rule sets of the two snapshots —
  no control plane evaluation involved.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.config.schema import Snapshot
from repro.dataplane.rule import FilterRule, RuleUpdate, updates_from_fib
from repro.ddlog.convergence import ConvergenceMonitor
from repro.ddlog.engine import EpochStats
from repro.net.headerspace import HeaderBox
from repro.routing.program import ControlPlane


def extract_filter_rules(snapshot: Snapshot) -> Set[FilterRule]:
    """All filter rules implied by ACL bindings in a snapshot."""
    rules: Set[FilterRule] = set()
    for device in snapshot.iter_devices():
        for iface in device.interfaces.values():
            for direction, acl_name in (("in", iface.acl_in), ("out", iface.acl_out)):
                if acl_name is None:
                    continue
                acl = device.acls.get(acl_name)
                if acl is None:
                    continue
                for entry in acl.sorted_entries():
                    rules.add(
                        FilterRule(
                            node=device.hostname,
                            interface=iface.name,
                            direction=direction,
                            seq=entry.seq,
                            action=entry.action,
                            match=_entry_box(entry),
                        )
                    )
    return rules


def _entry_box(entry) -> HeaderBox:
    fields = {}
    if entry.dst is not None:
        fields["dst_ip"] = entry.dst.as_interval()
    if entry.src is not None:
        fields["src_ip"] = entry.src.as_interval()
    if entry.proto is not None:
        fields["proto"] = (entry.proto, entry.proto)
    if entry.dst_port is not None:
        fields["dst_port"] = entry.dst_port
    return HeaderBox.build(**fields)


class IncrementalDataPlaneGenerator:
    """Configuration changes in, rule updates out."""

    def __init__(self, monitor: Optional[ConvergenceMonitor] = None) -> None:
        self.control_plane = ControlPlane(monitor=monitor)
        self._filter_rules: Set[FilterRule] = set()
        self._loaded = False

    @property
    def last_engine_stats(self) -> Optional[EpochStats]:
        return self.control_plane.last_stats

    def update_to(self, snapshot: Snapshot) -> List[RuleUpdate]:
        """Move to ``snapshot``; returns the batch of rule updates."""
        fib_delta = self.control_plane.update_to(snapshot)
        updates = updates_from_fib(fib_delta.inserted, fib_delta.deleted)

        new_filters = extract_filter_rules(snapshot)
        for rule in sorted(new_filters - self._filter_rules):
            updates.append(RuleUpdate(1, rule))
        for rule in sorted(self._filter_rules - new_filters):
            updates.append(RuleUpdate(-1, rule))
        self._filter_rules = new_filters
        self._loaded = True
        return updates

    def current_fib_size(self) -> int:
        return len(self.control_plane.fib())

    # -- state capture / restore ---------------------------------------------

    def capture_state(self) -> dict:
        return {
            "control_plane": self.control_plane.capture_state(),
            "filter_rules": set(self._filter_rules),
            "loaded": self._loaded,
        }

    def restore_state(self, state: dict) -> None:
        self.control_plane.restore_state(state["control_plane"])
        self._filter_rules = set(state["filter_rules"])
        self._loaded = state["loaded"]
