"""RealConfig: the incremental network configuration verifier.

The paper's three components chained in sequence (Figure 1), each operating
incrementally:

1. :class:`~repro.core.generator.IncrementalDataPlaneGenerator` —
   configuration changes -> data plane (rule) changes;
2. :class:`~repro.dataplane.batch.BatchUpdater` over a
   :class:`~repro.dataplane.model.NetworkModel` — rule changes -> data
   plane model changes (affected ECs with old/new ports);
3. :class:`~repro.policy.checker.IncrementalChecker` — model changes ->
   changes in policy satisfaction.

Typical use::

    verifier = RealConfig(snapshot, endpoints=edge_nodes, policies=[...])
    delta = verifier.apply_changes([ShutdownInterface("agg0_0", "down0")])
    if not delta.ok:
        for status in delta.newly_violated:
            print(status)
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro.config.changes import Change, apply_changes
from repro.config.diff import LineDiff, diff_snapshots
from repro.config.schema import ConfigError, Snapshot
from repro.core.generator import IncrementalDataPlaneGenerator
from repro.core.results import StageTimings, VerificationDelta
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.ddlog.convergence import ConvergenceMonitor
from repro.lint.diagnostics import Suppression
from repro.lint.framework import LintResult, LintRunner
from repro.policy.checker import IncrementalChecker
from repro.policy.spec import Policy, PolicyStatus
from repro.telemetry import get_metrics, names, span


class LintGateError(ConfigError):
    """Raised by the pre-flight lint gate (``lint_mode="enforce"``) when a
    change batch introduces error-severity diagnostics.  The verifier's
    state is left at the pre-change snapshot."""

    def __init__(self, result: LintResult) -> None:
        errors = result.errors()
        summary = "; ".join(str(diag) for diag in errors[:5])
        if len(errors) > 5:
            summary += f"; ... ({len(errors) - 5} more)"
        super().__init__(
            f"change rejected by lint gate ({len(errors)} error(s)): {summary}"
        )
        self.result = result


class RealConfig:
    """The end-to-end incremental configuration verifier."""

    def __init__(
        self,
        snapshot: Snapshot,
        endpoints: Optional[Iterable[str]] = None,
        policies: Iterable[Policy] = (),
        update_order: str = "insertion-first",
        monitor: Optional[ConvergenceMonitor] = None,
        merge_ecs: bool = True,
        model_mode: str = "ecmp",
        lint_mode: str = "off",
        lint_suppressions: Iterable[Suppression] = (),
    ) -> None:
        if lint_mode not in ("off", "warn", "enforce"):
            raise ValueError(f"unknown lint_mode {lint_mode!r}")
        snapshot.validate()
        self.snapshot = snapshot.clone()
        # Pre-flight static analysis (the lint gate): "warn" annotates every
        # VerificationDelta with the incremental lint result, "enforce"
        # additionally refuses change batches that introduce error-severity
        # diagnostics before any pipeline state is touched.
        self.lint_mode = lint_mode
        self._lint_runner: Optional[LintRunner] = None
        self._lint_result: Optional[LintResult] = None
        timings = StageTimings()
        with span(names.SPAN_VERIFY, kind="initial") as root:
            with span(names.SPAN_LINT_GATE, mode=lint_mode):
                if lint_mode != "off":
                    started = time.perf_counter()
                    self._lint_runner = LintRunner(
                        suppressions=lint_suppressions
                    )
                    self._lint_result = self._lint_runner.run(self.snapshot)
                    timings.lint = time.perf_counter() - started
            self.generator = IncrementalDataPlaneGenerator(monitor=monitor)
            self.model = NetworkModel(
                snapshot.topology, merge_on_unregister=merge_ecs, mode=model_mode
            )
            self.updater = BatchUpdater(self.model, order=update_order)

            with span(names.SPAN_GENERATION):
                started = time.perf_counter()
                updates = self.generator.update_to(self.snapshot)
                timings.generation = time.perf_counter() - started

            started = time.perf_counter()
            batch = self.updater.apply(updates)
            timings.model_update = time.perf_counter() - started

            if endpoints is None:
                endpoints = [
                    device.hostname for device in snapshot.iter_devices()
                ]
            started = time.perf_counter()
            self.checker = IncrementalChecker(self.model, endpoints, policies)
            timings.policy_check = time.perf_counter() - started

            self.initial = VerificationDelta(
                description="initial snapshot",
                line_diff=None,
                rule_updates=updates,
                batch=batch,
                report=self.checker.initial_report,
                timings=timings,
                lint=self._lint_result,
                engine=self.generator.last_engine_stats,
            )
            root.set("rule_updates", len(updates))
            root.set("ok", self.initial.ok)
        self._record_metrics(self.initial)

    # -- verification entry points ------------------------------------------------

    def apply_change(self, change: Change) -> VerificationDelta:
        return self.apply_changes([change])

    def apply_changes(self, changes: Sequence[Change]) -> VerificationDelta:
        """Apply typed changes to the current snapshot and verify them."""
        with span(
            names.SPAN_VERIFY, kind="change", changes=len(changes)
        ) as root:
            with span(names.SPAN_CONFIG_DIFF):
                started = time.perf_counter()
                new_snapshot, line_diff = apply_changes(self.snapshot, changes)
                diff_seconds = time.perf_counter() - started
            description = "; ".join(change.describe() for change in changes)
            delta = self._verify(new_snapshot, line_diff, description)
            delta.timings.config_diff = diff_seconds
            root.set("rule_updates", len(delta.rule_updates))
            root.set("ok", delta.ok)
        self._record_metrics(delta)
        return delta

    def verify_snapshot(self, new_snapshot: Snapshot) -> VerificationDelta:
        """Verify an externally edited snapshot (e.g. parsed config text)."""
        with span(names.SPAN_VERIFY, kind="snapshot") as root:
            with span(names.SPAN_CONFIG_DIFF):
                started = time.perf_counter()
                new_snapshot.validate()
                line_diff = diff_snapshots(self.snapshot, new_snapshot)
                diff_seconds = time.perf_counter() - started
            delta = self._verify(
                new_snapshot.clone(),
                line_diff,
                f"snapshot ({line_diff.summary()})",
            )
            delta.timings.config_diff = diff_seconds
            root.set("rule_updates", len(delta.rule_updates))
            root.set("ok", delta.ok)
        self._record_metrics(delta)
        return delta

    def _verify(
        self, new_snapshot: Snapshot, line_diff: LineDiff, description: str
    ) -> VerificationDelta:
        timings = StageTimings()

        with span(names.SPAN_LINT_GATE, mode=self.lint_mode):
            lint_result = None
            if self._lint_runner is not None:
                started = time.perf_counter()
                lint_result = self._lint_gate(new_snapshot, line_diff)
                timings.lint = time.perf_counter() - started

        with span(names.SPAN_GENERATION):
            started = time.perf_counter()
            updates = self.generator.update_to(new_snapshot)
            timings.generation = time.perf_counter() - started

        started = time.perf_counter()
        batch = self.updater.apply(updates)
        timings.model_update = time.perf_counter() - started

        started = time.perf_counter()
        report = self.checker.check_batch(batch)
        timings.policy_check = time.perf_counter() - started

        self.snapshot = new_snapshot
        return VerificationDelta(
            description=description,
            line_diff=line_diff,
            rule_updates=updates,
            batch=batch,
            report=report,
            timings=timings,
            lint=lint_result,
            engine=self.generator.last_engine_stats,
        )

    def _record_metrics(self, delta: VerificationDelta) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter(names.VERIFICATIONS).inc()
        timings = delta.timings
        for stage, seconds in (
            ("config_diff", timings.config_diff),
            ("lint", timings.lint),
            ("generation", timings.generation),
            ("model_update", timings.model_update),
            ("policy_check", timings.policy_check),
            ("total", timings.total),
        ):
            metrics.histogram(names.STAGE_SECONDS, stage=stage).observe(seconds)

    def _lint_gate(
        self, new_snapshot: Snapshot, line_diff: LineDiff
    ) -> Optional[LintResult]:
        """Incrementally lint the change; raise before any pipeline state
        mutates when the gate is enforcing and the change adds errors."""
        if self._lint_runner is None or self._lint_result is None:
            return None
        result = self._lint_runner.run_incremental(
            new_snapshot, line_diff, self._lint_result
        )
        if self.lint_mode == "enforce":
            # Refuse only *new* errors, so a change that fixes (or merely
            # does not worsen) an already-broken network still verifies.
            before = {str(diag) for diag in self._lint_result.errors()}
            if any(str(diag) not in before for diag in result.errors()):
                raise LintGateError(result)
        self._lint_result = result
        return result

    # -- conveniences ------------------------------------------------------------------

    def add_policy(self, policy: Policy) -> PolicyStatus:
        return self.checker.add_policy(policy)

    def remove_policy(self, name: str) -> None:
        self.checker.remove_policy(name)

    def policy_statuses(self) -> List[PolicyStatus]:
        return self.checker.statuses()

    def violated_policies(self) -> List[PolicyStatus]:
        return [status for status in self.checker.statuses() if not status.holds]

    def explain(self, policy_name: str):
        """Evidence traces for a policy's current verdict (see
        :meth:`repro.policy.checker.IncrementalChecker.explain`)."""
        return self.checker.explain(policy_name)
