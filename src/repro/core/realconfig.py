"""RealConfig: the incremental network configuration verifier.

The paper's three components chained in sequence (Figure 1), each operating
incrementally:

1. :class:`~repro.core.generator.IncrementalDataPlaneGenerator` —
   configuration changes -> data plane (rule) changes;
2. :class:`~repro.dataplane.batch.BatchUpdater` over a
   :class:`~repro.dataplane.model.NetworkModel` — rule changes -> data
   plane model changes (affected ECs with old/new ports);
3. :class:`~repro.policy.checker.IncrementalChecker` — model changes ->
   changes in policy satisfaction.

Typical use::

    verifier = RealConfig(snapshot, endpoints=edge_nodes, policies=[...])
    delta = verifier.apply_changes([ShutdownInterface("agg0_0", "down0")])
    if not delta.ok:
        for status in delta.newly_violated:
            print(status)
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.config.changes import Change, apply_changes
from repro.config.diff import LineDiff, diff_snapshots
from repro.config.schema import ConfigError, Snapshot
from repro.core.generator import IncrementalDataPlaneGenerator
from repro.core.results import StageTimings, VerificationDelta
from repro.dataplane.batch import BatchUpdater, record_batch_metrics
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import RuleUpdate
from repro.ddlog.convergence import ConvergenceMonitor
from repro.lint.diagnostics import Suppression
from repro.lint.framework import LintResult, LintRunner
from repro.parallel.executor import ParallelExecutor
from repro.policy.checker import IncrementalChecker
from repro.policy.spec import Policy, PolicyStatus
from repro.resilience.faults import fault_point
from repro.telemetry import get_metrics, names, span


class LintGateError(ConfigError):
    """Raised by the pre-flight lint gate (``lint_mode="enforce"``) when a
    change batch introduces error-severity diagnostics.  The verifier's
    state is left at the pre-change snapshot."""

    def __init__(self, result: LintResult) -> None:
        errors = result.errors()
        summary = "; ".join(str(diag) for diag in errors[:5])
        if len(errors) > 5:
            summary += f"; ... ({len(errors) - 5} more)"
        super().__init__(
            f"change rejected by lint gate ({len(errors)} error(s)): {summary}"
        )
        self.result = result


class RealConfig:
    """The end-to-end incremental configuration verifier."""

    def __init__(
        self,
        snapshot: Snapshot,
        endpoints: Optional[Iterable[str]] = None,
        policies: Iterable[Policy] = (),
        update_order: str = "insertion-first",
        monitor: Optional[ConvergenceMonitor] = None,
        merge_ecs: bool = True,
        model_mode: str = "ecmp",
        lint_mode: str = "off",
        lint_suppressions: Iterable[Suppression] = (),
        transactional: bool = True,
        audit_every: int = 0,
        workers: int = 1,
        parallel_backend: str = "auto",
    ) -> None:
        if lint_mode not in ("off", "warn", "enforce"):
            raise ValueError(f"unknown lint_mode {lint_mode!r}")
        if audit_every < 0:
            raise ValueError("audit_every must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        # rebuild() re-enters __init__ on a live instance: release the old
        # pool before the model it was seeded from is thrown away.
        existing = getattr(self, "_executor", None)
        if existing is not None:
            existing.shutdown()
        self._executor: Optional[ParallelExecutor] = None
        self._mutation_started = False
        lint_suppressions = list(lint_suppressions)
        snapshot.validate()
        self.snapshot = snapshot.clone()
        # Cooperative abort hook: when set, called at every stage boundary
        # of a verification.  Raising from it (e.g. a deadline check from
        # repro.serve) aborts the verification; the transactional wrapper
        # then rolls the pipeline back to the pre-change state.
        self.abort_check: Optional[Callable[[], None]] = None
        # Transactional verification: on any mid-pipeline failure, roll all
        # component state back to the pre-change snapshot (degradation
        # ladder: rollback -> rebuild from the current snapshot).
        self.transactional = transactional
        # Self-check mode: audit the incremental state against a
        # from-scratch recomputation every N verifications (0 = off).
        self.audit_every = audit_every
        self._verifications_since_audit = 0
        self.last_audit: Optional[Any] = None
        self._monitor = monitor
        # Pre-flight static analysis (the lint gate): "warn" annotates every
        # VerificationDelta with the incremental lint result, "enforce"
        # additionally refuses change batches that introduce error-severity
        # diagnostics before any pipeline state is touched.
        self.lint_mode = lint_mode
        self._lint_runner: Optional[LintRunner] = None
        self._lint_result: Optional[LintResult] = None
        timings = StageTimings()
        with span(names.SPAN_VERIFY, kind="initial") as root:
            with span(names.SPAN_LINT_GATE, mode=lint_mode):
                if lint_mode != "off":
                    started = time.perf_counter()
                    self._lint_runner = LintRunner(
                        suppressions=lint_suppressions
                    )
                    self._lint_result = self._lint_runner.run(self.snapshot)
                    timings.lint = time.perf_counter() - started
            self.generator = IncrementalDataPlaneGenerator(monitor=monitor)
            self.model = NetworkModel(
                snapshot.topology, merge_on_unregister=merge_ecs, mode=model_mode
            )
            self.updater = BatchUpdater(self.model, order=update_order)

            with span(names.SPAN_GENERATION):
                started = time.perf_counter()
                updates = self.generator.update_to(self.snapshot)
                timings.generation = time.perf_counter() - started

            started = time.perf_counter()
            batch = self.updater.apply(updates)
            timings.model_update = time.perf_counter() - started

            if endpoints is None:
                endpoints = [
                    device.hostname for device in snapshot.iter_devices()
                ]
            started = time.perf_counter()
            self.checker = IncrementalChecker(self.model, endpoints, policies)
            timings.policy_check = time.perf_counter() - started

            # Everything needed to rebuild (or checkpoint) this verifier.
            self._options: Dict[str, Any] = {
                "endpoints": list(self.checker.endpoints),
                "update_order": update_order,
                "merge_ecs": merge_ecs,
                "model_mode": model_mode,
                "lint_mode": lint_mode,
                "lint_suppressions": lint_suppressions,
                "transactional": transactional,
                "audit_every": audit_every,
                "workers": workers,
                "parallel_backend": parallel_backend,
            }

            self.initial = VerificationDelta(
                description="initial snapshot",
                line_diff=None,
                rule_updates=updates,
                batch=batch,
                report=self.checker.initial_report,
                timings=timings,
                lint=self._lint_result,
                engine=self.generator.last_engine_stats,
            )
            root.set("rule_updates", len(updates))
            root.set("ok", self.initial.ok)
        self._record_metrics(self.initial)
        if workers > 1:
            # Built (and forked) last, so the seeded replicas carry the
            # full partition including the checker's policy match boxes,
            # and no caller threads exist yet when the pool forks.
            self._executor = ParallelExecutor(
                self.model, workers, backend=parallel_backend
            )
            self._executor.start()

    @property
    def lint_result(self) -> Optional[LintResult]:
        """The lint findings for the *current* snapshot (``None`` when the
        gate is off).  Updated after every committed change batch."""
        return self._lint_result

    # -- verification entry points ------------------------------------------------

    def apply_change(self, change: Change) -> VerificationDelta:
        return self.apply_changes([change])

    def apply_changes(self, changes: Sequence[Change]) -> VerificationDelta:
        """Apply typed changes to the current snapshot and verify them."""
        with span(
            names.SPAN_VERIFY, kind="change", changes=len(changes)
        ) as root:
            with span(names.SPAN_CONFIG_DIFF):
                started = time.perf_counter()
                new_snapshot, line_diff = apply_changes(self.snapshot, changes)
                diff_seconds = time.perf_counter() - started
            description = "; ".join(change.describe() for change in changes)
            delta = self._transact(
                lambda: self._verify(new_snapshot, line_diff, description)
            )
            delta.timings.config_diff = diff_seconds
            root.set("rule_updates", len(delta.rule_updates))
            root.set("ok", delta.ok)
        self._record_metrics(delta)
        self._maybe_audit()
        return delta

    def verify_snapshot(self, new_snapshot: Snapshot) -> VerificationDelta:
        """Verify an externally edited snapshot (e.g. parsed config text)."""
        with span(names.SPAN_VERIFY, kind="snapshot") as root:
            with span(names.SPAN_CONFIG_DIFF):
                started = time.perf_counter()
                new_snapshot.validate()
                self._check_topology(new_snapshot)
                line_diff = diff_snapshots(self.snapshot, new_snapshot)
                diff_seconds = time.perf_counter() - started
            delta = self._transact(
                lambda: self._verify(
                    new_snapshot.clone(),
                    line_diff,
                    f"snapshot ({line_diff.summary()})",
                )
            )
            delta.timings.config_diff = diff_seconds
            root.set("rule_updates", len(delta.rule_updates))
            root.set("ok", delta.ok)
        self._record_metrics(delta)
        self._maybe_audit()
        return delta

    def _check_topology(self, new_snapshot: Snapshot) -> None:
        """Reject snapshots whose topology differs from the verifier's —
        the incremental model is built over a fixed topology, and letting a
        topology change into the pipeline used to crash it mid-verify with
        an opaque ModelError, leaving the engine half-advanced."""
        old, new = self.snapshot.topology, new_snapshot.topology
        if set(old.node_names()) != set(new.node_names()):
            raise ConfigError(
                "snapshot changes the topology (node set differs); "
                "RealConfig verifies configuration changes over a fixed "
                "topology — build a new verifier for the new network"
            )
        old_links = {frozenset(link.endpoints()) for link in old.links()}
        new_links = {frozenset(link.endpoints()) for link in new.links()}
        if old_links != new_links:
            raise ConfigError(
                "snapshot changes the topology (link set differs); "
                "RealConfig verifies configuration changes over a fixed "
                "topology — build a new verifier for the new network"
            )

    def _abort_point(self) -> None:
        """Stage-boundary hook for cooperative cancellation (deadlines)."""
        if self.abort_check is not None:
            self.abort_check()

    def _verify(
        self, new_snapshot: Snapshot, line_diff: LineDiff, description: str
    ) -> VerificationDelta:
        timings = StageTimings()
        self._abort_point()

        with span(names.SPAN_LINT_GATE, mode=self.lint_mode):
            lint_result = None
            if self._lint_runner is not None:
                started = time.perf_counter()
                lint_result = self._lint_gate(new_snapshot, line_diff)
                timings.lint = time.perf_counter() - started
        fault_point("lint_gate", lint_result)
        self._abort_point()

        # From here on main-process pipeline state advances (the engine's
        # operator histories move to the new snapshot); the deferred-commit
        # transaction uses this flag to pick its recovery rung.
        self._mutation_started = True
        with span(names.SPAN_GENERATION):
            started = time.perf_counter()
            updates = self.generator.update_to(new_snapshot)
            timings.generation = time.perf_counter() - started
        fault_point("generation", updates)
        self._abort_point()

        if self._executor is not None:
            batch, report = self._verify_parallel(updates, timings)
        else:
            started = time.perf_counter()
            batch = self.updater.apply(updates)
            timings.model_update = time.perf_counter() - started
            fault_point("model_update", batch)
            self._abort_point()

            started = time.perf_counter()
            report = self.checker.check_batch(batch)
            timings.policy_check = time.perf_counter() - started
            fault_point("policy_check", report)
            self._abort_point()

        self.snapshot = new_snapshot
        fault_point("commit")
        return VerificationDelta(
            description=description,
            line_diff=line_diff,
            rule_updates=updates,
            batch=batch,
            report=report,
            timings=timings,
            lint=lint_result,
            engine=self.generator.last_engine_stats,
        )

    def _verify_parallel(
        self, updates: Sequence[RuleUpdate], timings: StageTimings
    ) -> Any:
        """Stages 2+3 with ``workers=N``: two fan-out rounds against the
        pool, then the deferred main-process commit.  Timings keep the
        serial attribution — model_update gets round one plus the commit,
        policy_check gets round two plus the incremental check."""
        executor = self._executor
        assert executor is not None
        order = self.updater.order
        t0 = time.perf_counter()
        with span(
            names.SPAN_MODEL_UPDATE, order=order, workers=executor.workers
        ) as sp:
            round_one, analyses = executor.run_rounds(
                updates, order, abort_check=self.abort_check
            )
            t1 = t0 + round_one.elapsed_seconds
            t2 = time.perf_counter()
            batch = executor.commit_batch(updates, order, round_one)
            record_batch_metrics(self.model, batch)
            sp.set("moves", len(batch.moves))
            sp.set("affected_ecs", len(round_one.affected_ecs))
        t3 = time.perf_counter()
        timings.model_update = (t1 - t0) + (t3 - t2)
        fault_point("model_update", batch)
        self._abort_point()

        started = time.perf_counter()
        report = self.checker.check_ecs_with(round_one.affected_ecs, analyses)
        timings.policy_check = (t2 - t1) + (time.perf_counter() - started)
        fault_point("policy_check", report)
        self._abort_point()
        return batch, report

    # -- the commit protocol -------------------------------------------------------

    def _transact(
        self, worker: Callable[[], VerificationDelta]
    ) -> VerificationDelta:
        """Run one verification as a transaction: capture every component's
        state up front, commit by dropping the capture on success, and roll
        everything back on any failure before re-raising it.  If the
        rollback itself fails (state too damaged to restore), degrade by
        rebuilding the whole verifier from the current snapshot."""
        if self._executor is not None:
            return self._transact_deferred(worker)
        if not self.transactional:
            return worker()
        captured = self._capture_state()
        metrics = get_metrics()
        try:
            delta = worker()
        except BaseException:
            if metrics.enabled:
                metrics.counter(names.TXN_ROLLBACKS).inc()
            with span(names.SPAN_TXN_ROLLBACK):
                try:
                    self._restore_state(captured)
                except BaseException:
                    self.rebuild()
            raise
        if metrics.enabled:
            metrics.counter(names.TXN_COMMITS).inc()
        return delta

    def _transact_deferred(
        self, worker: Callable[[], VerificationDelta]
    ) -> VerificationDelta:
        """The parallel commit protocol: rounds one and two run on worker
        replicas, so nothing is captured up front — the main process first
        mutates at the deferred commit.  A failure before the mutation
        flag flips needs no rollback at all; past it, the only safe rung
        left is the rebuild (which also reseeds the pool).  Skipping the
        eager capture is why ``workers=N`` wins even on one core: the
        serial transactional path deep-copies the whole pipeline state
        before every verification."""
        metrics = get_metrics()
        self._mutation_started = False
        try:
            delta = worker()
        except BaseException:
            if self._mutation_started:
                # The replicas replayed this batch speculatively and the
                # main model never committed it (or is about to be thrown
                # away) — force a reseed before the next round.
                if self._executor is not None:
                    self._executor.invalidate()
                if self.transactional:
                    if metrics.enabled:
                        metrics.counter(names.TXN_ROLLBACKS).inc()
                    with span(names.SPAN_TXN_ROLLBACK, mode="rebuild"):
                        self.rebuild()
            raise
        if self.transactional and metrics.enabled:
            metrics.counter(names.TXN_COMMITS).inc()
        return delta

    def _capture_state(self) -> Dict[str, Any]:
        """Pre-change state of every pipeline component.  Snapshot and lint
        result are captured by reference: verification paths never mutate
        them (``apply_changes``/``verify_snapshot`` clone, ``_lint_gate``
        replaces)."""
        return {
            "snapshot": self.snapshot,
            "lint_result": self._lint_result,
            "generator": self.generator.capture_state(),
            "model": self.model.capture_state(),
            "checker": self.checker.capture_state(),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        self.snapshot = state["snapshot"]
        self._lint_result = state["lint_result"]
        self.generator.restore_state(state["generator"])
        self.model.restore_state(state["model"])
        self.checker.restore_state(state["checker"])

    def rebuild(self) -> VerificationDelta:
        """Rebuild every component from scratch off the current snapshot —
        the last rung of the degradation ladder (also drift recovery).
        Replaces ``self.initial`` with the fresh from-scratch delta."""
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.REBUILDS).inc()
        options = self._options
        policies = self.checker.policies()
        with span(names.SPAN_REBUILD):
            self.__init__(  # type: ignore[misc]
                self.snapshot,
                endpoints=options["endpoints"],
                policies=policies,
                update_order=options["update_order"],
                monitor=self._monitor,
                merge_ecs=options["merge_ecs"],
                model_mode=options["model_mode"],
                lint_mode=options["lint_mode"],
                lint_suppressions=options["lint_suppressions"],
                transactional=options["transactional"],
                audit_every=options["audit_every"],
                workers=options.get("workers", 1),
                parallel_backend=options.get("parallel_backend", "auto"),
            )
        return self.initial

    def _maybe_audit(self) -> None:
        """``audit_every=N`` self-check mode: after every N-th successful
        verification, audit the incremental state against a from-scratch
        recomputation; on drift, degrade gracefully by rebuilding."""
        if self.audit_every <= 0:
            return
        self._verifications_since_audit += 1
        if self._verifications_since_audit < self.audit_every:
            return
        self._verifications_since_audit = 0
        from repro.resilience.audit import audit

        report = audit(self)
        if not report.ok:
            self.rebuild()
        # After rebuild (which re-runs __init__ and clears the field), so
        # the caller can still see what the audit found.
        self.last_audit = report

    # -- checkpoint / restore ------------------------------------------------------

    def checkpoint(
        self,
        path,
        extras: Optional[Dict[str, Any]] = None,
        keep: Optional[int] = None,
    ) -> None:
        """Serialize the verifier's full state to ``path`` (see
        :mod:`repro.resilience.checkpoint` for the format).  ``extras`` is
        stored alongside the verifier state for the caller's own cursor
        data (e.g. the serving daemon's stream position).  ``keep`` caps
        the generation ring (default: the module's ring size)."""
        from repro.resilience.checkpoint import DEFAULT_GENERATIONS, write_checkpoint

        write_checkpoint(
            self,
            path,
            extras=extras,
            keep=DEFAULT_GENERATIONS if keep is None else keep,
        )

    @classmethod
    def restore(
        cls,
        path,
        monitor: Optional[ConvergenceMonitor] = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
    ) -> "RealConfig":
        """Rebuild a verifier from a checkpoint file without re-converging
        the control plane or re-checking any policy.  ``workers`` /
        ``parallel_backend`` override the checkpointed pool settings (the
        checkpoint itself never stores live pool state — only the option)."""
        from repro.resilience.checkpoint import read_checkpoint

        verifier = read_checkpoint(path, monitor=monitor)
        if workers is not None or parallel_backend is not None:
            verifier.set_workers(
                verifier._options.get("workers", 1)
                if workers is None
                else workers,
                parallel_backend,
            )
        return verifier

    @classmethod
    def _from_checkpoint(
        cls, payload: Dict[str, Any], monitor: Optional[ConvergenceMonitor]
    ) -> "RealConfig":
        options = payload["options"]
        self = object.__new__(cls)
        self.snapshot = payload["snapshot"]
        self.abort_check = None
        self.lint_mode = options["lint_mode"]
        self.transactional = options["transactional"]
        self.audit_every = options["audit_every"]
        self._verifications_since_audit = 0
        self.last_audit = None
        self._monitor = monitor
        self._options = dict(options)
        self._lint_runner = (
            LintRunner(suppressions=options["lint_suppressions"])
            if self.lint_mode != "off"
            else None
        )
        self._lint_result = payload["lint_result"]
        with span(names.SPAN_RESTORE):
            self.generator = IncrementalDataPlaneGenerator(monitor=monitor)
            self.generator.restore_state(payload["generator"])
            self.model = NetworkModel(
                self.snapshot.topology,
                merge_on_unregister=options["merge_ecs"],
                mode=options["model_mode"],
            )
            self.model.restore_state(payload["model"])
            self.updater = BatchUpdater(
                self.model, order=options["update_order"]
            )
            self.checker = IncrementalChecker.from_state(
                self.model, payload["checker"]
            )
        self.initial = payload["initial"]
        self._mutation_started = False
        self._executor = None
        workers = options.get("workers", 1)
        if workers > 1:
            self._executor = ParallelExecutor(
                self.model,
                workers,
                backend=options.get("parallel_backend", "auto"),
            )
            self._executor.start()
        return self

    def _record_metrics(self, delta: VerificationDelta) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter(names.VERIFICATIONS).inc()
        timings = delta.timings
        for stage, seconds in (
            ("config_diff", timings.config_diff),
            ("lint", timings.lint),
            ("generation", timings.generation),
            ("model_update", timings.model_update),
            ("policy_check", timings.policy_check),
            ("total", timings.total),
        ):
            metrics.histogram(names.STAGE_SECONDS, stage=stage).observe(seconds)

    def _lint_gate(
        self, new_snapshot: Snapshot, line_diff: LineDiff
    ) -> Optional[LintResult]:
        """Incrementally lint the change; raise before any pipeline state
        mutates when the gate is enforcing and the change adds errors."""
        if self._lint_runner is None or self._lint_result is None:
            return None
        result = self._lint_runner.run_incremental(
            new_snapshot, line_diff, self._lint_result
        )
        if self.lint_mode == "enforce":
            # Refuse only *new* errors, so a change that fixes (or merely
            # does not worsen) an already-broken network still verifies.
            before = {str(diag) for diag in self._lint_result.errors()}
            if any(str(diag) not in before for diag in result.errors()):
                raise LintGateError(result)
        self._lint_result = result
        return result

    # -- parallel pool lifecycle ---------------------------------------------------

    def set_workers(
        self, workers: int, parallel_backend: Optional[str] = None
    ) -> None:
        """Re-target the verifier at a different pool size at runtime
        (``--workers`` over a restored checkpoint).  ``workers=1`` drops
        back to the serial path."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        backend = parallel_backend or self._options.get(
            "parallel_backend", "auto"
        )
        self._options["workers"] = workers
        self._options["parallel_backend"] = backend
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if workers > 1:
            self._executor = ParallelExecutor(
                self.model, workers, backend=backend
            )
            self._executor.start()

    def close(self) -> None:
        """Release the worker pool (a no-op for serial verifiers).  Safe
        to call repeatedly; the verifier stays usable — a later parallel
        verification respawns and reseeds the pool."""
        if self._executor is not None:
            self._executor.shutdown()

    def __enter__(self) -> "RealConfig":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- conveniences ------------------------------------------------------------------

    def add_policy(self, policy: Policy) -> PolicyStatus:
        status = self.checker.add_policy(policy)
        if self._executor is not None:
            # Policy match boxes reshape the EC partition outside any
            # batch round — the replicas can only catch up by reseeding.
            self._executor.invalidate()
        return status

    def remove_policy(self, name: str) -> None:
        self.checker.remove_policy(name)
        if self._executor is not None:
            self._executor.invalidate()

    def policy_statuses(self) -> List[PolicyStatus]:
        return self.checker.statuses()

    def violated_policies(self) -> List[PolicyStatus]:
        return [status for status in self.checker.statuses() if not status.holds]

    def explain(self, policy_name: str):
        """Evidence traces for a policy's current verdict (see
        :meth:`repro.policy.checker.IncrementalChecker.explain`)."""
        return self.checker.explain(policy_name)
