"""Result types of the RealConfig pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config.diff import LineDiff
from repro.dataplane.batch import BatchResult
from repro.dataplane.rule import RuleUpdate
from repro.ddlog.engine import EpochStats
from repro.lint.framework import LintResult
from repro.policy.checker import CheckReport
from repro.policy.spec import PolicyStatus


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage (paper Figure 1's three
    components, plus the up-front configuration diff and the pre-flight
    lint gate)."""

    config_diff: float = 0.0
    generation: float = 0.0
    model_update: float = 0.0
    policy_check: float = 0.0
    #: Pre-flight lint gate (0.0 when the gate is off).  Kept last so
    #: positional construction of the original four stages still works.
    lint: float = 0.0

    @property
    def total(self) -> float:
        """Sum of every stage, so callers never hand-sum the fields."""
        return (
            self.config_diff
            + self.lint
            + self.generation
            + self.model_update
            + self.policy_check
        )

    def __str__(self) -> str:
        parts = [f"diff {self.config_diff * 1000:.1f} ms"]
        if self.lint:
            parts.append(f"lint {self.lint * 1000:.1f} ms")
        parts.extend(
            [
                f"generate {self.generation * 1000:.1f} ms",
                f"model {self.model_update * 1000:.1f} ms",
                f"check {self.policy_check * 1000:.1f} ms",
                f"total {self.total * 1000:.1f} ms",
            ]
        )
        return " | ".join(parts)


@dataclass
class VerificationDelta:
    """Everything one verified configuration change produced."""

    description: str
    line_diff: Optional[LineDiff]
    rule_updates: List[RuleUpdate]
    batch: Optional[BatchResult]
    report: CheckReport
    timings: StageTimings = field(default_factory=StageTimings)
    #: Static-analysis result of the pre-flight lint gate (``None`` when the
    #: verifier runs with ``lint_mode="off"``).
    lint: Optional[LintResult] = None
    #: Work counters of the differential engine epoch that generated this
    #: delta's rule updates (``None`` when no epoch ran).
    engine: Optional[EpochStats] = None

    @property
    def newly_violated(self) -> List[PolicyStatus]:
        return self.report.newly_violated

    @property
    def newly_satisfied(self) -> List[PolicyStatus]:
        return self.report.newly_satisfied

    @property
    def ok(self) -> bool:
        """No policy became violated."""
        return not self.report.newly_violated

    def summary(self) -> str:
        lines = [f"change: {self.description}"]
        if self.line_diff is not None:
            lines.append(f"config: {self.line_diff.summary()}")
        inserts = sum(1 for u in self.rule_updates if u.is_insert())
        deletes = len(self.rule_updates) - inserts
        lines.append(f"data plane: +{inserts}/-{deletes} rules")
        if self.batch is not None:
            lines.append(f"model: {self.batch.num_moves} EC moves")
        if self.lint is not None:
            lines.append(self.lint.summary())
        lines.append(f"check: {self.report.summary()}")
        lines.append(f"time: {self.timings}")
        return "\n".join(lines)
