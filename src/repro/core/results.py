"""Result types of the RealConfig pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config.diff import LineDiff
from repro.dataplane.batch import BatchResult
from repro.dataplane.rule import RuleUpdate
from repro.lint.framework import LintResult
from repro.policy.checker import CheckReport
from repro.policy.spec import PolicyStatus


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage (paper Figure 1's three
    components, plus the up-front configuration diff)."""

    config_diff: float = 0.0
    generation: float = 0.0
    model_update: float = 0.0
    policy_check: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.config_diff
            + self.generation
            + self.model_update
            + self.policy_check
        )

    def __str__(self) -> str:
        return (
            f"diff {self.config_diff * 1000:.1f} ms | "
            f"generate {self.generation * 1000:.1f} ms | "
            f"model {self.model_update * 1000:.1f} ms | "
            f"check {self.policy_check * 1000:.1f} ms"
        )


@dataclass
class VerificationDelta:
    """Everything one verified configuration change produced."""

    description: str
    line_diff: Optional[LineDiff]
    rule_updates: List[RuleUpdate]
    batch: Optional[BatchResult]
    report: CheckReport
    timings: StageTimings = field(default_factory=StageTimings)
    #: Static-analysis result of the pre-flight lint gate (``None`` when the
    #: verifier runs with ``lint_mode="off"``).
    lint: Optional[LintResult] = None

    @property
    def newly_violated(self) -> List[PolicyStatus]:
        return self.report.newly_violated

    @property
    def newly_satisfied(self) -> List[PolicyStatus]:
        return self.report.newly_satisfied

    @property
    def ok(self) -> bool:
        """No policy became violated."""
        return not self.report.newly_violated

    def summary(self) -> str:
        lines = [f"change: {self.description}"]
        if self.line_diff is not None:
            lines.append(f"config: {self.line_diff.summary()}")
        inserts = sum(1 for u in self.rule_updates if u.is_insert())
        deletes = len(self.rule_updates) - inserts
        lines.append(f"data plane: +{inserts}/-{deletes} rules")
        if self.batch is not None:
            lines.append(f"model: {self.batch.num_moves} EC moves")
        if self.lint is not None:
            lines.append(self.lint.summary())
        lines.append(f"check: {self.report.summary()}")
        lines.append(f"time: {self.timings}")
        return "\n".join(lines)
