"""APKeep-style incremental data plane model."""

from repro.dataplane.ec import ECManager, EcError, EcId, EcMerge, EcSplit
from repro.dataplane.ports import (
    ACCEPT_PORT,
    DROP_PORT,
    Port,
    PortMap,
    forward_port,
    is_accept,
    is_drop,
    port_interfaces,
)
from repro.dataplane.rule import (
    FilterRule,
    ForwardingRule,
    Rule,
    RuleUpdate,
    updates_from_fib,
)
from repro.dataplane.model import (
    MODES,
    EcMove,
    FilterChange,
    ModelError,
    NetworkModel,
)
from repro.dataplane.batch import (
    ORDERS,
    BatchResult,
    BatchUpdater,
    OrderError,
    order_updates,
)

__all__ = [
    "ECManager",
    "EcError",
    "EcId",
    "EcMerge",
    "EcSplit",
    "ACCEPT_PORT",
    "DROP_PORT",
    "Port",
    "PortMap",
    "forward_port",
    "is_accept",
    "is_drop",
    "port_interfaces",
    "FilterRule",
    "ForwardingRule",
    "Rule",
    "RuleUpdate",
    "updates_from_fib",
    "MODES",
    "EcMove",
    "FilterChange",
    "ModelError",
    "NetworkModel",
    "ORDERS",
    "BatchResult",
    "BatchUpdater",
    "OrderError",
    "order_updates",
]
