"""Batch-mode model updates.

The paper extends APKeep "to work in batch mode: given a batch of rule
updates, RealConfig determines an order of rule updates, and invokes the
model update algorithm of APKeep for each rule update according to this
order" (§4.2) — and Table 3 shows the order matters a lot:

- *insertion-first* (``+,-``): new next hops land before old ones are
  removed, so each EC moves directly from its old port to its new port;
- *deletion-first* (``-,+``): ECs are first parked on the drop port (their
  packets would be dropped after the deletion), then moved to the new port
  — roughly twice the EC moves and twice the update time.

We also implement *grouped* ordering — inserts before deletes within each
(device, prefix) — as the "optimal scheduling of model updates" the paper
leaves as future work (the ablation benchmark compares all three).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dataplane.ec import EcId
from repro.dataplane.model import EcMove, FilterChange, NetworkModel
from repro.dataplane.ports import Port
from repro.dataplane.rule import FilterRule, ForwardingRule, RuleUpdate
from repro.resilience.faults import fault_point
from repro.telemetry import get_metrics, names, span

#: The paper's two orders plus our scheduling ablation.
ORDERS = ("insertion-first", "deletion-first", "grouped")


class OrderError(ValueError):
    """Raised for unknown update orders."""


@dataclass
class BatchResult:
    """What one batch of rule updates did to the model."""

    order: str
    num_inserts: int = 0
    num_deletes: int = 0
    moves: List[EcMove] = field(default_factory=list)
    filter_changes: List[FilterChange] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: EC lifecycle churn during this batch (from the ECManager's counters).
    ec_splits: int = 0
    ec_merges: int = 0

    @property
    def num_moves(self) -> int:
        """Total EC port transitions, including transient ones — the paper's
        '#ECs' column (insertion-first ~n, deletion-first ~2n)."""
        return len(self.moves)

    @property
    def ports_touched(self) -> int:
        """Distinct (device, port) endpoints a move departed or arrived at."""
        endpoints = set()
        for move in self.moves:
            endpoints.add((move.device, move.old_port))
            endpoints.add((move.device, move.new_port))
        return len(endpoints)

    def net_moves(self, model: NetworkModel) -> Dict[Tuple[str, EcId], Tuple[Port, Port]]:
        """Per (device, EC): (port before batch, port after batch), only
        where they differ and the EC still exists.  This is what the policy
        checker re-checks."""
        net: Dict[Tuple[str, EcId], Tuple[Port, Port]] = {}
        for move in self.moves:
            key = (move.device, move.ec)
            if key in net:
                net[key] = (net[key][0], move.new_port)
            else:
                net[key] = (move.old_port, move.new_port)
        return {
            key: (old, new)
            for key, (old, new) in net.items()
            if old != new and model.ecs.exists(key[1])
        }

    def affected_ec_ids(self, model: NetworkModel) -> List[EcId]:
        ids = {ec for (_, ec) in self.net_moves(model)}
        ids.update(
            change.ec
            for change in self.filter_changes
            if model.ecs.exists(change.ec)
        )
        return sorted(ids)

    def summary(self) -> str:
        return (
            f"[{self.order}] +{self.num_inserts}/-{self.num_deletes} rules, "
            f"{self.num_moves} EC moves, {len(self.filter_changes)} filter "
            f"changes, {self.elapsed_seconds * 1000:.1f} ms"
        )


def order_updates(updates: List[RuleUpdate], order: str) -> List[RuleUpdate]:
    """Arrange a batch according to the chosen strategy (stable within
    groups, so results are deterministic)."""
    if order == "insertion-first":
        return [u for u in updates if u.is_insert()] + [
            u for u in updates if not u.is_insert()
        ]
    if order == "deletion-first":
        return [u for u in updates if not u.is_insert()] + [
            u for u in updates if u.is_insert()
        ]
    if order == "grouped":

        def key(update: RuleUpdate) -> Tuple:
            rule = update.rule
            if isinstance(rule, ForwardingRule):
                where: Tuple = (rule.node, 0, rule.prefix)
            else:
                assert isinstance(rule, FilterRule)
                where = (rule.node, 1, rule.interface, rule.direction, rule.seq)
            return (where, 0 if update.is_insert() else 1)

        return sorted(updates, key=key)
    raise OrderError(f"unknown update order {order!r} (expected one of {ORDERS})")


def record_batch_metrics(model: NetworkModel, result: BatchResult) -> None:
    """Record one batch's model-update metrics.  Shared by the serial
    :class:`BatchUpdater` and the parallel executor, which builds its
    :class:`BatchResult` from merged shard output."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    metrics.counter(names.MODEL_RULES_INSERTED).inc(result.num_inserts)
    metrics.counter(names.MODEL_RULES_DELETED).inc(result.num_deletes)
    metrics.counter(names.MODEL_EC_MOVES).inc(result.num_moves)
    metrics.counter(names.MODEL_EC_SPLITS).inc(result.ec_splits)
    metrics.counter(names.MODEL_EC_MERGES).inc(result.ec_merges)
    metrics.counter(names.MODEL_ECS_AFFECTED).inc(
        len(result.affected_ec_ids(model))
    )
    metrics.counter(names.MODEL_PORTS_TOUCHED).inc(result.ports_touched)
    metrics.gauge(names.MODEL_ECS).set(model.num_ecs())


class BatchUpdater:
    """Applies rule-update batches to a :class:`NetworkModel`."""

    def __init__(self, model: NetworkModel, order: str = "insertion-first") -> None:
        if order not in ORDERS:
            raise OrderError(f"unknown update order {order!r}")
        self.model = model
        self.order = order

    def apply(self, updates: List[RuleUpdate]) -> BatchResult:
        result = BatchResult(order=self.order)
        with span(names.SPAN_MODEL_UPDATE, order=self.order) as sp:
            started = time.perf_counter()
            splits_before = self.model.ecs.splits
            merges_before = self.model.ecs.merges
            if self.order == "grouped":
                self._apply_grouped(list(updates), result)
            else:
                for update in order_updates(list(updates), self.order):
                    self._apply_one(update, result)
            result.ec_splits = self.model.ecs.splits - splits_before
            result.ec_merges = self.model.ecs.merges - merges_before
            result.elapsed_seconds = time.perf_counter() - started
            sp.set("rules_inserted", result.num_inserts)
            sp.set("rules_deleted", result.num_deletes)
            sp.set("ec_moves", result.num_moves)
            sp.set("ec_splits", result.ec_splits)
            sp.set("ec_merges", result.ec_merges)
            sp.set("ports_touched", result.ports_touched)
        record_batch_metrics(self.model, result)
        return result

    def _apply_one(self, update: RuleUpdate, result: BatchResult) -> None:
        fault_point("batch.apply", update)
        if update.is_insert():
            result.num_inserts += 1
        else:
            result.num_deletes += 1
        if isinstance(update.rule, ForwardingRule):
            result.moves.extend(self.model.apply_update(update))
        else:
            assert isinstance(update.rule, FilterRule)
            if update.is_insert():
                moves, changes = self.model.insert_filter(update.rule)
            else:
                moves, changes = self.model.delete_filter(update.rule)
            result.moves.extend(moves)
            result.filter_changes.extend(changes)

    def _apply_grouped(self, updates: List[RuleUpdate], result: BatchResult) -> None:
        """Same-prefix forwarding changes are applied atomically, so each
        affected EC moves at most once (old port directly to final port)."""
        groups: dict = {}
        filters: List[RuleUpdate] = []
        for update in updates:
            if isinstance(update.rule, ForwardingRule):
                key = (update.rule.node, update.rule.prefix)
                groups.setdefault(key, ([], []))
                if update.is_insert():
                    groups[key][0].append(update.rule.out_interface)
                    result.num_inserts += 1
                else:
                    groups[key][1].append(update.rule.out_interface)
                    result.num_deletes += 1
            else:
                filters.append(update)
        for (node, prefix) in sorted(groups, key=lambda k: (k[0], k[1])):
            inserts, deletes = groups[(node, prefix)]
            result.moves.extend(
                self.model.modify_forwarding(node, prefix, inserts, deletes)
            )
        for update in order_updates(filters, "grouped"):
            self._apply_one(update, result)
