"""The equivalence class manager.

APKeep's core data structure: a partition of the header space into the
*minimal* set of equivalence classes (ECs) distinguishable by the match
conditions currently present in the network.  Invariant: every EC is either
contained in or disjoint from every registered match box (ECs are *atoms*
of the registered predicates).

- Registering a match box splits every partially-overlapping EC in two; the
  new child inherits the parent's containment set (plus the new box), so no
  geometry is recomputed.
- Unregistering a box (its last referencing rule was deleted) removes it
  from all containment sets and *merges* ECs whose containment sets become
  identical — such ECs match exactly the same rules everywhere, so merging
  preserves behaviour and restores minimality.

Listeners (the device port maps and the policy checker) are notified of
splits and merges so their per-EC state stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Set

from repro.net.headerspace import Header, HeaderBox, Predicate

EcId = int


class EcError(ValueError):
    """Raised for inconsistent EC-manager operations."""


@dataclass(frozen=True)
class EcSplit:
    """EC ``parent`` was split; ``child`` is a fresh EC carved out of it.
    At the instant of the split both behave identically everywhere."""

    parent: EcId
    child: EcId


@dataclass(frozen=True)
class EcMerge:
    """EC ``loser`` was absorbed into ``winner`` (identical behaviour)."""

    winner: EcId
    loser: EcId


EcEvent = object  # EcSplit | EcMerge
Listener = Callable[[EcEvent], None]


class ECManager:
    """Maintains the minimal EC partition plus box containment indexes."""

    def __init__(self, merge_on_unregister: bool = True) -> None:
        self.merge_on_unregister = merge_on_unregister
        self._next_id: EcId = 1
        self._predicates: Dict[EcId, Predicate] = {0: Predicate.everything()}
        #: box -> reference count
        self._refcounts: Dict[HeaderBox, int] = {}
        #: box -> ECs contained in it
        self._members: Dict[HeaderBox, Set[EcId]] = {}
        #: EC -> boxes containing it (its atom signature)
        self._containers: Dict[EcId, Set[HeaderBox]] = {0: set()}
        #: atom signature -> ECs with that signature
        self._by_signature: Dict[FrozenSet[HeaderBox], Set[EcId]] = {
            frozenset(): {0}
        }
        self._listeners: List[Listener] = []
        self.splits = 0
        self.merges = 0

    # -- introspection --------------------------------------------------------

    def ec_ids(self) -> List[EcId]:
        return sorted(self._predicates)

    def num_ecs(self) -> int:
        return len(self._predicates)

    def exists(self, ec: EcId) -> bool:
        """Whether the EC is still alive (splits keep ids; merges drop the
        loser's)."""
        return ec in self._predicates

    def predicate(self, ec: EcId) -> Predicate:
        try:
            return self._predicates[ec]
        except KeyError:
            raise EcError(f"unknown EC {ec}") from None

    def classify(self, header: Header) -> EcId:
        """The EC containing a concrete header."""
        for ec, predicate in self._predicates.items():
            if predicate.contains(header):
                return ec
        raise EcError(f"header {header} not covered by any EC (broken partition)")

    def ecs_in(self, box: HeaderBox) -> Set[EcId]:
        """ECs contained in a *registered* box."""
        if box not in self._members:
            raise EcError(f"box not registered: {box}")
        return set(self._members[box])

    def containers_of(self, ec: EcId) -> Set[HeaderBox]:
        return set(self._containers[ec])

    def contains(self, ec: EcId, box: HeaderBox) -> bool:
        """Whether a registered box contains the EC (index lookup)."""
        return box in self._containers[ec]

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        """Detach a listener added with :meth:`add_listener` (used by the
        staged batch replay, whose split-propagation listener lives only
        for the duration of one batch)."""
        self._listeners.remove(listener)

    def _notify(self, event: EcEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # -- registration ------------------------------------------------------------

    def register(self, box: HeaderBox) -> Set[EcId]:
        """Add one reference to ``box``; returns the ECs contained in it.

        First registration of a box splits every EC that partially overlaps
        it, preserving the atom invariant.
        """
        count = self._refcounts.get(box, 0)
        self._refcounts[box] = count + 1
        if count:
            return set(self._members[box])

        members: Set[EcId] = set()
        for ec in list(self._predicates):
            predicate = self._predicates[ec]
            inside = predicate.intersect_box(box)
            if inside.is_empty():
                continue
            outside = predicate.subtract_box(box)
            if outside.is_empty():
                members.add(ec)  # fully contained
                continue
            child = self._split(ec, inside, outside)
            members.add(child)
        self._members[box] = set(members)
        for ec in members:
            self._set_signature(ec, self._containers[ec] | {box})
        return set(members)

    def _split(self, parent: EcId, inside: Predicate, outside: Predicate) -> EcId:
        child = self._next_id
        self._next_id += 1
        self.splits += 1
        self._predicates[parent] = outside
        self._predicates[child] = inside
        # The child is an atom with the parent's signature (the new box is
        # added by the caller); register it under that signature first.
        parent_containers = set(self._containers[parent])
        self._containers[child] = set(parent_containers)
        self._by_signature.setdefault(frozenset(parent_containers), set()).add(child)
        for container in parent_containers:
            self._members[container].add(child)
        self._notify(EcSplit(parent, child))
        return child

    def _set_signature(self, ec: EcId, new_containers: Set[HeaderBox]) -> None:
        old_key = frozenset(self._containers[ec])
        new_key = frozenset(new_containers)
        if old_key == new_key:
            return
        bucket = self._by_signature.get(old_key)
        if bucket is not None:
            bucket.discard(ec)
            if not bucket:
                del self._by_signature[old_key]
        self._containers[ec] = set(new_containers)
        self._by_signature.setdefault(new_key, set()).add(ec)

    # -- unregistration -------------------------------------------------------------

    def unregister(self, box: HeaderBox) -> None:
        """Drop one reference; on the last one, forget the box and merge ECs
        whose atom signatures become identical."""
        count = self._refcounts.get(box)
        if not count:
            raise EcError(f"unregistering a box with no references: {box}")
        if count > 1:
            self._refcounts[box] = count - 1
            return
        del self._refcounts[box]
        members = self._members.pop(box)
        touched_keys: Set[FrozenSet[HeaderBox]] = set()
        for ec in members:
            self._set_signature(ec, self._containers[ec] - {box})
            touched_keys.add(frozenset(self._containers[ec]))
        if self.merge_on_unregister:
            for key in touched_keys:
                self._merge_signature_bucket(key)

    def _merge_signature_bucket(self, key: FrozenSet[HeaderBox]) -> None:
        bucket = self._by_signature.get(key)
        if bucket is None or len(bucket) < 2:
            return
        ordered = sorted(bucket)
        winner = ordered[0]
        for loser in ordered[1:]:
            self._absorb(winner, loser)

    def _absorb(self, winner: EcId, loser: EcId) -> None:
        self.merges += 1
        self._predicates[winner] = self._predicates[winner].union_disjoint(
            self._predicates[loser]
        )
        del self._predicates[loser]
        loser_key = frozenset(self._containers[loser])
        bucket = self._by_signature.get(loser_key)
        if bucket is not None:
            bucket.discard(loser)
            if not bucket:
                del self._by_signature[loser_key]
        for container in self._containers.pop(loser):
            self._members[container].discard(loser)
        self._notify(EcMerge(winner, loser))

    # -- state capture / restore ------------------------------------------------

    def capture_state(self) -> Dict:
        """Picklable snapshot of the partition (predicates are immutable,
        the index sets are copied).  Listeners are wiring, not state —
        they survive a restore untouched, and no events fire during one."""
        return {
            "next_id": self._next_id,
            "predicates": dict(self._predicates),
            "refcounts": dict(self._refcounts),
            "members": {box: set(ecs) for box, ecs in self._members.items()},
            "containers": {
                ec: set(boxes) for ec, boxes in self._containers.items()
            },
            "by_signature": {
                key: set(ecs) for key, ecs in self._by_signature.items()
            },
            "splits": self.splits,
            "merges": self.merges,
        }

    def restore_state(self, state: Dict) -> None:
        self._next_id = state["next_id"]
        self._predicates = dict(state["predicates"])
        self._refcounts = dict(state["refcounts"])
        self._members = {
            box: set(ecs) for box, ecs in state["members"].items()
        }
        self._containers = {
            ec: set(boxes) for ec, boxes in state["containers"].items()
        }
        self._by_signature = {
            key: set(ecs) for key, ecs in state["by_signature"].items()
        }
        self.splits = state["splits"]
        self.merges = state["merges"]

    # -- invariants (used by tests) ------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the partition and atomicity invariants (O(n^2), tests only)."""
        ecs = list(self._predicates.items())
        total = sum(predicate.volume() for _, predicate in ecs)
        if total != Predicate.everything().volume():
            raise EcError(f"partition does not cover the space: volume {total}")
        for i, (_, a) in enumerate(ecs):
            for _, b in ecs[i + 1 :]:
                if a.overlaps(b):
                    raise EcError("ECs overlap")
        for box, members in self._members.items():
            for ec, predicate in ecs:
                inside = predicate.is_subset_of_box(box)
                if inside != (ec in members):
                    raise EcError(
                        f"containment index wrong for EC {ec} and box {box}"
                    )
                if not inside and predicate.overlaps_box(box):
                    raise EcError(f"EC {ec} is not an atom of box {box}")
