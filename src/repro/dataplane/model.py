"""The incremental data plane model (APKeep's update algorithm).

:class:`NetworkModel` maintains, per device, the installed forwarding rules
(an LPM table) and ACL bindings, plus the EC <-> port maps.  Applying one
rule update:

1. register (or look up) the rule's match box with the EC manager — this
   splits any partially-overlapping ECs, keeping the partition atomic;
2. mutate the device's rule table;
3. for each EC inside the match box, recompute the effective action
   (longest matching prefix, ECMP union at that length) and *move* the EC
   between ports when it changed.

Each move is reported as an :class:`EcMove` — the unit Table 3 counts — and
is what the incremental policy checker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.dataplane.ec import ECManager, EcId, EcMerge, EcSplit
from repro.dataplane.ports import (
    DROP_PORT,
    Port,
    PortMap,
    forward_port,
    port_interfaces,
)
from repro.dataplane.rule import FilterRule, ForwardingRule, RuleUpdate
from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.net.topology import Topology


class ModelError(ValueError):
    """Raised for inconsistent model operations (e.g. deleting a rule that
    was never installed)."""


@dataclass(frozen=True)
class EcMove:
    """One EC changed forwarding behaviour on one device."""

    device: str
    ec: EcId
    old_port: Port
    new_port: Port

    def __str__(self) -> str:
        return f"{self.device}: EC{self.ec} {self.old_port} -> {self.new_port}"


@dataclass(frozen=True)
class FilterChange:
    """One EC changed filtering behaviour at one interface/direction."""

    device: str
    interface: str
    direction: str
    ec: EcId
    old_permitted: bool
    new_permitted: bool


@dataclass
class _DeviceState:
    #: prefix -> (match box, interface -> insertion sequence number)
    fib: Dict[Prefix, Tuple[HeaderBox, Dict[str, int]]] = field(default_factory=dict)
    #: inverse index: match box -> prefix (bijective: the box of a
    #: forwarding rule is determined by its prefix)
    by_box: Dict[HeaderBox, Prefix] = field(default_factory=dict)
    #: (interface, direction) -> seq -> filter rule
    acls: Dict[Tuple[str, str], Dict[int, FilterRule]] = field(default_factory=dict)
    ports: PortMap = field(default_factory=PortMap)
    next_seq: int = 0


#: Forwarding semantics for equal-length prefixes:
#: - "ecmp": the EC's port is the *union* of all max-length next hops —
#:   semantically faithful multipath forwarding (the default; the policy
#:   checker explores every branch);
#: - "priority": strict rule priority, newest rule wins — APKeep's table
#:   semantics, which reproduce the paper's Table 3 insertion-first vs
#:   deletion-first asymmetry exactly.
MODES = ("ecmp", "priority")


class NetworkModel:
    """EC-based model of the whole network's data plane."""

    def __init__(
        self,
        topology: Topology,
        merge_on_unregister: bool = True,
        mode: str = "ecmp",
    ) -> None:
        if mode not in MODES:
            raise ModelError(f"unknown forwarding mode {mode!r} (one of {MODES})")
        self.topology = topology
        self.mode = mode
        self.ecs = ECManager(merge_on_unregister=merge_on_unregister)
        self._devices: Dict[str, _DeviceState] = {
            node.name: _DeviceState() for node in topology.nodes()
        }
        # Link resolution cache: (node, iface) -> (peer node, peer iface).
        # next_devices() is the hottest loop of per-EC path analysis.
        self._peers: Dict[Tuple[str, str], Tuple[str, str]] = {}
        for link in topology.links():
            a, b = link.endpoints()
            self._peers[(a.node, a.name)] = (b.node, b.name)
            self._peers[(b.node, b.name)] = (a.node, a.name)
        self.ecs.add_listener(self._on_ec_event)

    # -- EC bookkeeping ----------------------------------------------------------

    def _on_ec_event(self, event) -> None:
        if isinstance(event, EcSplit):
            for state in self._devices.values():
                state.ports.copy_membership(event.parent, event.child)
        elif isinstance(event, EcMerge):
            for state in self._devices.values():
                state.ports.drop_ec(event.loser)

    def device(self, node: str) -> _DeviceState:
        try:
            return self._devices[node]
        except KeyError:
            raise ModelError(f"unknown device {node!r}") from None

    def device_names(self) -> List[str]:
        return sorted(self._devices)

    def port_of(self, node: str, ec: EcId) -> Port:
        return self.device(node).ports.get(ec)

    def num_rules(self) -> int:
        """Installed forwarding rules, counted per (prefix, interface)."""
        return sum(
            len(ifaces)
            for state in self._devices.values()
            for _, ifaces in state.fib.values()
        )

    def num_ecs(self) -> int:
        return self.ecs.num_ecs()

    # -- state capture / restore ----------------------------------------------------

    def capture_state(self) -> Dict:
        """Picklable snapshot of the model: EC partition plus per-device
        tables.  Every dict/set level that the update algorithms mutate in
        place is copied; rules, boxes, and ports are immutable values."""
        return {
            "ecs": self.ecs.capture_state(),
            "devices": {
                name: {
                    "fib": {
                        prefix: (box, dict(ifaces))
                        for prefix, (box, ifaces) in state.fib.items()
                    },
                    "by_box": dict(state.by_box),
                    "acls": {
                        key: dict(table)
                        for key, table in state.acls.items()
                    },
                    "ports": state.ports.capture_state(),
                    "next_seq": state.next_seq,
                }
                for name, state in self._devices.items()
            },
        }

    def restore_state(self, state: Dict) -> None:
        if set(state["devices"]) != set(self._devices):
            raise ModelError(
                "captured state covers a different device set "
                "(the topology is fixed for a model's lifetime)"
            )
        self.ecs.restore_state(state["ecs"])
        for name, payload in state["devices"].items():
            device = self._devices[name]
            device.fib = {
                prefix: (box, dict(ifaces))
                for prefix, (box, ifaces) in payload["fib"].items()
            }
            device.by_box = dict(payload["by_box"])
            device.acls = {
                key: dict(table) for key, table in payload["acls"].items()
            }
            device.ports.restore_state(payload["ports"])
            device.next_seq = payload["next_seq"]

    # -- single-rule updates (APKeep's algorithm) ---------------------------------

    def apply_update(self, update: RuleUpdate) -> List[EcMove]:
        if isinstance(update.rule, ForwardingRule):
            if update.is_insert():
                return self.insert_forwarding(update.rule)
            return self.delete_forwarding(update.rule)
        if isinstance(update.rule, FilterRule):
            if update.is_insert():
                moves, _ = self.insert_filter(update.rule)
            else:
                moves, _ = self.delete_filter(update.rule)
            return moves
        raise ModelError(f"unknown rule type: {update.rule!r}")

    def insert_forwarding(self, rule: ForwardingRule) -> List[EcMove]:
        affected = self.stage_insert_forwarding(rule)
        return self._reclassify(rule.node, affected)

    def stage_insert_forwarding(self, rule: ForwardingRule) -> Set[EcId]:
        """Phase A of :meth:`insert_forwarding`: register the match box and
        edit the FIB table, returning the affected ECs *without*
        reclassifying them.  The EC-manager operation sequence (and every
        error path) is identical to the unstaged method; the staged batch
        replay (:mod:`repro.parallel.plan`) defers port recomputation to a
        single phase-B pass over the final tables."""
        state = self.device(rule.node)
        box = rule.match_box()
        affected = self.ecs.register(box)
        entry = state.fib.get(rule.prefix)
        state.next_seq += 1
        if entry is None:
            state.fib[rule.prefix] = (box, {rule.out_interface: state.next_seq})
            state.by_box[box] = rule.prefix
        else:
            if rule.out_interface in entry[1]:
                self.ecs.unregister(box)
                raise ModelError(f"duplicate forwarding rule: {rule}")
            entry[1][rule.out_interface] = state.next_seq
        return affected

    def delete_forwarding(self, rule: ForwardingRule) -> List[EcMove]:
        box, affected = self.stage_delete_forwarding(rule)
        moves = self._reclassify(rule.node, affected)
        self.ecs.unregister(box)  # may trigger merges
        return moves

    def stage_delete_forwarding(
        self, rule: ForwardingRule
    ) -> Tuple[HeaderBox, Set[EcId]]:
        """Phase A of :meth:`delete_forwarding`: edit the FIB table and
        return ``(match box, affected ECs)``.  The caller must
        ``ecs.unregister`` the box after consuming the affected set — the
        box keeps the partition stable while ports are recomputed."""
        state = self.device(rule.node)
        entry = state.fib.get(rule.prefix)
        if entry is None or rule.out_interface not in entry[1]:
            raise ModelError(f"deleting uninstalled forwarding rule: {rule}")
        box, interfaces = entry
        del interfaces[rule.out_interface]
        if not interfaces:
            del state.fib[rule.prefix]
            del state.by_box[box]
        return box, self.ecs.ecs_in(box)

    def modify_forwarding(
        self,
        node: str,
        prefix: Prefix,
        inserts: List[str],
        deletes: List[str],
    ) -> List[EcMove]:
        """Apply several same-prefix rule changes atomically: the FIB entry
        is updated for all of them, then the affected ECs are reclassified
        once — each EC moves directly from its old port to its final port
        (the 'grouped' batch order; the paper's optimal-scheduling future
        work)."""
        box, affected, pending = self.stage_modify_forwarding(
            node, prefix, inserts, deletes
        )
        moves = self._reclassify(node, affected)
        for _ in range(pending):
            self.ecs.unregister(box)
        return moves

    def stage_modify_forwarding(
        self,
        node: str,
        prefix: Prefix,
        inserts: List[str],
        deletes: List[str],
    ) -> Tuple[HeaderBox, Set[EcId], int]:
        """Phase A of :meth:`modify_forwarding`: returns ``(match box,
        affected ECs, pending unregisters)``.  The caller must unregister
        the box ``pending`` times after consuming the affected set."""
        state = self.device(node)
        box = HeaderBox.from_dst_prefix(prefix)
        for _ in inserts:
            self.ecs.register(box)
        entry = state.fib.get(prefix)
        if entry is None:
            if deletes:
                for _ in inserts:
                    self.ecs.unregister(box)
                raise ModelError(
                    f"deleting uninstalled forwarding rules: {node} {prefix}"
                )
            if inserts:
                entry = (box, {})
                state.fib[prefix] = entry
                state.by_box[box] = prefix
        if entry is not None:
            for iface in deletes:
                if iface not in entry[1]:
                    raise ModelError(
                        f"deleting uninstalled forwarding rule: "
                        f"{node} {prefix} -> {iface}"
                    )
                del entry[1][iface]
            for iface in inserts:
                if iface in entry[1]:
                    raise ModelError(
                        f"duplicate forwarding rule: {node} {prefix} -> {iface}"
                    )
                state.next_seq += 1
                entry[1][iface] = state.next_seq
            if not entry[1]:
                del state.fib[prefix]
                state.by_box.pop(box, None)
        affected = self.ecs.ecs_in(box) if inserts or deletes else set()
        return box, affected, len(deletes)

    def _reclassify(self, node: str, affected: Set[EcId]) -> List[EcMove]:
        state = self.device(node)
        moves: List[EcMove] = []
        for ec in affected:
            new_port = self._effective_port(state, ec)
            old_port = state.ports.move(ec, new_port)
            if old_port != new_port:
                moves.append(EcMove(node, ec, old_port, new_port))
        return moves

    def reclassify_net(self, node: str, affected: Iterable[EcId]) -> List[EcMove]:
        """Phase B of a staged batch: recompute the effective port of every
        affected EC that is still alive, against the *final* tables, in
        sorted order.  Emits only net moves (old port != final port); an
        EC's effective port is a function of the final FIB and containment
        index alone, so the result is independent of the order the batch's
        updates were staged in."""
        state = self.device(node)
        moves: List[EcMove] = []
        for ec in sorted(set(affected)):
            if not self.ecs.exists(ec):
                continue
            new_port = self._effective_port(state, ec)
            old_port = state.ports.move(ec, new_port)
            if old_port != new_port:
                moves.append(EcMove(node, ec, old_port, new_port))
        return moves

    def apply_moves(self, moves: Iterable[EcMove]) -> None:
        """Install externally computed net moves (e.g. another shard's
        phase-B output) into this model's port maps.  Idempotent: moves
        already applied locally are no-ops."""
        for move in moves:
            self.device(move.device).ports.move(move.ec, move.new_port)

    def _effective_port(self, state: _DeviceState, ec: EcId) -> Port:
        """Longest-prefix-match over the device's FIB.

        In "ecmp" mode equal-length matches form a multipath port; in
        "priority" mode the most recently installed rule at the longest
        length wins alone (APKeep's strict table priority).
        """
        # The EC manager's containment index narrows the candidates to the
        # boxes containing this EC (small), instead of scanning the whole
        # device FIB.
        best_len = -1
        interfaces: Dict[str, int] = {}
        for box in self.ecs.containers_of(ec):
            prefix = state.by_box.get(box)
            if prefix is None or prefix.length < best_len:
                continue
            ifaces = state.fib[prefix][1]
            if prefix.length > best_len:
                best_len = prefix.length
                interfaces = dict(ifaces)
            else:
                interfaces.update(ifaces)
        if best_len < 0:
            return DROP_PORT
        if self.mode == "priority":
            newest = max(interfaces.items(), key=lambda kv: kv[1])[0]
            return forward_port([newest])
        return forward_port(interfaces)

    # -- filter (ACL) updates -------------------------------------------------------

    def insert_filter(
        self, rule: FilterRule
    ) -> Tuple[List[EcMove], List[FilterChange]]:
        state = self.device(rule.node)
        table = state.acls.setdefault((rule.interface, rule.direction), {})
        if rule.seq in table:
            raise ModelError(f"duplicate filter rule: {rule}")
        # Register first so the EC partition reflects the new match and the
        # before/after decisions are keyed by stable EC ids.
        affected = self.ecs.register(rule.match)
        before = {ec: self._filter_decision(table, ec) for ec in affected}
        table[rule.seq] = rule
        return [], self._filter_diff(rule, table, before)

    def delete_filter(
        self, rule: FilterRule
    ) -> Tuple[List[EcMove], List[FilterChange]]:
        state = self.device(rule.node)
        table = state.acls.get((rule.interface, rule.direction), {})
        existing = table.get(rule.seq)
        if existing != rule:
            raise ModelError(f"deleting uninstalled filter rule: {rule}")
        # The rule's own registration keeps the match box alive while we
        # compare decisions; unregister (and possibly merge ECs) only after.
        affected = self.ecs.ecs_in(rule.match)
        before = {ec: self._filter_decision(table, ec) for ec in affected}
        del table[rule.seq]
        if not table:
            state.acls.pop((rule.interface, rule.direction), None)
        changes = self._filter_diff(rule, table, before)
        self.ecs.unregister(rule.match)
        return [], changes

    def _filter_diff(
        self,
        rule: FilterRule,
        table: Dict[int, FilterRule],
        before: Dict[EcId, bool],
    ) -> List[FilterChange]:
        changes: List[FilterChange] = []
        for ec, old in before.items():
            new = self._filter_decision(table, ec)
            if new != old:
                changes.append(
                    FilterChange(
                        rule.node, rule.interface, rule.direction, ec, old, new
                    )
                )
        return changes

    def _filter_decision(self, table: Dict[int, FilterRule], ec: EcId) -> bool:
        """First-match ACL semantics; a non-empty table ends in an implicit
        deny, an empty (or unbound) table permits everything."""
        for seq in sorted(table):
            entry = table[seq]
            if self.ecs.contains(ec, entry.match):
                return entry.action == "permit"
        return not table

    # -- queries used by the policy checker ------------------------------------------

    def filter_permits(
        self, node: str, interface: str, direction: str, ec: EcId
    ) -> bool:
        state = self.device(node)
        table = state.acls.get((interface, direction))
        if not table:
            return True
        return self._filter_decision(table, ec)

    def next_devices(self, node: str, ec: EcId) -> List[Tuple[str, str, str]]:
        """Where an EC goes from ``node``: [(out_iface, next device, in_iface)].

        Applies egress filtering on the way out and ingress filtering on the
        way in; a filtered or unconnected interface yields no hop.
        """
        hops: List[Tuple[str, str, str]] = []
        port = self.device(node).ports.get(ec)
        for iface in port_interfaces(port):
            if not self.filter_permits(node, iface, "out", ec):
                continue
            peer = self._peers.get((node, iface))
            if peer is None:
                continue
            if not self.filter_permits(peer[0], peer[1], "in", ec):
                continue
            hops.append((iface, peer[0], peer[1]))
        return hops
