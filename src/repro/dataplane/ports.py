"""Logical ports.

APKeep "models the forwarding behaviors of ECs by maintaining a set of
logical ports (encoding a specific forwarding action) for each device, and a
map from each port to the set of ECs forwarded to this port" (paper §4.2).

A port is a hashable action label:

- ``("fwd", (iface, ...))`` — forward out the given interfaces (an ECMP
  group is a single port, so Table 3's EC "moves" are transitions between
  next-hop *sets*);
- ``("accept",)`` — deliver locally (the destination device);
- ``("drop",)`` — no matching forwarding rule (the blackhole port; also the
  intermediate parking spot of deletion-first batch updates).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.dataplane.ec import EcId
from repro.routing.types import ACCEPT

Port = Tuple

DROP_PORT: Port = ("drop",)
ACCEPT_PORT: Port = ("accept",)


def forward_port(interfaces: Iterable[str]) -> Port:
    """The port for an ECMP set of output interfaces."""
    ifaces = tuple(sorted(set(interfaces)))
    if not ifaces:
        return DROP_PORT
    if ACCEPT in ifaces:
        return ACCEPT_PORT
    return ("fwd", ifaces)


def port_interfaces(port: Port) -> Tuple[str, ...]:
    """Output interfaces of a port (empty for accept/drop)."""
    if port and port[0] == "fwd":
        return port[1]
    return ()


def is_drop(port: Port) -> bool:
    return port == DROP_PORT


def is_accept(port: Port) -> bool:
    return port == ACCEPT_PORT


class PortMap:
    """Bidirectional EC <-> port map of one device."""

    def __init__(self) -> None:
        self.port_of: Dict[EcId, Port] = {}
        self.ecs_of: Dict[Port, Set[EcId]] = {}

    def get(self, ec: EcId) -> Port:
        return self.port_of.get(ec, DROP_PORT)

    def move(self, ec: EcId, port: Port) -> Port:
        """Move an EC to ``port``; returns the previous port."""
        old = self.port_of.get(ec, DROP_PORT)
        if old == port:
            return old
        bucket = self.ecs_of.get(old)
        if bucket is not None:
            bucket.discard(ec)
            if not bucket:
                del self.ecs_of[old]
        if port == DROP_PORT:
            self.port_of.pop(ec, None)
        else:
            self.port_of[ec] = port
            self.ecs_of.setdefault(port, set()).add(ec)
        return old

    def copy_membership(self, parent: EcId, child: EcId) -> None:
        """An EC split: the child behaves exactly like the parent."""
        port = self.get(parent)
        if port != DROP_PORT:
            self.port_of[child] = port
            self.ecs_of.setdefault(port, set()).add(child)

    def drop_ec(self, ec: EcId) -> None:
        """An EC merge absorbed ``ec``; forget it."""
        port = self.port_of.pop(ec, None)
        if port is not None:
            bucket = self.ecs_of.get(port)
            if bucket is not None:
                bucket.discard(ec)
                if not bucket:
                    del self.ecs_of[port]

    def ports(self) -> Set[Port]:
        return set(self.ecs_of)

    def capture_state(self) -> Dict:
        return {
            "port_of": dict(self.port_of),
            "ecs_of": {port: set(ecs) for port, ecs in self.ecs_of.items()},
        }

    def restore_state(self, state: Dict) -> None:
        self.port_of = dict(state["port_of"])
        self.ecs_of = {
            port: set(ecs) for port, ecs in state["ecs_of"].items()
        }
