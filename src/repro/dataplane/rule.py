"""Data plane rule types.

The incremental data plane generator outputs *rule updates* — insertions and
deletions of forwarding and filtering rules (paper §4.2) — which the model
updater consumes in batch.

- :class:`ForwardingRule` — longest-prefix-match on the destination IP;
  equal prefixes with different output interfaces form an ECMP group.
- :class:`FilterRule` — one ACL entry bound to a device interface and
  direction, with a numbered priority (lower sequence wins) and an implicit
  deny at the end of each bound ACL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.net.addr import Prefix
from repro.net.headerspace import HeaderBox
from repro.routing.types import FibEntry


@dataclass(frozen=True, order=True)
class ForwardingRule:
    """Forward packets for ``prefix`` out of ``out_interface`` on ``node``.

    ``out_interface`` may be :data:`~repro.routing.types.ACCEPT` for local
    delivery.  Priority is the prefix length (longest prefix wins).
    """

    node: str
    prefix: Prefix
    out_interface: str

    @classmethod
    def from_fib_entry(cls, entry: FibEntry) -> "ForwardingRule":
        return cls(entry.node, entry.prefix, entry.out_interface)

    def match_box(self) -> HeaderBox:
        return HeaderBox.from_dst_prefix(self.prefix)

    def priority(self) -> int:
        return self.prefix.length

    def __str__(self) -> str:
        return f"fwd {self.node}: {self.prefix} -> {self.out_interface}"


@dataclass(frozen=True, order=True)
class FilterRule:
    """One ACL entry on ``(node, interface, direction)``.

    ``direction`` is ``"in"`` or ``"out"``; ``seq`` orders entries within
    the binding (lower wins); ``action`` is ``"permit"`` or ``"deny"``.
    """

    node: str
    interface: str
    direction: str
    seq: int
    action: str
    match: HeaderBox

    def __str__(self) -> str:
        return (
            f"acl {self.node}:{self.interface}/{self.direction} "
            f"#{self.seq} {self.action} {self.match}"
        )


Rule = Union[ForwardingRule, FilterRule]


@dataclass(frozen=True)
class RuleUpdate:
    """An insertion (+1) or deletion (-1) of one rule."""

    weight: int
    rule: Rule

    def is_insert(self) -> bool:
        return self.weight > 0

    def __str__(self) -> str:
        sign = "+" if self.weight > 0 else "-"
        return f"{sign} {self.rule}"


def updates_from_fib(
    inserted: List[FibEntry], deleted: List[FibEntry]
) -> List[RuleUpdate]:
    """Convert a control plane FIB delta into rule updates."""
    updates = [
        RuleUpdate(1, ForwardingRule.from_fib_entry(entry)) for entry in inserted
    ]
    updates.extend(
        RuleUpdate(-1, ForwardingRule.from_fib_entry(entry)) for entry in deleted
    )
    return updates
