"""Differential computation engine: weighted collections, incremental
operators, fixpoint scheduling, and a Datalog-flavoured DSL."""

from repro.ddlog.collection import Delta, History, Record
from repro.ddlog.convergence import (
    ConvergenceMonitor,
    NonConvergenceError,
    RecurringStateError,
)
from repro.ddlog.engine import Engine, EpochStats, GraphError
from repro.ddlog.operators import (
    Concat,
    Distinct,
    Filter,
    FlatMap,
    Input,
    Join,
    Map,
    Operator,
    Probe,
    Reduce,
)
from repro.ddlog.dsl import Atom, CompiledProgram, DslError, Program, Relation, Var, const

__all__ = [
    "Delta",
    "History",
    "Record",
    "ConvergenceMonitor",
    "NonConvergenceError",
    "RecurringStateError",
    "Engine",
    "EpochStats",
    "GraphError",
    "Concat",
    "Distinct",
    "Filter",
    "FlatMap",
    "Input",
    "Join",
    "Map",
    "Operator",
    "Probe",
    "Reduce",
    "Atom",
    "CompiledProgram",
    "DslError",
    "Program",
    "Relation",
    "Var",
    "const",
]
