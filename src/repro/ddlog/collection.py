"""Weighted collections and iteration-indexed histories.

The engine follows Differential Dataflow's data model (McSherry et al.,
CIDR '13), restricted to one loop nesting level:

- a *record* is any hashable value (we use tuples);
- a *delta* is a multiset of ``(record, weight)`` changes, where negative
  weights retract previous derivations;
- a *history* stores, per record, the weight diffs indexed by *iteration*
  (the loop timestamp).  "The collection as of iteration i" is the cumulative
  sum of diffs at iterations ``<= i``.

Consolidating every epoch's diffs into a single iteration-indexed history is
what makes later epochs (new configuration changes) incremental: an update
only produces *corrections* relative to the stored trace of the previous
fixpoint computation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Tuple

Record = Any
Weight = int


class Delta:
    """A multiset of weighted record changes (zero weights are elided)."""

    __slots__ = ("_weights",)

    def __init__(self, items: Iterable[Tuple[Record, Weight]] = ()) -> None:
        self._weights: Dict[Record, Weight] = {}
        for record, weight in items:
            self.add(record, weight)

    def add(self, record: Record, weight: Weight = 1) -> None:
        if weight == 0:
            return
        new_weight = self._weights.get(record, 0) + weight
        if new_weight:
            self._weights[record] = new_weight
        else:
            self._weights.pop(record, None)

    def merge(self, other: "Delta") -> None:
        for record, weight in other._weights.items():
            self.add(record, weight)

    def items(self) -> Iterator[Tuple[Record, Weight]]:
        return iter(self._weights.items())

    def records(self) -> Iterator[Record]:
        return iter(self._weights)

    def is_empty(self) -> bool:
        return not self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, record: Record) -> bool:
        return record in self._weights

    def weight(self, record: Record) -> Weight:
        return self._weights.get(record, 0)

    def negated(self) -> "Delta":
        out = Delta()
        for record, weight in self._weights.items():
            out._weights[record] = -weight
        return out

    def copy(self) -> "Delta":
        out = Delta()
        out._weights = dict(self._weights)
        return out

    def as_dict(self) -> Dict[Record, Weight]:
        """Plain-dict view of the weights (for state capture/serialization)."""
        return dict(self._weights)

    @classmethod
    def from_dict(cls, weights: Dict[Record, Weight]) -> "Delta":
        out = cls()
        out._weights = dict(weights)
        return out

    def signature(self) -> int:
        """An order-independent hash of the delta's contents (used by the
        recurring-state detector)."""
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{record!r}:{weight:+d}" for record, weight in sorted(
                self._weights.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"Delta({{{inner}}})"


#: One record's history: iteration -> accumulated weight diff at that
#: iteration.  Kept small (routing facts change at a handful of iterations).
RecordHistory = Dict[int, Weight]


class History:
    """Iteration-indexed weighted collection: record -> {iteration: diff}."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[Record, RecordHistory] = {}

    def add(self, record: Record, iteration: int, weight: Weight) -> None:
        if weight == 0:
            return
        hist = self._data.get(record)
        if hist is None:
            hist = {}
            self._data[record] = hist
        new_weight = hist.get(iteration, 0) + weight
        if new_weight:
            hist[iteration] = new_weight
        else:
            del hist[iteration]
            if not hist:
                del self._data[record]

    def cumulative(self, record: Record, iteration: int) -> Weight:
        """Total weight of ``record`` as of ``iteration`` (inclusive)."""
        hist = self._data.get(record)
        if hist is None:
            return 0
        return sum(w for it, w in hist.items() if it <= iteration)

    def final_weight(self, record: Record) -> Weight:
        hist = self._data.get(record)
        if hist is None:
            return 0
        return sum(hist.values())

    def diffs(self, record: Record) -> Iterator[Tuple[int, Weight]]:
        hist = self._data.get(record)
        if hist is None:
            return iter(())
        return iter(hist.items())

    def records(self) -> Iterator[Record]:
        return iter(self._data)

    def record_count(self) -> int:
        return len(self._data)

    def times(self) -> Iterator[int]:
        """All iterations at which any diff exists."""
        seen = set()
        for hist in self._data.values():
            seen.update(hist)
        return iter(seen)

    def final_collection(self) -> Delta:
        """The fully-accumulated multiset (sum over all iterations)."""
        out = Delta()
        for record, hist in self._data.items():
            out.add(record, sum(hist.values()))
        return out

    def as_of(self, iteration: int) -> Delta:
        """The accumulated multiset as of ``iteration``."""
        out = Delta()
        for record, hist in self._data.items():
            out.add(record, sum(w for it, w in hist.items() if it <= iteration))
        return out

    def compact(self) -> None:
        """Drop empty per-record histories (``add`` already elides zeros)."""
        empty = [record for record, hist in self._data.items() if not hist]
        for record in empty:
            del self._data[record]

    def snapshot_data(self) -> Dict[Record, RecordHistory]:
        """Deep-enough copy of the history (per-record dicts are mutated in
        place by ``add``; records themselves are immutable tuples)."""
        return {record: dict(hist) for record, hist in self._data.items()}

    def restore_data(self, data: Dict[Record, RecordHistory]) -> None:
        self._data = {record: dict(hist) for record, hist in data.items()}
