"""Fixpoint convergence monitoring.

The paper's §6 notes that Datalog evaluation of a control plane "may never
terminate ... e.g., when BGP is misconfigured and cannot converge", and that
detecting the *recurring state* — a state reached before during evaluation —
is the way to report such bugs without waiting for a timeout.  The paper
leaves this as future work; we implement it.

Two mechanisms, both raising :class:`NonConvergenceError`:

- a hard iteration cap (:attr:`ConvergenceMonitor.max_iterations`), and
- recurring-state detection: once evaluation has run suspiciously long
  (``suspect_after`` iterations), the signature of each iteration's pending
  delta set is remembered; a repeated non-empty signature means the
  evaluation is cycling through the same states (e.g. a BGP "bad gadget")
  and will never reach a fixpoint.
"""

from __future__ import annotations

from typing import Dict, Optional


class NonConvergenceError(RuntimeError):
    """The dataflow evaluation did not reach a fixpoint."""

    def __init__(self, message: str, iteration: int) -> None:
        super().__init__(message)
        self.iteration = iteration


class RecurringStateError(NonConvergenceError):
    """A previously seen evaluation state recurred: the control plane
    oscillates (e.g. BGP route update racing / no stable path assignment)."""

    def __init__(self, iteration: int, first_seen: int) -> None:
        super().__init__(
            f"recurring evaluation state at iteration {iteration} "
            f"(first seen at iteration {first_seen}): the control plane "
            f"does not converge",
            iteration,
        )
        self.first_seen = first_seen


class ConvergenceMonitor:
    """Watches the fixpoint loop for non-termination.

    ``observe`` is called once per iteration with an order-independent
    signature of that iteration's pending work.
    """

    def __init__(
        self, max_iterations: int = 100_000, suspect_after: int = 512
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.suspect_after = suspect_after
        self._seen: Dict[int, int] = {}

    def reset(self) -> None:
        self._seen.clear()

    def observe(self, iteration: int, signature: Optional[int]) -> None:
        if iteration > self.max_iterations:
            raise NonConvergenceError(
                f"fixpoint exceeded {self.max_iterations} iterations",
                iteration,
            )
        if iteration < self.suspect_after or signature is None:
            return
        first_seen = self._seen.get(signature)
        if first_seen is not None:
            raise RecurringStateError(iteration, first_seen)
        self._seen[signature] = iteration
