"""A Datalog-flavoured frontend for the differential engine.

The paper models configuration semantics in DDlog, "a dialect of Datalog"
that "synthesizes an incremental implementation running on top of
Differential Dataflow".  This module plays the same role for our engine: a
:class:`Program` declares input relations, derived relations defined by
join rules, and aggregate relations (group-by reductions, e.g. best-route
selection); :meth:`Program.compile` lowers everything onto
:mod:`repro.ddlog.operators`, automatically marking recursive dependencies
(rules whose body mentions a relation in the same stratum/SCC as the head)
as feedback edges.

Example — transitive closure::

    prog = Program("tc")
    edge = prog.input("edge", ("src", "dst"))
    path = prog.relation("path", ("src", "dst"))
    prog.rule(path, [edge("x", "y")], head=("x", "y"))
    prog.rule(path, [edge("x", "y"), path("y", "z")], head=("x", "z"))
    out = prog.probe(path)
    compiled = prog.compile()
    compiled.insert(edge, ("a", "b"))
    compiled.commit()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.ddlog.collection import Delta, Record
from repro.ddlog.convergence import ConvergenceMonitor
from repro.ddlog.engine import Engine, EpochStats
from repro.ddlog.operators import (
    Concat,
    Distinct,
    Filter,
    Input,
    Join,
    Map,
    Operator,
    Probe,
    Reduce,
)


class DslError(ValueError):
    """Raised for malformed programs."""


@dataclass(frozen=True)
class Var:
    """A Datalog variable.  Plain strings in atom argument lists are
    shorthand for variables; use :func:`const` to pass a string constant."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Const:
    value: Any


def const(value: Any) -> _Const:
    """Mark an atom argument as a constant (needed for string constants;
    non-string values are treated as constants automatically)."""
    return _Const(value)


Term = Union[Var, _Const, Any]


def _as_term(arg: Any) -> Union[Var, _Const]:
    if isinstance(arg, (Var, _Const)):
        return arg
    if isinstance(arg, str):
        return Var(arg)
    return _Const(arg)


@dataclass(frozen=True)
class Atom:
    relation: "Relation"
    terms: Tuple[Union[Var, _Const], ...]

    def __post_init__(self) -> None:
        if len(self.terms) != self.relation.arity:
            raise DslError(
                f"{self.relation.name} takes {self.relation.arity} arguments, "
                f"got {len(self.terms)}"
            )

    def variables(self) -> List[Var]:
        seen: List[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return seen


class Relation:
    """A named relation of fixed arity."""

    def __init__(
        self, program: "Program", name: str, fields: Tuple[str, ...], kind: str
    ) -> None:
        self.program = program
        self.name = name
        self.fields = fields
        self.kind = kind  # "input" | "derived" | "aggregate"

    @property
    def arity(self) -> int:
        return len(self.fields)

    def __call__(self, *args: Any) -> Atom:
        return Atom(self, tuple(_as_term(a) for a in args))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.fields)})"


@dataclass
class _Rule:
    head: Relation
    body: List[Atom]
    head_terms: Tuple[Union[Var, _Const], ...]
    where: Optional[Callable[[Dict[str, Any]], bool]]
    lets: List[Tuple[str, Callable[[Dict[str, Any]], Any]]]


@dataclass
class _Aggregation:
    head: Relation
    source: Relation
    key: Callable[[Record], Any]
    agg: Callable[[Any, Dict[Record, int]], Iterable[Record]]


class Program:
    """A collection of relations and rules, compilable onto an engine."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.relations: Dict[str, Relation] = {}
        self.rules: List[_Rule] = []
        self.aggregations: List[_Aggregation] = []
        self.probed: List[Relation] = []

    # -- declarations --------------------------------------------------------

    def _declare(self, name: str, fields: Sequence[str], kind: str) -> Relation:
        if name in self.relations:
            raise DslError(f"duplicate relation name: {name!r}")
        relation = Relation(self, name, tuple(fields), kind)
        self.relations[name] = relation
        return relation

    def input(self, name: str, fields: Sequence[str]) -> Relation:
        return self._declare(name, fields, "input")

    def relation(self, name: str, fields: Sequence[str]) -> Relation:
        return self._declare(name, fields, "derived")

    def rule(
        self,
        head: Relation,
        body: Sequence[Atom],
        head_terms: Sequence[Any],
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        lets: Optional[Sequence[Tuple[str, Callable[[Dict[str, Any]], Any]]]] = None,
    ) -> None:
        """Add ``head(head_terms) :- body [lets] [where]``.

        ``lets`` bind new variables computed from the environment (applied in
        order, after all atoms); ``where`` filters on the full environment.
        """
        if head.kind != "derived":
            raise DslError(f"cannot add rules to {head.kind} relation {head.name}")
        if not body:
            raise DslError("rules need at least one body atom")
        resolved_head = tuple(_as_term(t) for t in head_terms)
        if len(resolved_head) != head.arity:
            raise DslError(
                f"head of {head.name} needs {head.arity} terms, got "
                f"{len(resolved_head)}"
            )
        rule = _Rule(head, list(body), resolved_head, where, list(lets or []))
        bound: Set[str] = set()
        for atom in rule.body:
            bound.update(v.name for v in atom.variables())
        bound.update(name for name, _ in rule.lets)
        for term in resolved_head:
            if isinstance(term, Var) and term.name not in bound:
                raise DslError(
                    f"head variable {term.name!r} of {head.name} is unbound"
                )
        self.rules.append(rule)

    def aggregate(
        self,
        name: str,
        fields: Sequence[str],
        source: Relation,
        key: Callable[[Record], Any],
        agg: Callable[[Any, Dict[Record, int]], Iterable[Record]],
    ) -> Relation:
        """Declare ``name`` as a group-by reduction of ``source``.

        ``key(record)`` extracts the group; ``agg(group, {record: count})``
        returns the group's output records (e.g. the argmin set for
        best-route selection).
        """
        head = self._declare(name, fields, "aggregate")
        self.aggregations.append(_Aggregation(head, source, key, agg))
        return head

    def probe(self, relation: Relation) -> Relation:
        """Mark a relation's output for external observation."""
        if relation not in self.probed:
            self.probed.append(relation)
        return relation

    # -- stratification --------------------------------------------------------

    def _dependency_sccs(self) -> Dict[str, int]:
        """Map each relation name to its SCC index (Tarjan)."""
        deps: Dict[str, Set[str]] = {name: set() for name in self.relations}
        for rule in self.rules:
            for atom in rule.body:
                deps[rule.head.name].add(atom.relation.name)
        for aggregation in self.aggregations:
            deps[aggregation.head.name].add(aggregation.source.name)

        index_counter = [0]
        stack: List[str] = []
        on_stack: Set[str] = set()
        indexes: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        scc_of: Dict[str, int] = {}
        scc_counter = [0]

        def strongconnect(node: str) -> None:
            indexes[node] = lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for dep in deps[node]:
                if dep not in indexes:
                    strongconnect(dep)
                    lowlinks[node] = min(lowlinks[node], lowlinks[dep])
                elif dep in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[dep])
            if lowlinks[node] == indexes[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_counter[0]
                    if member == node:
                        break
                scc_counter[0] += 1

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * len(self.relations) + 100))
        try:
            for name in self.relations:
                if name not in indexes:
                    strongconnect(name)
        finally:
            sys.setrecursionlimit(old_limit)
        return scc_of

    def _recursive_pairs(self) -> Set[Tuple[str, str]]:
        """(body relation, head relation) pairs inside one SCC — these edges
        become iteration-bumping feedback edges."""
        scc_of = self._dependency_sccs()
        pairs: Set[Tuple[str, str]] = set()
        for rule in self.rules:
            for atom in rule.body:
                if scc_of[atom.relation.name] == scc_of[rule.head.name]:
                    pairs.add((atom.relation.name, rule.head.name))
        for aggregation in self.aggregations:
            if scc_of[aggregation.source.name] == scc_of[aggregation.head.name]:
                pairs.add((aggregation.source.name, aggregation.head.name))
        return pairs

    # -- compilation -------------------------------------------------------------

    def compile(
        self, monitor: Optional[ConvergenceMonitor] = None
    ) -> "CompiledProgram":
        return CompiledProgram(self, monitor=monitor)


class CompiledProgram:
    """A program lowered onto an :class:`~repro.ddlog.engine.Engine`."""

    def __init__(
        self, program: Program, monitor: Optional[ConvergenceMonitor] = None
    ) -> None:
        self.program = program
        self.engine = Engine(monitor=monitor)
        self._inputs: Dict[str, Input] = {}
        self._outputs: Dict[str, Operator] = {}
        self._probes: Dict[str, Probe] = {}
        self._build()

    # -- graph construction ---------------------------------------------------

    def _build(self) -> None:
        program = self.program
        recursive = program._recursive_pairs()

        # Relation output nodes.  Derived relations need their Concat created
        # first so recursive rules can wire into them.
        concats: Dict[str, Concat] = {}
        for relation in program.relations.values():
            if relation.kind == "input":
                node = self.engine.add(Input(relation.name))
                self._inputs[relation.name] = node
                self._outputs[relation.name] = node
            elif relation.kind == "derived":
                ports = sum(1 for r in program.rules if r.head is relation)
                if ports == 0:
                    raise DslError(f"derived relation {relation.name} has no rules")
                concat = self.engine.add(Concat(f"{relation.name}.concat", ports))
                distinct = self.engine.add(Distinct(f"{relation.name}.distinct"))
                self.engine.connect(concat, distinct)
                concats[relation.name] = concat
                self._outputs[relation.name] = distinct

        for aggregation in program.aggregations:
            reduce_op = self.engine.add(
                Reduce(
                    f"{aggregation.head.name}.reduce",
                    key=aggregation.key,
                    agg=aggregation.agg,
                )
            )
            bump = (aggregation.source.name, aggregation.head.name) in recursive
            self.engine.connect(
                self._outputs[aggregation.source.name], reduce_op, bump=bump
            )
            self._outputs[aggregation.head.name] = reduce_op

        rule_ports: Dict[str, int] = {name: 0 for name in concats}
        for rule_index, rule in enumerate(program.rules):
            out = self._compile_rule(rule_index, rule, recursive)
            port = rule_ports[rule.head.name]
            rule_ports[rule.head.name] = port + 1
            self.engine.connect(out, concats[rule.head.name], port=port)

        for relation in program.probed:
            probe = self.engine.add(Probe(f"{relation.name}.probe"))
            self.engine.connect(self._outputs[relation.name], probe)
            self._probes[relation.name] = probe

        self.engine.finalize()

    def _compile_rule(
        self, rule_index: int, rule: _Rule, recursive: Set[Tuple[str, str]]
    ) -> Operator:
        """Lower one rule to a left-deep join plan; returns the head stream."""
        head_name = rule.head.name
        label = f"{head_name}.r{rule_index}"

        env_vars: List[str] = []
        stream: Optional[Operator] = None

        for atom_index, atom in enumerate(rule.body):
            atom_stream = self._atom_stream(f"{label}.a{atom_index}", atom)
            bump = (atom.relation.name, head_name) in recursive
            new_vars = [
                v.name for v in atom.variables() if v.name not in env_vars
            ]
            if stream is None:
                project = self._projection(atom, new_vars)
                mapper = self.engine.add(
                    Map(f"{label}.a{atom_index}.env", project)
                )
                self.engine.connect(atom_stream, mapper, bump=bump)
                stream = mapper
                env_vars = new_vars
            else:
                shared = [
                    v.name for v in atom.variables() if v.name in env_vars
                ]
                left_positions = [env_vars.index(name) for name in shared]
                atom_shared_pos = self._var_positions(atom, shared)
                atom_new_pos = self._var_positions(atom, new_vars)

                def left_key(env: Record, pos=tuple(left_positions)) -> Any:
                    return tuple(env[i] for i in pos)

                def right_key(record: Record, pos=tuple(atom_shared_pos)) -> Any:
                    return tuple(record[i] for i in pos)

                def merge(
                    env: Record, record: Record, pos=tuple(atom_new_pos)
                ) -> Record:
                    return env + tuple(record[i] for i in pos)

                join = self.engine.add(
                    Join(f"{label}.a{atom_index}.join", left_key, right_key, merge)
                )
                self.engine.connect(stream, join, port=0)
                self.engine.connect(atom_stream, join, port=1, bump=bump)
                stream = join
                env_vars = env_vars + new_vars

        assert stream is not None
        index_of = {name: i for i, name in enumerate(env_vars)}

        if rule.lets:
            lets = list(rule.lets)

            def apply_lets(env: Record, _lets=tuple(lets), _vars=tuple(env_vars)) -> Record:
                scope = dict(zip(_vars, env))
                extra = []
                for name, fn in _lets:
                    value = fn(scope)
                    scope[name] = value
                    extra.append(value)
                return env + tuple(extra)

            let_map = self.engine.add(Map(f"{label}.lets", apply_lets))
            self.engine.connect(stream, let_map)
            stream = let_map
            for name, _ in lets:
                if name not in index_of:
                    index_of[name] = len(env_vars)
                    env_vars = env_vars + [name]

        if rule.where is not None:
            where_fn = rule.where
            names = tuple(env_vars)

            def predicate(env: Record, _fn=where_fn, _names=names) -> bool:
                return bool(_fn(dict(zip(_names, env))))

            filt = self.engine.add(Filter(f"{label}.where", predicate))
            self.engine.connect(stream, filt)
            stream = filt

        head_plan: List[Tuple[str, Any]] = []
        for term in rule.head_terms:
            if isinstance(term, Var):
                head_plan.append(("var", index_of[term.name]))
            else:
                head_plan.append(("const", term.value))

        def to_head(env: Record, _plan=tuple(head_plan)) -> Record:
            return tuple(
                env[payload] if kind == "var" else payload
                for kind, payload in _plan
            )

        head_map = self.engine.add(Map(f"{label}.head", to_head))
        self.engine.connect(stream, head_map)
        return head_map

    def _atom_stream(self, label: str, atom: Atom) -> Operator:
        """The relation's stream, filtered on constants and repeated vars."""
        source = self._outputs[atom.relation.name]
        checks: List[Tuple[int, Any]] = []
        first_pos: Dict[str, int] = {}
        same: List[Tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, _Const):
                checks.append((position, term.value))
            else:
                if term.name in first_pos:
                    same.append((first_pos[term.name], position))
                else:
                    first_pos[term.name] = position
        if not checks and not same:
            return source

        def predicate(
            record: Record, _checks=tuple(checks), _same=tuple(same)
        ) -> bool:
            for position, value in _checks:
                if record[position] != value:
                    return False
            for a, b in _same:
                if record[a] != record[b]:
                    return False
            return True

        filt = self.engine.add(Filter(f"{label}.match", predicate))
        self.engine.connect(source, filt)
        return filt

    @staticmethod
    def _projection(atom: Atom, var_order: List[str]) -> Callable[[Record], Record]:
        positions = CompiledProgram._var_positions(atom, var_order)

        def project(record: Record, _pos=tuple(positions)) -> Record:
            return tuple(record[i] for i in _pos)

        return project

    @staticmethod
    def _var_positions(atom: Atom, names: Iterable[str]) -> List[int]:
        positions = []
        for name in names:
            for position, term in enumerate(atom.terms):
                if isinstance(term, Var) and term.name == name:
                    positions.append(position)
                    break
            else:
                raise DslError(f"variable {name!r} not found in {atom}")
        return positions

    # -- runtime API ----------------------------------------------------------

    def _input_node(self, relation: Union[Relation, str]) -> Input:
        name = relation.name if isinstance(relation, Relation) else relation
        try:
            return self._inputs[name]
        except KeyError:
            raise DslError(f"{name!r} is not an input relation") from None

    def insert(self, relation: Union[Relation, str], record: Record) -> None:
        self.engine.insert(self._input_node(relation), record, 1)

    def remove(self, relation: Union[Relation, str], record: Record) -> None:
        self.engine.insert(self._input_node(relation), record, -1)

    def apply(self, relation: Union[Relation, str], delta: Delta) -> None:
        self.engine.apply(self._input_node(relation), delta)

    def commit(self) -> EpochStats:
        """Run one epoch: propagate buffered changes to the new fixpoint."""
        return self.engine.run_epoch()

    def collection(self, relation: Union[Relation, str]) -> Delta:
        name = relation.name if isinstance(relation, Relation) else relation
        try:
            probe = self._probes[name]
        except KeyError:
            raise DslError(f"relation {name!r} is not probed") from None
        return probe.collection()

    def take_delta(self, relation: Union[Relation, str]) -> Delta:
        """The probed relation's net change during the last epoch(s)."""
        name = relation.name if isinstance(relation, Relation) else relation
        try:
            probe = self._probes[name]
        except KeyError:
            raise DslError(f"relation {name!r} is not probed") from None
        return probe.take_epoch_delta()
