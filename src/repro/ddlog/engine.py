"""The differential computation engine.

The engine owns a dataflow graph of :mod:`repro.ddlog.operators` and drives
delta propagation:

- *epochs* are external input rounds (one configuration change = one epoch);
- within an epoch, messages carry an *iteration* timestamp; recursion is
  expressed with *feedback edges* that bump the iteration by one;
- messages are processed in strictly non-decreasing iteration order, and in
  topological order of the feedback-free graph within one iteration, so each
  operator sees all of its inputs for an iteration before acting on it.

After an epoch the operators' iteration-indexed histories describe the full
fixpoint trace of the current input; the next epoch only propagates
*corrections* against that trace, which is what makes re-verification after
a small configuration change cheap (the paper's key enabler, §4.1).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.ddlog.collection import Delta, Record
from repro.ddlog.convergence import ConvergenceMonitor
from repro.ddlog.operators import Input, Join, Operator, Probe, Reduce
from repro.telemetry import get_metrics, names, span


class GraphError(ValueError):
    """Raised for malformed dataflow graphs."""


@dataclass
class EpochStats:
    """Work performed by one epoch of delta propagation."""

    epoch: int
    iterations: int = 0
    messages: int = 0
    records: int = 0
    recompute_calls: int = 0
    elapsed_seconds: float = 0.0

    def __str__(self) -> str:
        return (
            f"epoch {self.epoch}: {self.iterations} iterations, "
            f"{self.messages} messages, {self.records} record diffs, "
            f"{self.recompute_calls} recomputes, "
            f"{self.elapsed_seconds * 1000:.1f} ms"
        )


class _PendingWork:
    """Accumulated work for one operator at one iteration."""

    __slots__ = ("port_deltas", "recompute_groups")

    def __init__(self) -> None:
        self.port_deltas: Dict[int, Delta] = {}
        self.recompute_groups: Set[Any] = set()

    def add_delta(self, port: int, delta: Delta) -> None:
        existing = self.port_deltas.get(port)
        if existing is None:
            self.port_deltas[port] = delta.copy()
        else:
            existing.merge(delta)

    def is_empty(self) -> bool:
        return (
            all(d.is_empty() for d in self.port_deltas.values())
            and not self.recompute_groups
        )


class Engine:
    """A dataflow graph plus the delta scheduler."""

    def __init__(
        self, monitor: Optional[ConvergenceMonitor] = None
    ) -> None:
        self.operators: List[Operator] = []
        #: op_id -> list of (destination operator, destination port, bump)
        self._successors: Dict[int, List[Tuple[Operator, int, bool]]] = {}
        self._in_degree_edges: List[Tuple[int, int, bool]] = []
        self._finalized = False
        self.monitor = monitor or ConvergenceMonitor()
        self._epoch = 0
        self._input_buffer: Dict[int, Delta] = {}
        #: iteration -> op_id -> pending work
        self._pending: Dict[int, Dict[int, _PendingWork]] = {}
        self._iteration_heap: List[int] = []
        self.last_stats: Optional[EpochStats] = None

    # -- graph construction -------------------------------------------------

    def add(self, operator: Operator) -> Operator:
        if self._finalized:
            raise GraphError("cannot add operators after finalize()")
        operator.op_id = len(self.operators)
        self.operators.append(operator)
        self._successors[operator.op_id] = []
        if isinstance(operator, Reduce):
            operator.schedule_recompute = self._schedule_recompute
        return operator

    def connect(
        self, src: Operator, dst: Operator, port: int = 0, bump: bool = False
    ) -> None:
        """Wire ``src``'s output to ``dst``'s input ``port``.

        ``bump=True`` marks a feedback edge: messages crossing it advance to
        the next iteration (this is how recursion is expressed).
        """
        if self._finalized:
            raise GraphError("cannot connect operators after finalize()")
        for op in (src, dst):
            if op.op_id < 0 or op.op_id >= len(self.operators):
                raise GraphError(f"operator {op} is not registered")
        if not 0 <= port < dst.num_ports:
            raise GraphError(f"{dst} has no input port {port}")
        self._successors[src.op_id].append((dst, port, bump))
        self._in_degree_edges.append((src.op_id, dst.op_id, bump))

    def finalize(self) -> None:
        """Topologically order the feedback-free graph (must be a DAG)."""
        if self._finalized:
            return
        n = len(self.operators)
        forward: Dict[int, List[int]] = {i: [] for i in range(n)}
        in_degree = [0] * n
        for src, dst, bump in self._in_degree_edges:
            if not bump:
                forward[src].append(dst)
                in_degree[dst] += 1
        ready = [i for i in range(n) if in_degree[i] == 0]
        order: List[int] = []
        while ready:
            op_id = ready.pop()
            order.append(op_id)
            for succ in forward[op_id]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != n:
            cyclic = [self.operators[i].name for i in range(n) if in_degree[i] > 0]
            raise GraphError(
                "dataflow graph has a cycle without a feedback edge through: "
                + ", ".join(sorted(cyclic))
            )
        for topo_index, op_id in enumerate(order):
            self.operators[op_id].topo_index = topo_index
        self._finalized = True

    # -- input feeding -------------------------------------------------------

    def insert(self, source: Input, record: Record, weight: int = 1) -> None:
        """Buffer an input change for the next epoch."""
        if not isinstance(source, Input):
            raise GraphError(f"{source} is not an Input operator")
        buffer = self._input_buffer.setdefault(source.op_id, Delta())
        buffer.add(record, weight)

    def remove(self, source: Input, record: Record) -> None:
        self.insert(source, record, -1)

    def apply(self, source: Input, delta: Delta) -> None:
        if not isinstance(source, Input):
            raise GraphError(f"{source} is not an Input operator")
        buffer = self._input_buffer.setdefault(source.op_id, Delta())
        buffer.merge(delta)

    # -- scheduling -----------------------------------------------------------

    def _work_at(self, iteration: int, op_id: int) -> _PendingWork:
        per_iter = self._pending.get(iteration)
        if per_iter is None:
            per_iter = {}
            self._pending[iteration] = per_iter
            heapq.heappush(self._iteration_heap, iteration)
        work = per_iter.get(op_id)
        if work is None:
            work = _PendingWork()
            per_iter[op_id] = work
        return work

    def _schedule_recompute(
        self, operator: Operator, iteration: int, group: Any
    ) -> None:
        self._work_at(iteration, operator.op_id).recompute_groups.add(group)

    def _route(self, src: Operator, iteration: int, delta: Delta) -> int:
        """Deliver an emitted delta to all successors; returns message count."""
        messages = 0
        for dst, port, bump in self._successors[src.op_id]:
            when = iteration + 1 if bump else iteration
            self._work_at(when, dst.op_id).add_delta(port, delta)
            messages += 1
        return messages

    # -- epoch execution --------------------------------------------------------

    def run_epoch(self) -> EpochStats:
        """Propagate all buffered input deltas to a new fixpoint."""
        if not self._finalized:
            self.finalize()
        self._epoch += 1
        stats = EpochStats(epoch=self._epoch)
        with span(names.SPAN_DDLOG_EPOCH, epoch=self._epoch) as sp:
            started = time.perf_counter()
            self.monitor.reset()

            for op_id, delta in self._input_buffer.items():
                if not delta.is_empty():
                    self._work_at(0, op_id).add_delta(0, delta)
            self._input_buffer.clear()

            while self._iteration_heap:
                iteration = heapq.heappop(self._iteration_heap)
                per_iter = self._pending.get(iteration)
                if not per_iter:
                    self._pending.pop(iteration, None)
                    continue
                stats.iterations += 1
                self.monitor.observe(iteration, self._signature(per_iter))
                self._run_iteration(iteration, per_iter, stats)
                if not self._pending.get(iteration):
                    self._pending.pop(iteration, None)

            stats.elapsed_seconds = time.perf_counter() - started
            sp.set("iterations", stats.iterations)
            sp.set("messages", stats.messages)
            sp.set("records", stats.records)
            sp.set("recompute_calls", stats.recompute_calls)
        self._record_metrics(stats)
        self.last_stats = stats
        return stats

    def _record_metrics(self, stats: EpochStats) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter(names.DDLOG_EPOCHS).inc()
        metrics.counter(names.DDLOG_ITERATIONS).inc(stats.iterations)
        metrics.counter(names.DDLOG_MESSAGES).inc(stats.messages)
        metrics.counter(names.DDLOG_RECORDS).inc(stats.records)
        metrics.counter(names.DDLOG_RECOMPUTES).inc(stats.recompute_calls)
        metrics.gauge(names.DDLOG_STATE_RECORDS).set(self.state_size())

    def _run_iteration(
        self, iteration: int, per_iter: Dict[int, _PendingWork], stats: EpochStats
    ) -> None:
        # ``per_iter`` is the live pending map for this iteration: routing a
        # same-iteration emission (or scheduling a same-iteration recompute)
        # adds work to it while we sweep.  Messages within one iteration only
        # flow forward along the feedback-free DAG, so sweeping in
        # topological order visits every operator after all of its inputs.
        heap: List[Tuple[int, int]] = [
            (self.operators[op_id].topo_index, op_id) for op_id in per_iter
        ]
        heapq.heapify(heap)
        queued = set(per_iter)

        def enqueue(op_id: int) -> None:
            if op_id not in queued:
                heapq.heappush(heap, (self.operators[op_id].topo_index, op_id))
                queued.add(op_id)

        while heap:
            _, op_id = heapq.heappop(heap)
            queued.discard(op_id)
            work = per_iter.pop(op_id, None)
            if work is None or work.is_empty():
                continue
            operator = self.operators[op_id]
            emissions: Dict[int, Delta] = {}

            def collect(produced: Dict[int, Delta]) -> None:
                for when, out in produced.items():
                    existing = emissions.get(when)
                    if existing is None:
                        emissions[when] = out
                    else:
                        existing.merge(out)

            for port, delta in sorted(work.port_deltas.items()):
                if delta.is_empty():
                    continue
                stats.records += len(delta)
                collect(operator.on_delta(port, iteration, delta))
            # on_delta may have scheduled same-iteration recomputes for this
            # operator; fold them into this visit.
            self_work = per_iter.pop(op_id, None)
            groups = set(work.recompute_groups)
            if self_work is not None:
                groups.update(self_work.recompute_groups)
            if groups:
                stats.recompute_calls += len(groups)
                collect(operator.on_recompute(iteration, groups))

            for when, out in emissions.items():
                if out.is_empty():
                    continue
                if when < iteration:
                    raise GraphError(
                        f"{operator} emitted into the past ({when} < {iteration})"
                    )
                stats.messages += self._route(operator, when, out)
                if when == iteration:
                    for dst, _, bump in self._successors[op_id]:
                        if not bump:
                            enqueue(dst.op_id)

    @staticmethod
    def _signature(per_iter: Dict[int, _PendingWork]) -> Optional[int]:
        parts = []
        for op_id in sorted(per_iter):
            work = per_iter[op_id]
            for port in sorted(work.port_deltas):
                delta = work.port_deltas[port]
                if not delta.is_empty():
                    parts.append((op_id, port, delta.signature()))
            if work.recompute_groups:
                parts.append((op_id, -1, hash(frozenset(work.recompute_groups))))
        if not parts:
            return None
        return hash(tuple(parts))

    # -- state capture / restore ------------------------------------------------

    def capture_state(self) -> Dict[str, Any]:
        """Plain-data snapshot of the engine's mutable state: the epoch
        counter plus every operator's history.  Functions baked into the
        operators (closures from the DSL) are graph structure, not state,
        so the payload is picklable and restorable onto an identically
        compiled graph."""
        return {
            "epoch": self._epoch,
            "operators": [
                {"name": op.name, "state": op.snapshot_state()}
                for op in self.operators
            ],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`capture_state` payload.

        Also clears the scheduler structures (pending work, iteration heap,
        input buffer) — an epoch aborted mid-flight (e.g. by a convergence
        failure) leaves them dirty, and a rollback must not replay them.
        """
        ops = state["operators"]
        if len(ops) != len(self.operators):
            raise GraphError(
                f"state has {len(ops)} operators, graph has "
                f"{len(self.operators)}: not the same program"
            )
        for operator, entry in zip(self.operators, ops):
            if operator.name != entry["name"]:
                raise GraphError(
                    f"operator mismatch: graph has {operator.name!r}, "
                    f"state has {entry['name']!r}"
                )
        self._input_buffer.clear()
        self._pending.clear()
        self._iteration_heap.clear()
        self._epoch = state["epoch"]
        for operator, entry in zip(self.operators, ops):
            operator.restore_state(entry["state"])

    # -- introspection ---------------------------------------------------------

    def state_size(self) -> int:
        """Total stored record diffs across all operators."""
        return sum(op.state_size() for op in self.operators)

    def probe_collections(self) -> Dict[str, Delta]:
        return {
            op.name: op.collection()
            for op in self.operators
            if isinstance(op, Probe)
        }

    def join_lookups(self) -> int:
        return sum(op.lookups for op in self.operators if isinstance(op, Join))
