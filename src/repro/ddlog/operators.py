"""Incremental dataflow operators.

Each operator consumes weighted deltas on its input ports and produces
weighted deltas, both stamped with an *iteration* (the loop timestamp of
differential computation).  Operators keep iteration-indexed state so that a
later epoch (a new configuration change) can correct any point of the
previously computed fixpoint trace:

- :class:`Map` / :class:`FlatMap` / :class:`Filter` / :class:`Concat` are
  stateless and timestamp-preserving;
- :class:`Join` is bilinear: a delta on one side joins against the other
  side's full history, each pairing landing at the max of the two
  iterations;
- :class:`Reduce` implements keyed aggregation with correction scheduling:
  when a group's input changes at iteration ``t``, its output is recomputed
  at ``t`` and at every later iteration where the group's input or output
  history has diffs (the "interesting times" rule of differential dataflow);
- :class:`Distinct` is the set-semantics reduction used to make recursive
  rules terminate;
- :class:`Probe` is a terminal sink exposing the accumulated collection and
  the per-epoch output delta.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.ddlog.collection import Delta, History, Record, Weight

#: Output of an operator step: iteration -> delta emitted at that iteration.
Emission = Dict[int, Delta]

KeyFn = Callable[[Record], Any]
MergeFn = Callable[[Record, Record], Record]
AggFn = Callable[[Any, Dict[Record, int]], Iterable[Record]]


class Operator:
    """Base class of dataflow operators."""

    def __init__(self, name: str, num_ports: int = 1) -> None:
        self.name = name
        self.num_ports = num_ports
        #: filled in by the engine at registration time
        self.op_id: int = -1
        self.topo_index: int = -1

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        raise NotImplementedError

    def on_recompute(self, iteration: int, groups: Set[Any]) -> Emission:
        """Only meaningful for :class:`Reduce`; default is a no-op."""
        return {}

    def state_size(self) -> int:
        """Approximate number of stored record diffs (for stats)."""
        return 0

    def snapshot_state(self) -> Any:
        """Plain-data copy of the operator's mutable state (``None`` for
        stateless operators).  Functions (map/key/agg closures) are part of
        the graph, not the state, so the result is picklable and can be
        restored onto a freshly recompiled graph."""
        return None

    def restore_state(self, state: Any) -> None:
        if state is not None:
            raise ValueError(
                f"{self!r} is stateless but got a state payload"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def _emit(emission: Emission, iteration: int, record: Record, weight: Weight) -> None:
    delta = emission.get(iteration)
    if delta is None:
        delta = Delta()
        emission[iteration] = delta
    delta.add(record, weight)


class Input(Operator):
    """An externally-fed base relation.  Deltas enter at iteration 0."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.history = History()

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        out = Delta()
        for record, weight in delta.items():
            self.history.add(record, iteration, weight)
            out.add(record, weight)
        return {iteration: out} if not out.is_empty() else {}

    def state_size(self) -> int:
        return self.history.record_count()

    def snapshot_state(self) -> Any:
        return {"history": self.history.snapshot_data()}

    def restore_state(self, state: Any) -> None:
        self.history.restore_data(state["history"])


class Map(Operator):
    """Apply ``fn`` to each record (1:1)."""

    def __init__(self, name: str, fn: Callable[[Record], Record]) -> None:
        super().__init__(name)
        self.fn = fn

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        out = Delta()
        for record, weight in delta.items():
            out.add(self.fn(record), weight)
        return {iteration: out} if not out.is_empty() else {}


class FlatMap(Operator):
    """Apply ``fn`` to each record; ``fn`` returns zero or more records."""

    def __init__(self, name: str, fn: Callable[[Record], Iterable[Record]]) -> None:
        super().__init__(name)
        self.fn = fn

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        out = Delta()
        for record, weight in delta.items():
            for produced in self.fn(record):
                out.add(produced, weight)
        return {iteration: out} if not out.is_empty() else {}


class Filter(Operator):
    """Keep records satisfying ``predicate``."""

    def __init__(self, name: str, predicate: Callable[[Record], bool]) -> None:
        super().__init__(name)
        self.predicate = predicate

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        out = Delta()
        for record, weight in delta.items():
            if self.predicate(record):
                out.add(record, weight)
        return {iteration: out} if not out.is_empty() else {}


class Concat(Operator):
    """Additive union of any number of input ports."""

    def __init__(self, name: str, num_ports: int) -> None:
        super().__init__(name, num_ports=num_ports)

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        return {iteration: delta.copy()} if not delta.is_empty() else {}


#: Per-side join index: key -> record -> {iteration: weight diff}.
_JoinIndex = Dict[Any, Dict[Record, Dict[int, int]]]


def _copy_index(index: _JoinIndex) -> _JoinIndex:
    """Copy every level that is mutated in place (records are immutable)."""
    return {
        key: {record: dict(hist) for record, hist in recs.items()}
        for key, recs in index.items()
    }


class Join(Operator):
    """Binary equi-join.

    Port 0 is the left input, port 1 the right.  ``merge`` combines a left
    and right record into the output record.  The operator is bilinear: a
    delta on either side is joined against the other side's accumulated
    history, and each pairing is emitted at the max of the two iterations.
    """

    def __init__(
        self, name: str, left_key: KeyFn, right_key: KeyFn, merge: MergeFn
    ) -> None:
        super().__init__(name, num_ports=2)
        self.keys = (left_key, right_key)
        self.merge = merge
        self.indexes: Tuple[_JoinIndex, _JoinIndex] = ({}, {})
        self.lookups = 0  # stats

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        my_index = self.indexes[port]
        other_index = self.indexes[1 - port]
        my_key = self.keys[port]
        emission: Emission = {}
        for record, weight in delta.items():
            key = my_key(record)
            matches = other_index.get(key)
            if matches:
                for other_record, hist in matches.items():
                    if port == 0:
                        merged = self.merge(record, other_record)
                    else:
                        merged = self.merge(other_record, record)
                    for other_iter, other_weight in hist.items():
                        self.lookups += 1
                        _emit(
                            emission,
                            max(iteration, other_iter),
                            merged,
                            weight * other_weight,
                        )
            # Index our own delta after joining, so concurrent deltas on the
            # two ports pair up exactly once.
            per_key = my_index.setdefault(key, {})
            hist = per_key.setdefault(record, {})
            new_weight = hist.get(iteration, 0) + weight
            if new_weight:
                hist[iteration] = new_weight
            else:
                del hist[iteration]
                if not hist:
                    del per_key[record]
                    if not per_key:
                        del my_index[key]
        return {it: d for it, d in emission.items() if not d.is_empty()}

    def state_size(self) -> int:
        return sum(
            len(recs) for index in self.indexes for recs in index.values()
        )

    def snapshot_state(self) -> Any:
        return {
            "indexes": (
                _copy_index(self.indexes[0]),
                _copy_index(self.indexes[1]),
            ),
            "lookups": self.lookups,
        }

    def restore_state(self, state: Any) -> None:
        left, right = state["indexes"]
        self.indexes = (_copy_index(left), _copy_index(right))
        self.lookups = state["lookups"]


class Reduce(Operator):
    """Keyed aggregation with differential correction scheduling.

    ``key`` extracts the group of a record; ``agg`` maps
    ``(group, {record: positive count})`` to the group's output records.
    An empty input group always produces ``agg(group, {})`` — by convention
    aggregation functions return nothing for empty groups.
    """

    def __init__(self, name: str, key: KeyFn, agg: AggFn) -> None:
        super().__init__(name)
        self.key = key
        self.agg = agg
        #: group -> record -> {iteration: weight}
        self.inputs: Dict[Any, Dict[Record, Dict[int, int]]] = {}
        #: group -> out record -> {iteration: weight}
        self.outputs: Dict[Any, Dict[Record, Dict[int, int]]] = {}
        #: engine-set callback: schedule_recompute(operator, iteration, group)
        self.schedule_recompute: Optional[Callable[[Operator, int, Any], None]] = None
        self.recomputes = 0  # stats

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        perturbed: Set[Any] = set()
        for record, weight in delta.items():
            group = self.key(record)
            per_group = self.inputs.setdefault(group, {})
            hist = per_group.setdefault(record, {})
            new_weight = hist.get(iteration, 0) + weight
            if new_weight:
                hist[iteration] = new_weight
            else:
                del hist[iteration]
                if not hist:
                    del per_group[record]
                    if not per_group:
                        self.inputs.pop(group, None)
            perturbed.add(group)
        # A change at iteration t can invalidate this group's output at t and
        # at any later iteration where its input or output history has diffs.
        for group in perturbed:
            for when in self._interesting_times(group, iteration):
                assert self.schedule_recompute is not None
                self.schedule_recompute(self, when, group)
        return {}

    def _interesting_times(self, group: Any, start: int) -> List[int]:
        times = {start}
        for hist in self.inputs.get(group, {}).values():
            times.update(t for t in hist if t > start)
        for hist in self.outputs.get(group, {}).values():
            times.update(t for t in hist if t > start)
        return sorted(times)

    def on_recompute(self, iteration: int, groups: Set[Any]) -> Emission:
        emission: Emission = {}
        for group in groups:
            self.recomputes += 1
            current_input: Dict[Record, int] = {}
            for record, hist in self.inputs.get(group, {}).items():
                total = sum(w for it, w in hist.items() if it <= iteration)
                if total > 0:
                    current_input[record] = total
            desired = Delta()
            if current_input:
                for out_record in self.agg(group, current_input):
                    desired.add(out_record, 1)
            out_group = self.outputs.setdefault(group, {})
            # Current cumulative output as of this iteration.
            current = Delta()
            for out_record, hist in out_group.items():
                current.add(
                    out_record, sum(w for it, w in hist.items() if it <= iteration)
                )
            # Correction = desired - current, applied at this iteration.
            correction = desired
            correction.merge(current.negated())
            for out_record, weight in correction.items():
                hist = out_group.setdefault(out_record, {})
                new_weight = hist.get(iteration, 0) + weight
                if new_weight:
                    hist[iteration] = new_weight
                else:
                    del hist[iteration]
                    if not hist:
                        del out_group[out_record]
                _emit(emission, iteration, out_record, weight)
            if not out_group:
                self.outputs.pop(group, None)
        return {it: d for it, d in emission.items() if not d.is_empty()}

    def state_size(self) -> int:
        stored = sum(len(recs) for recs in self.inputs.values())
        stored += sum(len(recs) for recs in self.outputs.values())
        return stored

    def snapshot_state(self) -> Any:
        return {
            "inputs": _copy_index(self.inputs),
            "outputs": _copy_index(self.outputs),
            "recomputes": self.recomputes,
        }

    def restore_state(self, state: Any) -> None:
        self.inputs = _copy_index(state["inputs"])
        self.outputs = _copy_index(state["outputs"])
        self.recomputes = state["recomputes"]


def _presence(group: Any, counts: Dict[Record, int]) -> Iterable[Record]:
    """Aggregation behind :class:`Distinct`: group key is the record."""
    if counts:
        yield group


class Distinct(Reduce):
    """Set semantics: each present record has output weight exactly one."""

    def __init__(self, name: str) -> None:
        super().__init__(name, key=lambda record: record, agg=_presence)


class Probe(Operator):
    """Terminal sink: accumulates the collection and per-epoch deltas."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.history = History()
        self.epoch_delta = Delta()

    def on_delta(self, port: int, iteration: int, delta: Delta) -> Emission:
        for record, weight in delta.items():
            self.history.add(record, iteration, weight)
            self.epoch_delta.add(record, weight)
        return {}

    def collection(self) -> Delta:
        """The current fully-accumulated output collection."""
        return self.history.final_collection()

    def take_epoch_delta(self) -> Delta:
        """The net output change since the last call (one epoch's worth)."""
        delta = self.epoch_delta
        self.epoch_delta = Delta()
        return delta

    def state_size(self) -> int:
        return self.history.record_count()

    def snapshot_state(self) -> Any:
        return {
            "history": self.history.snapshot_data(),
            "epoch_delta": self.epoch_delta.as_dict(),
        }

    def restore_state(self, state: Any) -> None:
        self.history.restore_data(state["history"])
        self.epoch_delta = Delta.from_dict(state["epoch_delta"])
