"""repro.lint — incremental semantic static analysis of configurations.

Behavioural verification (the RealConfig pipeline) answers "does the changed
network still forward correctly"; this package answers the earlier, cheaper
question "is the changed configuration *text* self-consistent".  It is a
pass-based analyzer over the parsed :class:`~repro.config.schema.Snapshot`
IR with:

- a pass framework (:mod:`repro.lint.framework`): registry, severity-graded
  diagnostics with device/stanza/line anchors, glob suppressions;
- a **network dependency graph** (:mod:`repro.lint.graph`): nodes are
  (device, object) pairs, edges capture intra-device references and
  cross-device coupling (links, BGP sessions, OSPF adjacencies, static
  next hops), fingerprint-cached and incrementally patched;
- fourteen built-in semantic passes (:mod:`repro.lint.passes`), from
  dangling references to cross-device link/session consistency (LNK/BGP),
  blackhole detection (BLK), network-wide redistribution loops (RDL), and
  partition/isolation intent (ISO);
- an **incremental mode** mirroring the paper's pipeline: given a
  :class:`~repro.config.diff.LineDiff`, device-scoped passes re-run only
  on touched devices, and cross-device passes only on the dependency
  closure (coupling-graph ball or component) of the touched devices —
  with results byte-identical to a full run;
- text / JSON / SARIF output with stable result fingerprints
  (:mod:`repro.lint.output`).

Typical use::

    from repro.lint import LintRunner, Severity

    runner = LintRunner()
    result = runner.run(snapshot)                    # full
    result = runner.run_incremental(new, diff, result)  # diff-scoped
    assert result.ok(fail_on=Severity.ERROR)
"""

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    Suppression,
    count_by_severity,
    max_severity,
    resolve_lines,
)
from repro.lint.framework import (
    STANZA_KINDS,
    CrossDevicePass,
    LintPass,
    LintResult,
    LintRunner,
    all_passes,
    lint_snapshot,
    pass_names,
    register_pass,
    stanza_kind,
    touched_kinds,
)
from repro.lint.graph import (
    NetworkDependencyGraph,
    ObjectRef,
    device_fingerprint,
    graph_for,
    topology_touched_devices,
)
from repro.lint.output import format_json, format_sarif, format_text
from repro.lint import passes as _passes  # populate the registry

__all__ = [
    "Diagnostic",
    "Severity",
    "Suppression",
    "count_by_severity",
    "max_severity",
    "resolve_lines",
    "STANZA_KINDS",
    "CrossDevicePass",
    "LintPass",
    "LintResult",
    "LintRunner",
    "all_passes",
    "lint_snapshot",
    "pass_names",
    "register_pass",
    "stanza_kind",
    "touched_kinds",
    "NetworkDependencyGraph",
    "ObjectRef",
    "device_fingerprint",
    "graph_for",
    "topology_touched_devices",
    "format_json",
    "format_sarif",
    "format_text",
]

del _passes
