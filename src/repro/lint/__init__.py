"""repro.lint — incremental semantic static analysis of configurations.

Behavioural verification (the RealConfig pipeline) answers "does the changed
network still forward correctly"; this package answers the earlier, cheaper
question "is the changed configuration *text* self-consistent".  It is a
pass-based analyzer over the parsed :class:`~repro.config.schema.Snapshot`
IR with:

- a pass framework (:mod:`repro.lint.framework`): registry, severity-graded
  diagnostics with device/stanza/line anchors, glob suppressions;
- eight built-in semantic passes (:mod:`repro.lint.passes`), from dangling
  references to OSPF adjacency asymmetries and redistribution cycles;
- an **incremental mode** mirroring the paper's pipeline: given a
  :class:`~repro.config.diff.LineDiff`, only the passes whose declared
  stanza scope intersects the touched stanzas re-run, per touched device,
  and untouched results are carried over;
- text / JSON / SARIF output (:mod:`repro.lint.output`).

Typical use::

    from repro.lint import LintRunner, Severity

    runner = LintRunner()
    result = runner.run(snapshot)                    # full
    result = runner.run_incremental(new, diff, result)  # diff-scoped
    assert result.ok(fail_on=Severity.ERROR)
"""

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    Suppression,
    count_by_severity,
    max_severity,
    resolve_lines,
)
from repro.lint.framework import (
    STANZA_KINDS,
    LintPass,
    LintResult,
    LintRunner,
    all_passes,
    lint_snapshot,
    pass_names,
    register_pass,
    stanza_kind,
    touched_kinds,
)
from repro.lint.output import format_json, format_sarif, format_text
from repro.lint import passes as _passes  # populate the registry

__all__ = [
    "Diagnostic",
    "Severity",
    "Suppression",
    "count_by_severity",
    "max_severity",
    "resolve_lines",
    "STANZA_KINDS",
    "LintPass",
    "LintResult",
    "LintRunner",
    "all_passes",
    "lint_snapshot",
    "pass_names",
    "register_pass",
    "stanza_kind",
    "touched_kinds",
    "format_json",
    "format_sarif",
    "format_text",
]

del _passes
