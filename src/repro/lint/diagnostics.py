"""Diagnostics: what a lint pass reports.

A :class:`Diagnostic` is one finding, anchored to a device and (usually) a
stanza of its canonical rendering (:mod:`repro.config.lang`), graded by
:class:`Severity`, and attributed to the pass that produced it via a stable
rule ``code`` (e.g. ``REF001``).  Anchors are resolved to 1-based line
numbers of the rendered ``configs/<device>.cfg`` file on demand
(:func:`resolve_lines`), which is what the SARIF output points editors at.

:class:`Suppression` implements the standard triage escape hatch: shell-glob
patterns over ``(code, device, stanza)``, matched with :mod:`fnmatch`.
Suppressed findings are dropped from the result but counted, so a clean run
still reveals how much is being hidden.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config.lang import device_lines
from repro.config.schema import Snapshot


class Severity(enum.IntEnum):
    """Finding severity; ordering is meaningful (``ERROR > WARNING``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {
            Severity.ERROR: "error",
            Severity.WARNING: "warning",
            Severity.INFO: "note",
        }[self]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``stanza`` uses the stanza keys of :func:`repro.config.lang.device_lines`
    (empty string for top-level lines); ``line_text`` optionally pins the
    finding to one rendered line inside that stanza; ``line`` is filled in by
    :func:`resolve_lines`.
    """

    code: str
    severity: Severity
    device: str
    message: str
    stanza: str = ""
    line_text: Optional[str] = None
    line: Optional[int] = None
    pass_name: str = ""

    def anchor(self) -> str:
        """Human-readable location, e.g. ``r0[interface eth0]``."""
        where = self.stanza or "top"
        if self.line is not None:
            where += f":{self.line}"
        return f"{self.device}[{where}]"

    def __str__(self) -> str:
        return f"{self.severity}: {self.code} {self.anchor()}: {self.message}"

    def fingerprint(self) -> str:
        """Stable identity hash over code, device, object path, and message
        — deliberately *not* over line numbers, so CI diffing of lint
        results survives unrelated edits that shift the rendering."""
        basis = "\x1f".join(
            (
                self.code,
                self.device,
                self.stanza or "top",
                self.line_text or "",
                self.message,
            )
        )
        return hashlib.sha256(basis.encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "device": self.device,
            "stanza": self.stanza,
            "message": self.message,
            "pass": self.pass_name,
            "fingerprint": self.fingerprint(),
        }
        if self.line is not None:
            out["line"] = self.line
        return out


@dataclass(frozen=True)
class Suppression:
    """Mute diagnostics matching shell-glob patterns.

    Patterns match case-sensitively via :func:`fnmatch.fnmatchcase`; the
    default patterns mute a rule code everywhere.  The CLI spelling is
    ``CODE[:device[:stanza]]``.
    """

    code: str
    device: str = "*"
    stanza: str = "*"

    def matches(self, diagnostic: Diagnostic) -> bool:
        return (
            fnmatchcase(diagnostic.code, self.code)
            and fnmatchcase(diagnostic.device, self.device)
            and fnmatchcase(diagnostic.stanza or "top", self.stanza)
        )

    @classmethod
    def parse(cls, text: str) -> "Suppression":
        parts = text.split(":")
        if not 1 <= len(parts) <= 3 or not parts[0]:
            raise ValueError(
                f"bad suppression {text!r} (expected CODE[:device[:stanza]])"
            )
        return cls(*parts)


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], suppressions: Iterable[Suppression]
) -> Tuple[List[Diagnostic], int]:
    """Filter out suppressed diagnostics; returns (kept, suppressed count)."""
    rules = list(suppressions)
    kept: List[Diagnostic] = []
    muted = 0
    for diag in diagnostics:
        if any(rule.matches(diag) for rule in rules):
            muted += 1
        else:
            kept.append(diag)
    return kept, muted


def resolve_lines(
    diagnostics: Iterable[Diagnostic], snapshot: Snapshot
) -> List[Diagnostic]:
    """Fill in 1-based line numbers against the canonical rendering.

    A diagnostic is anchored at its ``line_text`` within its stanza when
    given (and found), else at the stanza's header line; top-level findings
    without a line text anchor at line 1 (the ``hostname`` line).
    """
    index: Dict[str, Dict[Tuple[str, Optional[str]], int]] = {}
    resolved = []
    for diag in diagnostics:
        if diag.device not in index:
            index[diag.device] = _line_index(snapshot, diag.device)
        lines = index[diag.device]
        line = lines.get((diag.stanza, diag.line_text))
        if line is None:
            line = lines.get((diag.stanza, None), 1)
        resolved.append(replace(diag, line=line))
    return resolved


def _line_index(
    snapshot: Snapshot, device: str
) -> Dict[Tuple[str, Optional[str]], int]:
    """Map (stanza, stripped line text) and (stanza, None) to line numbers."""
    lines: Dict[Tuple[str, Optional[str]], int] = {}
    if device not in snapshot.devices:
        return lines
    for number, (stanza, text) in enumerate(
        device_lines(snapshot.devices[device]), start=1
    ):
        lines.setdefault((stanza, None), number)
        lines.setdefault((stanza, text.strip()), number)
    return lines


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or ``None`` when empty."""
    severities = [diag.severity for diag in diagnostics]
    return max(severities) if severities else None


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[Severity, int]:
    counts: Dict[Severity, int] = {}
    for diag in diagnostics:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts


__all__ = [
    "Severity",
    "Diagnostic",
    "Suppression",
    "apply_suppressions",
    "resolve_lines",
    "max_severity",
    "count_by_severity",
]
