"""The lint pass framework: pass registry, runner, and incremental scoping.

A :class:`LintPass` analyzes either one device at a time (``device_scoped``)
or the whole snapshot (cross-device passes like OSPF adjacency checking).
Every pass declares a **scope**: the set of stanza *kinds* it reads
(``interface``, ``acl``, ``route-map``, ``router-ospf``, ``router-bgp``,
``top``).  The scope powers the incremental mode, which mirrors the paper's
pipeline: given a :class:`~repro.config.diff.LineDiff` the runner maps each
changed line to its stanza kind, then

- re-runs a device-scoped pass only on the touched devices whose touched
  kinds intersect the pass's scope (carrying forward the previous result's
  diagnostics for untouched devices), and
- re-runs a snapshot-scoped pass only if *any* touched kind intersects its
  scope.

``LintResult.passes_run`` records which passes actually executed, so tests
and benchmarks can assert that a small diff re-runs strictly fewer passes
than a full lint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.config.diff import LineDiff
from repro.config.schema import DeviceConfig, Snapshot
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    Suppression,
    apply_suppressions,
    count_by_severity,
    max_severity,
)
from repro.telemetry import get_metrics, names, span

#: The stanza kinds a pass can subscribe to.  ``top`` covers top-level lines
#: (hostname and ``ip route``); the rest follow the stanza headers of
#: :func:`repro.config.lang.device_lines`.
STANZA_KINDS = (
    "top",
    "interface",
    "acl",
    "route-map",
    "router-ospf",
    "router-bgp",
)


def stanza_kind(stanza: str) -> str:
    """Classify a diff stanza key into one of :data:`STANZA_KINDS`."""
    if stanza.startswith("interface "):
        return "interface"
    if stanza.startswith("ip access-list "):
        return "acl"
    if stanza.startswith("route-map "):
        return "route-map"
    if stanza.startswith("router ospf"):
        return "router-ospf"
    if stanza.startswith("router bgp"):
        return "router-bgp"
    return "top"


class LintPass:
    """Base class for lint passes.

    Subclasses set the class attributes and override :meth:`check_device`
    (when ``device_scoped``) or :meth:`check_snapshot` (otherwise).  Passes
    must be stateless: the runner may invoke them on any subset of devices
    in any order.
    """

    #: Unique pass name (registry key).
    name: str = ""
    #: Stable rule-code prefix, e.g. ``REF`` — individual findings use
    #: codes like ``REF001``.
    code: str = ""
    #: One-line description (also the SARIF rule description).
    description: str = ""
    #: Stanza kinds this pass reads (see :data:`STANZA_KINDS`).
    scope: frozenset = frozenset()
    #: Device-scoped passes see one device at a time and are incrementally
    #: re-run per device; snapshot-scoped passes see the whole snapshot.
    device_scoped: bool = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def _diag(
        self,
        code_suffix: str,
        severity: Severity,
        device: str,
        message: str,
        stanza: str = "",
        line_text: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            code=f"{self.code}{code_suffix}",
            severity=severity,
            device=device,
            message=message,
            stanza=stanza,
            line_text=line_text,
            pass_name=self.name,
        )


#: name -> pass class, in registration order.
_REGISTRY: Dict[str, type] = {}


def register_pass(cls: type) -> type:
    """Class decorator adding a :class:`LintPass` to the default registry."""
    if not issubclass(cls, LintPass):
        raise TypeError(f"{cls!r} is not a LintPass")
    if not cls.name or not cls.code:
        raise ValueError(f"{cls.__name__} must define name and code")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate lint pass name {cls.name!r}")
    bad = set(cls.scope) - set(STANZA_KINDS)
    if bad:
        raise ValueError(f"{cls.__name__}: unknown scope kinds {sorted(bad)}")
    _REGISTRY[cls.name] = cls
    return cls


def all_passes() -> List[LintPass]:
    """Fresh instances of every registered pass, in registration order."""
    import repro.lint.passes  # noqa: F401  (populates the registry)

    return [cls() for cls in _REGISTRY.values()]


def pass_names() -> List[str]:
    import repro.lint.passes  # noqa: F401

    return list(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one lint run (full or incremental)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Names of passes that actually executed in this run.
    passes_run: List[str] = field(default_factory=list)
    #: Number of (pass, device) executions plus snapshot-pass executions —
    #: the unit of work incremental lint saves.
    units_run: int = 0
    #: Units whose previous result was carried forward instead of re-run
    #: (always 0 for full runs).
    units_reused: int = 0
    suppressed: int = 0
    elapsed: float = 0.0
    #: Per-pass diagnostics keyed by (pass name, device or None), carried
    #: between incremental runs.
    _by_unit: Dict[Tuple[str, Optional[str]], List[Diagnostic]] = field(
        default_factory=dict, repr=False
    )

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def max_severity(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches ``fail_on``."""
        worst = self.max_severity()
        return worst is None or worst < fail_on

    def summary(self) -> str:
        counts = count_by_severity(self.diagnostics)
        parts = [
            f"{counts[severity]} {severity}(s)"
            for severity in sorted(counts, reverse=True)
        ]
        body = ", ".join(parts) if parts else "clean"
        extra = f", {self.suppressed} suppressed" if self.suppressed else ""
        return (
            f"lint: {body} ({len(self.passes_run)} pass(es), "
            f"{self.units_run} unit(s) run{extra})"
        )


class LintRunner:
    """Runs a set of passes over snapshots, full or diff-scoped."""

    def __init__(
        self,
        passes: Optional[Sequence[LintPass]] = None,
        suppressions: Iterable[Suppression] = (),
    ) -> None:
        self.passes = list(passes) if passes is not None else all_passes()
        self.suppressions = list(suppressions)

    # -- full runs ---------------------------------------------------------

    def run(self, snapshot: Snapshot) -> LintResult:
        """Lint the whole snapshot with every pass."""
        started = time.perf_counter()
        result = LintResult()
        with span(names.SPAN_LINT_RUN) as sp:
            for lint_pass in self.passes:
                if lint_pass.device_scoped:
                    for device in snapshot.iter_devices():
                        self._run_unit(
                            result, lint_pass, snapshot, device.hostname
                        )
                else:
                    self._run_unit(result, lint_pass, snapshot, None)
                result.passes_run.append(lint_pass.name)
            self._finish(result, started)
            sp.set("units_run", result.units_run)
            sp.set("diagnostics", len(result.diagnostics))
        self._record_metrics(result)
        return result

    # -- incremental runs --------------------------------------------------

    def run_incremental(
        self, snapshot: Snapshot, diff: LineDiff, previous: LintResult
    ) -> LintResult:
        """Re-lint only what ``diff`` can affect, reusing ``previous``.

        ``snapshot`` is the post-change snapshot; ``previous`` must be the
        result of linting the pre-change snapshot with the same passes.
        """
        started = time.perf_counter()
        touched = touched_kinds(diff)
        touched_all: Set[str] = set()
        for kinds in touched.values():
            touched_all |= kinds

        result = LintResult()
        live_devices = set(snapshot.devices)
        with span(names.SPAN_LINT_INCREMENTAL) as sp:
            for lint_pass in self.passes:
                ran = False
                if lint_pass.device_scoped:
                    for device_name in sorted(live_devices):
                        kinds = touched.get(device_name)
                        if kinds is not None and kinds & lint_pass.scope:
                            self._run_unit(
                                result, lint_pass, snapshot, device_name
                            )
                            ran = True
                        else:
                            self._carry(
                                result, previous, lint_pass.name, device_name
                            )
                else:
                    if touched_all & lint_pass.scope:
                        self._run_unit(result, lint_pass, snapshot, None)
                        ran = True
                    else:
                        self._carry(result, previous, lint_pass.name, None)
                if ran:
                    result.passes_run.append(lint_pass.name)
            self._finish(result, started)
            sp.set("units_run", result.units_run)
            sp.set("units_reused", result.units_reused)
            sp.set("diagnostics", len(result.diagnostics))
        self._record_metrics(result)
        return result

    # -- internals ---------------------------------------------------------

    def _run_unit(
        self,
        result: LintResult,
        lint_pass: LintPass,
        snapshot: Snapshot,
        device_name: Optional[str],
    ) -> None:
        if device_name is None:
            found = list(lint_pass.check_snapshot(snapshot))
        else:
            found = list(
                lint_pass.check_device(snapshot, snapshot.devices[device_name])
            )
        kept, muted = apply_suppressions(found, self.suppressions)
        result._by_unit[(lint_pass.name, device_name)] = kept
        result.suppressed += muted
        result.units_run += 1

    @staticmethod
    def _carry(
        result: LintResult,
        previous: LintResult,
        pass_name: str,
        device_name: Optional[str],
    ) -> None:
        result.units_reused += 1
        cached = previous._by_unit.get((pass_name, device_name))
        if cached:
            result._by_unit[(pass_name, device_name)] = list(cached)

    @staticmethod
    def _record_metrics(result: LintResult) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter(names.LINT_UNITS_RUN).inc(result.units_run)
        metrics.counter(names.LINT_UNITS_REUSED).inc(result.units_reused)
        metrics.counter(names.LINT_DIAGNOSTICS).inc(len(result.diagnostics))

    @staticmethod
    def _finish(result: LintResult, started: float) -> None:
        for key in sorted(
            result._by_unit, key=lambda k: (k[1] is None, k[1] or "", k[0])
        ):
            result.diagnostics.extend(result._by_unit[key])
        result.elapsed = time.perf_counter() - started


def touched_kinds(diff: LineDiff) -> Dict[str, Set[str]]:
    """Map each touched device to the stanza kinds its changed lines hit."""
    touched: Dict[str, Set[str]] = {}
    for line in list(diff.inserted) + list(diff.deleted):
        touched.setdefault(line.device, set()).add(stanza_kind(line.stanza))
    return touched


def lint_snapshot(
    snapshot: Snapshot, suppressions: Iterable[Suppression] = ()
) -> LintResult:
    """Convenience: full lint with the default pass registry."""
    return LintRunner(suppressions=suppressions).run(snapshot)
