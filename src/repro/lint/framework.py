"""The lint pass framework: pass registry, runner, and incremental scoping.

A :class:`LintPass` analyzes one device at a time (``device_scoped``), the
whole snapshot (legacy snapshot-scoped passes), or — via the
:class:`CrossDevicePass` subclass — a **connected neighborhood** of the
:class:`~repro.lint.graph.NetworkDependencyGraph`.  Every pass declares a
**scope**: the set of stanza *kinds* it reads (``interface``, ``acl``,
``route-map``, ``router-ospf``, ``router-bgp``, ``top``).  The scope powers
the incremental mode, which mirrors the paper's pipeline: given a
:class:`~repro.config.diff.LineDiff` the runner maps each changed line to
its stanza kind, then

- re-runs a device-scoped pass only on the touched devices whose touched
  kinds intersect the pass's scope (carrying forward the previous result's
  diagnostics for untouched devices),
- re-runs a snapshot-scoped pass only if *any* touched kind intersects its
  scope, and
- re-runs a cross-device pass only on the **dependency closure** of the
  touched devices: the coupling-graph ball of the pass's declared
  ``radius`` around the seeds (or the seeds' connected components when
  ``radius`` is ``None``), computed over the *union* of the old and new
  coupling graphs so that changes which add or remove coupling are scoped
  soundly.  Topology-only changes (a link added or removed with no config
  line touched) are detected by comparing the cached graph's link set
  against the new snapshot and seed the endpoints.

The equivalence guarantee the differential tests pin down: a cross-device
finding attributed to device *d* may only depend on configuration within
``radius`` coupling hops of *d*; any change to that configuration seeds a
device within ``radius`` of *d*, so *d* lands inside the re-analyzed
region and its findings are recomputed — everything else is carried
forward bucket-for-bucket, making incremental output byte-identical to a
full run.

``LintResult.passes_run`` records which passes actually executed, and
``objects_scanned`` counts the dependency-graph objects the run analyzed,
so tests and benchmarks can assert that a small diff re-runs strictly
fewer passes and analyzes a small fraction of the network.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.config.diff import LineDiff
from repro.config.schema import DeviceConfig, Snapshot
from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    Suppression,
    apply_suppressions,
    count_by_severity,
    max_severity,
)
from repro.lint.graph import (
    NetworkDependencyGraph,
    graph_for,
    topology_touched_devices,
    union_coupling,
)
from repro.telemetry import get_metrics, names, span

#: The stanza kinds a pass can subscribe to.  ``top`` covers top-level lines
#: (hostname and ``ip route``); the rest follow the stanza headers of
#: :func:`repro.config.lang.device_lines`.
STANZA_KINDS = (
    "top",
    "interface",
    "acl",
    "route-map",
    "router-ospf",
    "router-bgp",
)


def stanza_kind(stanza: str) -> str:
    """Classify a diff stanza key into one of :data:`STANZA_KINDS`."""
    if stanza.startswith("interface "):
        return "interface"
    if stanza.startswith("ip access-list "):
        return "acl"
    if stanza.startswith("route-map "):
        return "route-map"
    if stanza.startswith("router ospf"):
        return "router-ospf"
    if stanza.startswith("router bgp"):
        return "router-bgp"
    return "top"


class LintPass:
    """Base class for lint passes.

    Subclasses set the class attributes and override :meth:`check_device`
    (when ``device_scoped``), :meth:`check_snapshot` (snapshot-scoped), or
    — for :class:`CrossDevicePass` subclasses — :meth:`check_region`.
    Passes must be stateless: the runner may invoke them on any subset of
    devices in any order.
    """

    #: Unique pass name (registry key).
    name: str = ""
    #: Stable rule-code prefix, e.g. ``REF`` — individual findings use
    #: codes like ``REF001``.
    code: str = ""
    #: One-line description (also the SARIF rule description).
    description: str = ""
    #: Stanza kinds this pass reads (see :data:`STANZA_KINDS`).
    scope: frozenset = frozenset()
    #: Device-scoped passes see one device at a time and are incrementally
    #: re-run per device; snapshot-scoped passes see the whole snapshot.
    device_scoped: bool = True
    #: True for :class:`CrossDevicePass` subclasses.
    cross_device: bool = False
    #: Per-code documentation for ``repro lint --explain`` (full code ->
    #: explanation text).
    docs: Dict[str, str] = {}

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def _diag(
        self,
        code_suffix: str,
        severity: Severity,
        device: str,
        message: str,
        stanza: str = "",
        line_text: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            code=f"{self.code}{code_suffix}",
            severity=severity,
            device=device,
            message=message,
            stanza=stanza,
            line_text=line_text,
            pass_name=self.name,
        )


class CrossDevicePass(LintPass):
    """A pass whose unit of analysis is a neighborhood of the dependency
    graph rather than a single device or the whole snapshot.

    Subclasses override :meth:`check_region` and may only emit findings
    attributed to devices in ``targets`` whose evidence lies within
    ``radius`` coupling hops of the attributed device (``radius=None``
    widens the contract to the device's connected component).  The runner
    enforces the attribution half by filtering, and relies on the radius
    half for incremental soundness.
    """

    device_scoped = False
    cross_device = True
    #: Coupling-graph radius of the evidence a finding may depend on.
    #: ``None`` means "the attributed device's connected component".
    radius: Optional[int] = 1

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


#: name -> pass class, in registration order.
_REGISTRY: Dict[str, type] = {}


def register_pass(cls: type) -> type:
    """Class decorator adding a :class:`LintPass` to the default registry."""
    if not issubclass(cls, LintPass):
        raise TypeError(f"{cls!r} is not a LintPass")
    if not cls.name or not cls.code:
        raise ValueError(f"{cls.__name__} must define name and code")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate lint pass name {cls.name!r}")
    bad = set(cls.scope) - set(STANZA_KINDS)
    if bad:
        raise ValueError(f"{cls.__name__}: unknown scope kinds {sorted(bad)}")
    _REGISTRY[cls.name] = cls
    return cls


def all_passes() -> List[LintPass]:
    """Fresh instances of every registered pass, in registration order."""
    import repro.lint.passes  # noqa: F401  (populates the registry)

    return [cls() for cls in _REGISTRY.values()]


def pass_names() -> List[str]:
    import repro.lint.passes  # noqa: F401

    return list(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one lint run (full or incremental)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Names of passes that actually executed in this run.
    passes_run: List[str] = field(default_factory=list)
    #: Number of (pass, device) executions plus snapshot-pass executions —
    #: the unit of work incremental lint saves.
    units_run: int = 0
    #: Units whose previous result was carried forward instead of re-run
    #: (always 0 for full runs).
    units_reused: int = 0
    suppressed: int = 0
    elapsed: float = 0.0
    #: Dependency-graph objects analyzed by the executed units (a device
    #: unit scans its device's objects; a snapshot unit scans them all).
    objects_scanned: int = 0
    #: Total objects in the snapshot's dependency graph.
    objects_total: int = 0
    #: Per-pass diagnostics keyed by (pass name, device or None), carried
    #: between incremental runs.
    _by_unit: Dict[Tuple[str, Optional[str]], List[Diagnostic]] = field(
        default_factory=dict, repr=False
    )
    #: The dependency graph of the linted snapshot, reused (patched, not
    #: rebuilt) by the next incremental run.
    graph: Optional[NetworkDependencyGraph] = field(
        default=None, repr=False, compare=False
    )

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def max_severity(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches ``fail_on``."""
        worst = self.max_severity()
        return worst is None or worst < fail_on

    def scan_ratio(self) -> float:
        """Fraction of the dependency graph this run analyzed, relative to
        a full run with the same passes (may exceed 1.0 only if a pass
        scans devices repeatedly)."""
        if not self.objects_total:
            return 0.0
        return self.objects_scanned / self.objects_total

    def summary(self) -> str:
        counts = count_by_severity(self.diagnostics)
        parts = [
            f"{counts[severity]} {severity}(s)"
            for severity in sorted(counts, reverse=True)
        ]
        body = ", ".join(parts) if parts else "clean"
        extra = f", {self.suppressed} suppressed" if self.suppressed else ""
        return (
            f"lint: {body} ({len(self.passes_run)} pass(es), "
            f"{self.units_run} unit(s) run{extra})"
        )


class LintRunner:
    """Runs a set of passes over snapshots, full or diff-scoped."""

    def __init__(
        self,
        passes: Optional[Sequence[LintPass]] = None,
        suppressions: Iterable[Suppression] = (),
    ) -> None:
        self.passes = list(passes) if passes is not None else all_passes()
        self.suppressions = list(suppressions)

    # -- full runs ---------------------------------------------------------

    def run(self, snapshot: Snapshot) -> LintResult:
        """Lint the whole snapshot with every pass."""
        started = time.perf_counter()
        result = LintResult()
        graph = graph_for(snapshot)
        result.graph = graph
        result.objects_total = graph.num_objects()
        live_devices = sorted(snapshot.devices)
        with span(names.SPAN_LINT_RUN) as sp:
            for lint_pass in self.passes:
                with self._pass_telemetry(result, lint_pass):
                    if lint_pass.cross_device:
                        self._run_region(
                            result, lint_pass, snapshot, graph,
                            set(live_devices),
                        )
                    elif lint_pass.device_scoped:
                        for device_name in live_devices:
                            self._run_unit(
                                result, lint_pass, snapshot, graph, device_name
                            )
                    else:
                        self._run_unit(result, lint_pass, snapshot, graph, None)
                result.passes_run.append(lint_pass.name)
            self._finish(result, started)
            sp.set("units_run", result.units_run)
            sp.set("objects_scanned", result.objects_scanned)
            sp.set("diagnostics", len(result.diagnostics))
        self._record_metrics(result)
        return result

    # -- incremental runs --------------------------------------------------

    def run_incremental(
        self, snapshot: Snapshot, diff: LineDiff, previous: LintResult
    ) -> LintResult:
        """Re-lint only what ``diff`` can affect, reusing ``previous``.

        ``snapshot`` is the post-change snapshot; ``previous`` must be the
        result of linting the pre-change snapshot with the same passes.
        """
        started = time.perf_counter()
        touched = touched_kinds(diff)
        previous_graph = previous.graph
        if previous_graph is not None:
            graph = previous_graph.patched(snapshot, set(touched))
        else:
            graph = graph_for(snapshot)
        # A link added or removed with no config line changed still moves
        # cross-device findings; seed the endpoints as if their interface
        # stanzas had been edited.
        for device_name in topology_touched_devices(previous_graph, graph):
            touched.setdefault(device_name, set()).add("interface")
        coupling = union_coupling(previous_graph, graph)
        touched_all: Set[str] = set()
        for kinds in touched.values():
            touched_all |= kinds

        result = LintResult()
        result.graph = graph
        result.objects_total = graph.num_objects()
        live_devices = set(snapshot.devices)
        with span(names.SPAN_LINT_INCREMENTAL) as sp:
            for lint_pass in self.passes:
                ran = False
                with self._pass_telemetry(result, lint_pass):
                    if lint_pass.cross_device:
                        if previous_graph is None:
                            # No graph to diff against: the sound fallback
                            # is a full region run.
                            targets = set(live_devices)
                        else:
                            seeds = {
                                device_name
                                for device_name, kinds in touched.items()
                                if kinds & lint_pass.scope
                            }
                            targets = self._closure(
                                graph, seeds, lint_pass.radius, coupling
                            ) & live_devices
                        if targets:
                            self._run_region(
                                result, lint_pass, snapshot, graph, targets
                            )
                            ran = True
                        for device_name in sorted(live_devices - targets):
                            self._carry(
                                result, previous, lint_pass.name, device_name
                            )
                    elif lint_pass.device_scoped:
                        for device_name in sorted(live_devices):
                            kinds = touched.get(device_name)
                            if kinds is not None and kinds & lint_pass.scope:
                                self._run_unit(
                                    result, lint_pass, snapshot, graph,
                                    device_name,
                                )
                                ran = True
                            else:
                                self._carry(
                                    result, previous, lint_pass.name,
                                    device_name,
                                )
                    else:
                        if touched_all & lint_pass.scope:
                            self._run_unit(
                                result, lint_pass, snapshot, graph, None
                            )
                            ran = True
                        else:
                            self._carry(result, previous, lint_pass.name, None)
                if ran:
                    result.passes_run.append(lint_pass.name)
            self._finish(result, started)
            sp.set("units_run", result.units_run)
            sp.set("units_reused", result.units_reused)
            sp.set("objects_scanned", result.objects_scanned)
            sp.set("diagnostics", len(result.diagnostics))
        self._record_metrics(result)
        return result

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _closure(
        graph: NetworkDependencyGraph,
        seeds: Set[str],
        radius: Optional[int],
        coupling: Dict[str, Set[str]],
    ) -> Set[str]:
        if not seeds:
            return set()
        if radius is None:
            return graph.component(seeds, coupling)
        return graph.ball(seeds, radius, coupling)

    def _run_unit(
        self,
        result: LintResult,
        lint_pass: LintPass,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        device_name: Optional[str],
    ) -> None:
        if device_name is None:
            found = list(lint_pass.check_snapshot(snapshot))
            result.objects_scanned += graph.num_objects()
        else:
            found = list(
                lint_pass.check_device(snapshot, snapshot.devices[device_name])
            )
            result.objects_scanned += graph.num_device_objects(device_name)
        kept, muted = apply_suppressions(found, self.suppressions)
        result._by_unit[(lint_pass.name, device_name)] = kept
        result.suppressed += muted
        result.units_run += 1

    def _run_region(
        self,
        result: LintResult,
        lint_pass: LintPass,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> None:
        found = list(lint_pass.check_region(snapshot, graph, set(targets)))
        buckets: Dict[str, List[Diagnostic]] = {
            device_name: [] for device_name in targets
        }
        for diag in found:
            if diag.device in buckets:
                buckets[diag.device].append(diag)
        for device_name in sorted(targets):
            kept, muted = apply_suppressions(
                buckets[device_name], self.suppressions
            )
            result._by_unit[(lint_pass.name, device_name)] = kept
            result.suppressed += muted
            result.units_run += 1
            result.objects_scanned += graph.num_device_objects(device_name)

    @staticmethod
    def _carry(
        result: LintResult,
        previous: LintResult,
        pass_name: str,
        device_name: Optional[str],
    ) -> None:
        result.units_reused += 1
        cached = previous._by_unit.get((pass_name, device_name))
        if cached:
            result._by_unit[(pass_name, device_name)] = list(cached)

    def _pass_telemetry(self, result: LintResult, lint_pass: LintPass):
        return _PassTelemetry(result, lint_pass)

    @staticmethod
    def _record_metrics(result: LintResult) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter(names.LINT_UNITS_RUN).inc(result.units_run)
        metrics.counter(names.LINT_UNITS_REUSED).inc(result.units_reused)
        metrics.counter(names.LINT_DIAGNOSTICS).inc(len(result.diagnostics))
        metrics.counter(names.LINT_OBJECTS_SCANNED).inc(result.objects_scanned)

    @staticmethod
    def _finish(result: LintResult, started: float) -> None:
        for key in sorted(
            result._by_unit, key=lambda k: (k[1] is None, k[1] or "", k[0])
        ):
            result.diagnostics.extend(result._by_unit[key])
        result.elapsed = time.perf_counter() - started


class _PassTelemetry:
    """Per-pass ``lint.pass.<CODE>`` span plus findings/objects counters,
    measured as deltas over the shared result object."""

    def __init__(self, result: LintResult, lint_pass: LintPass) -> None:
        self._result = result
        self._pass = lint_pass
        self._ctx = None
        self._sp = None
        self._units = 0
        self._objects = 0
        self._findings = 0

    def _found(self) -> int:
        return sum(len(v) for v in self._result._by_unit.values())

    def __enter__(self) -> "_PassTelemetry":
        self._units = self._result.units_run
        self._objects = self._result.objects_scanned
        self._findings = self._found()
        self._ctx = span(
            names.SPAN_LINT_PASS_PREFIX + self._pass.code,
            pass_name=self._pass.name,
        )
        self._sp = self._ctx.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        units = self._result.units_run - self._units
        objects = self._result.objects_scanned - self._objects
        findings = self._found() - self._findings
        if exc_type is None and self._sp is not None:
            self._sp.set("units", units)
            self._sp.set("findings", findings)
            self._sp.set("objects", objects)
        assert self._ctx is not None
        self._ctx.__exit__(exc_type, exc, tb)
        if exc_type is None and units:
            metrics = get_metrics()
            if metrics.enabled:
                labels = {"pass": self._pass.code}
                metrics.counter(names.LINT_PASS_FINDINGS, **labels).inc(
                    findings
                )
                metrics.counter(names.LINT_PASS_OBJECTS, **labels).inc(objects)
        return False


def touched_kinds(diff: LineDiff) -> Dict[str, Set[str]]:
    """Map each touched device to the stanza kinds its changed lines hit."""
    touched: Dict[str, Set[str]] = {}
    for line in list(diff.inserted) + list(diff.deleted):
        touched.setdefault(line.device, set()).add(stanza_kind(line.stanza))
    return touched


def lint_snapshot(
    snapshot: Snapshot, suppressions: Iterable[Suppression] = ()
) -> LintResult:
    """Convenience: full lint with the default pass registry."""
    return LintRunner(suppressions=suppressions).run(snapshot)
