"""The network-wide dependency graph behind cross-device lint.

Delta-net's lesson is that incrementality needs an explicit dependency
structure so an update touches only what it overlaps.  This module builds
that structure for the static-analysis layer: a
:class:`NetworkDependencyGraph` whose nodes are ``(device, object)`` pairs
(:class:`ObjectRef`) — interfaces, OSPF/BGP processes, BGP neighbors, ACLs,
route maps, static routes, redistribution statements — and whose edges
capture both intra-device references (an interface binding an ACL, a BGP
neighbor riding an interface) and **cross-device coupling**:

- ``link``          the two configured endpoint interfaces of a topology link
- ``bgp-session``   the two neighbor statements of one peering
- ``ospf-adjacency``  the OSPF processes adjacent over an enabled link
- ``next-hop``      a static route resolving to a peer device's interface

The graph serves three roles for ``repro.lint``:

1. **Scoping.**  Its device-level projection (:meth:`device_neighbors`,
   built from the physical topology, which every cross-device relation in
   this model rides on) answers "which devices can a change at device D
   affect within radius r" (:meth:`ball`) or "within D's connected
   component" (:meth:`component`).  Incremental lint re-runs a
   cross-device pass exactly on that closure.
2. **Accounting.**  Object counts per device are the denominator of the
   "objects analyzed" work metric reported by benchmarks and telemetry.
3. **Caching.**  Graphs are fingerprinted per device configuration
   (:func:`device_fingerprint`) plus topology, memoized by overall
   fingerprint (:func:`graph_for`), and **incrementally patched**
   (:meth:`NetworkDependencyGraph.patched`): only changed devices'
   objects, fingerprints, and intra-device edges are recomputed;
   cross-device edges are rebuilt from the (small) per-link summaries.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.config.diff import LineDiff
from repro.config.lang import render_device
from repro.config.schema import DeviceConfig, Snapshot
from repro.net.topology import InterfaceId

# -- object kinds ------------------------------------------------------------

KIND_INTERFACE = "interface"
KIND_ACL = "acl"
KIND_ROUTE_MAP = "route-map"
KIND_OSPF = "ospf"
KIND_BGP = "bgp"
KIND_BGP_NEIGHBOR = "bgp-neighbor"
KIND_STATIC_ROUTE = "static-route"
KIND_REDISTRIBUTION = "redistribution"


@dataclass(frozen=True, order=True)
class ObjectRef:
    """One configuration object: a node of the dependency graph."""

    device: str
    kind: str
    name: str

    def path(self) -> str:
        """Stable path string, e.g. ``r0/interface/eth0``."""
        return f"{self.device}/{self.kind}/{self.name}"

    def __str__(self) -> str:
        return self.path()


Edge = Tuple[ObjectRef, ObjectRef, str]
#: A topology link keyed by its two (device, interface) endpoints, ordered.
LinkKey = Tuple[Tuple[str, str], Tuple[str, str]]


def device_fingerprint(config: DeviceConfig) -> str:
    """Hash of the canonical rendering — the graph-cache key per device."""
    return hashlib.sha256(render_device(config).encode()).hexdigest()


def _link_key(a: InterfaceId, b: InterfaceId) -> LinkKey:
    ends = sorted([(a.node, a.name), (b.node, b.name)])
    return (ends[0], ends[1])


def _static_route_name(route) -> str:
    via = (
        route.next_hop_interface
        if route.next_hop_interface is not None
        else f"{route.next_hop_ip}"
    )
    return f"{route.prefix}@{via}"


def _device_contribution(
    config: DeviceConfig,
) -> Tuple[List[ObjectRef], List[Edge]]:
    """The objects and intra-device edges contributed by one device.

    Pure function of the device configuration — reused verbatim by
    :meth:`NetworkDependencyGraph.patched` for unchanged devices.
    """
    dev = config.hostname
    objects: List[ObjectRef] = []
    edges: List[Edge] = []

    def ref(kind: str, name: str) -> ObjectRef:
        return ObjectRef(dev, kind, name)

    iface_refs: Dict[str, ObjectRef] = {}
    for name in sorted(config.interfaces):
        iface_refs[name] = ref(KIND_INTERFACE, name)
        objects.append(iface_refs[name])
    acl_refs: Dict[str, ObjectRef] = {}
    for name in sorted(config.acls):
        acl_refs[name] = ref(KIND_ACL, name)
        objects.append(acl_refs[name])
    for name in sorted(config.route_maps):
        objects.append(ref(KIND_ROUTE_MAP, name))

    for name in sorted(config.interfaces):
        iface = config.interfaces[name]
        for acl_name in (iface.acl_in, iface.acl_out):
            if acl_name is not None and acl_name in acl_refs:
                edges.append((iface_refs[name], acl_refs[acl_name], "binds-acl"))

    ospf_ref: Optional[ObjectRef] = None
    if config.ospf is not None:
        ospf_ref = ref(KIND_OSPF, str(config.ospf.process_id))
        objects.append(ospf_ref)
        for name in sorted(config.interfaces):
            if config.interfaces[name].ospf_enabled:
                edges.append((ospf_ref, iface_refs[name], "runs-on"))

    bgp_ref: Optional[ObjectRef] = None
    if config.bgp is not None:
        bgp_ref = ref(KIND_BGP, str(config.bgp.asn))
        objects.append(bgp_ref)
        for if_name in sorted(config.bgp.neighbors):
            neighbor_ref = ref(KIND_BGP_NEIGHBOR, if_name)
            objects.append(neighbor_ref)
            edges.append((bgp_ref, neighbor_ref, "session"))
            if if_name in iface_refs:
                edges.append((neighbor_ref, iface_refs[if_name], "on-interface"))
            neighbor = config.bgp.neighbors[if_name]
            for rm_name in (neighbor.route_map_in, neighbor.route_map_out):
                if rm_name is not None and rm_name in config.route_maps:
                    edges.append(
                        (neighbor_ref, ref(KIND_ROUTE_MAP, rm_name), "applies")
                    )

    for route in config.static_routes:
        route_ref = ref(KIND_STATIC_ROUTE, _static_route_name(route))
        objects.append(route_ref)
        if (
            route.next_hop_interface is not None
            and route.next_hop_interface in iface_refs
        ):
            edges.append(
                (route_ref, iface_refs[route.next_hop_interface], "exits-via")
            )

    for target_name, process, target_ref in (
        ("ospf", config.ospf, ospf_ref),
        ("bgp", config.bgp, bgp_ref),
    ):
        if process is None:
            continue
        for redist in process.redistribute:
            redist_ref = ref(
                KIND_REDISTRIBUTION, f"{redist.source}->{target_name}"
            )
            objects.append(redist_ref)
            if target_ref is not None:
                edges.append((redist_ref, target_ref, "feeds"))
            source_ref = {"ospf": ospf_ref, "bgp": bgp_ref}.get(redist.source)
            if source_ref is not None:
                edges.append((redist_ref, source_ref, "drains"))

    return objects, edges


def _cross_edges(snapshot: Snapshot) -> List[Edge]:
    """Cross-device coupling edges, recomputed wholesale on every patch
    (cost is O(links + sessions), not O(network configuration))."""
    edges: List[Edge] = []
    devices = snapshot.devices
    for link in snapshot.topology.links():
        a_id, b_id = link.endpoints()
        a_dev = devices.get(a_id.node)
        b_dev = devices.get(b_id.node)
        a_iface = a_dev.interfaces.get(a_id.name) if a_dev else None
        b_iface = b_dev.interfaces.get(b_id.name) if b_dev else None
        if a_iface is None or b_iface is None:
            continue
        a_ref = ObjectRef(a_id.node, KIND_INTERFACE, a_id.name)
        b_ref = ObjectRef(b_id.node, KIND_INTERFACE, b_id.name)
        edges.append((a_ref, b_ref, "link"))
        if (
            a_dev.bgp is not None
            and b_dev.bgp is not None
            and a_id.name in a_dev.bgp.neighbors
            and b_id.name in b_dev.bgp.neighbors
        ):
            edges.append(
                (
                    ObjectRef(a_id.node, KIND_BGP_NEIGHBOR, a_id.name),
                    ObjectRef(b_id.node, KIND_BGP_NEIGHBOR, b_id.name),
                    "bgp-session",
                )
            )
        if (
            a_dev.ospf is not None
            and b_dev.ospf is not None
            and a_iface.ospf_enabled
            and b_iface.ospf_enabled
            and a_iface.is_up()
            and b_iface.is_up()
        ):
            edges.append(
                (
                    ObjectRef(a_id.node, KIND_OSPF, str(a_dev.ospf.process_id)),
                    ObjectRef(b_id.node, KIND_OSPF, str(b_dev.ospf.process_id)),
                    "ospf-adjacency",
                )
            )
    for dev_name in sorted(devices):
        config = devices[dev_name]
        for route in config.static_routes:
            if route.next_hop_ip is None:
                continue
            resolved = resolve_next_hop(snapshot, config, route.next_hop_ip)
            if resolved is None:
                continue
            peer_dev, peer_iface = resolved
            edges.append(
                (
                    ObjectRef(
                        dev_name, KIND_STATIC_ROUTE, _static_route_name(route)
                    ),
                    ObjectRef(peer_dev, KIND_INTERFACE, peer_iface),
                    "next-hop",
                )
            )
    return edges


def resolve_next_hop(
    snapshot: Snapshot, config: DeviceConfig, next_hop_ip: int
) -> Optional[Tuple[str, str]]:
    """Resolve an IP next hop to the directly connected peer's
    ``(device, interface)``, when one claims the address."""
    for name in sorted(config.interfaces):
        iface = config.interfaces[name]
        if (
            iface.prefix is None
            or not iface.is_up()
            or not iface.prefix.contains_address(next_hop_ip)
        ):
            continue
        peer = snapshot.topology.neighbor_of(
            InterfaceId(config.hostname, name)
        )
        if peer is None:
            continue
        peer_dev = snapshot.devices.get(peer.node)
        peer_iface = peer_dev.interfaces.get(peer.name) if peer_dev else None
        if peer_iface is not None and peer_iface.address == next_hop_ip:
            return (peer.node, peer.name)
    return None


@dataclass
class NetworkDependencyGraph:
    """Nodes are (device, object) pairs; edges are reference and coupling
    relations.  Immutable by convention: :meth:`patched` returns a new
    graph sharing unchanged per-device contributions."""

    #: device -> objects contributed by its configuration
    objects_by_device: Dict[str, List[ObjectRef]] = field(default_factory=dict)
    #: device -> intra-device edges (pure function of its configuration)
    intra_edges: Dict[str, List[Edge]] = field(default_factory=dict)
    #: cross-device coupling edges
    cross_edges: List[Edge] = field(default_factory=list)
    #: device -> sha256 of its canonical rendering
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: the physical link set, for topology-change detection
    link_keys: FrozenSet[LinkKey] = frozenset()
    #: device-level coupling projection (topology adjacency — every
    #: cross-device relation in this model rides a physical link)
    neighbors: Dict[str, Set[str]] = field(default_factory=dict)

    _adjacency: Optional[Dict[ObjectRef, List[ObjectRef]]] = field(
        default=None, repr=False, compare=False
    )

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        snapshot: Snapshot,
        fingerprints: Optional[Dict[str, str]] = None,
    ) -> "NetworkDependencyGraph":
        graph = cls()
        for name in sorted(snapshot.devices):
            config = snapshot.devices[name]
            objects, edges = _device_contribution(config)
            graph.objects_by_device[name] = objects
            graph.intra_edges[name] = edges
            graph.fingerprints[name] = (
                fingerprints[name]
                if fingerprints is not None and name in fingerprints
                else device_fingerprint(config)
            )
        graph.cross_edges = _cross_edges(snapshot)
        graph.link_keys = frozenset(
            _link_key(*link.endpoints()) for link in snapshot.topology.links()
        )
        graph.neighbors = _device_coupling(snapshot, graph.link_keys)
        return graph

    def patched(
        self, snapshot: Snapshot, changed_devices: Iterable[str]
    ) -> "NetworkDependencyGraph":
        """A graph for ``snapshot``, recomputing only ``changed_devices``
        (plus added/removed devices); everything else is shared with
        ``self``.  Cross-device edges and the link set are rebuilt from
        the new snapshot (cheap relative to per-device contributions)."""
        graph = NetworkDependencyGraph()
        live = set(snapshot.devices)
        dirty = (set(changed_devices) & live) | (live - set(self.fingerprints))
        for name in sorted(live):
            if name in dirty:
                config = snapshot.devices[name]
                objects, edges = _device_contribution(config)
                graph.objects_by_device[name] = objects
                graph.intra_edges[name] = edges
                graph.fingerprints[name] = device_fingerprint(config)
            else:
                graph.objects_by_device[name] = self.objects_by_device[name]
                graph.intra_edges[name] = self.intra_edges[name]
                graph.fingerprints[name] = self.fingerprints[name]
        graph.cross_edges = _cross_edges(snapshot)
        graph.link_keys = frozenset(
            _link_key(*link.endpoints()) for link in snapshot.topology.links()
        )
        graph.neighbors = _device_coupling(snapshot, graph.link_keys)
        return graph

    # -- inventory ---------------------------------------------------------

    def devices(self) -> List[str]:
        return sorted(self.objects_by_device)

    def device_objects(self, device: str) -> List[ObjectRef]:
        return self.objects_by_device.get(device, [])

    def num_device_objects(self, device: str) -> int:
        return len(self.objects_by_device.get(device, ()))

    def num_objects(self) -> int:
        return sum(len(objs) for objs in self.objects_by_device.values())

    def edges(self) -> List[Edge]:
        out: List[Edge] = []
        for name in sorted(self.intra_edges):
            out.extend(self.intra_edges[name])
        out.extend(self.cross_edges)
        return out

    def num_edges(self) -> int:
        return (
            sum(len(edges) for edges in self.intra_edges.values())
            + len(self.cross_edges)
        )

    def fingerprint(self) -> str:
        """Overall graph key: per-device config hashes plus the link set."""
        digest = hashlib.sha256()
        for name in sorted(self.fingerprints):
            digest.update(name.encode())
            digest.update(self.fingerprints[name].encode())
        for key in sorted(self.link_keys):
            digest.update(repr(key).encode())
        return digest.hexdigest()

    # -- object-level closure ----------------------------------------------

    def adjacency(self) -> Dict[ObjectRef, List[ObjectRef]]:
        if self._adjacency is None:
            adj: Dict[ObjectRef, List[ObjectRef]] = {}
            for a, b, _relation in self.edges():
                adj.setdefault(a, []).append(b)
                adj.setdefault(b, []).append(a)
            self._adjacency = adj
        return self._adjacency

    def neighborhood(
        self, seeds: Iterable[ObjectRef], radius: int
    ) -> Set[ObjectRef]:
        """All objects within ``radius`` edges of any seed object."""
        adjacency = self.adjacency()
        seen: Set[ObjectRef] = set(seeds)
        frontier = deque((seed, 0) for seed in sorted(seen))
        while frontier:
            obj, depth = frontier.popleft()
            if depth >= radius:
                continue
            for peer in adjacency.get(obj, ()):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append((peer, depth + 1))
        return seen

    # -- device-level closure ----------------------------------------------

    def ball(
        self,
        seeds: Iterable[str],
        radius: int,
        coupling: Optional[Dict[str, Set[str]]] = None,
    ) -> Set[str]:
        """All devices within ``radius`` coupling hops of any seed."""
        neighbors = coupling if coupling is not None else self.neighbors
        seen: Set[str] = set(seeds)
        frontier = deque((seed, 0) for seed in sorted(seen))
        while frontier:
            device, depth = frontier.popleft()
            if depth >= radius:
                continue
            for peer in neighbors.get(device, ()):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append((peer, depth + 1))
        return seen

    def component(
        self,
        seeds: Iterable[str],
        coupling: Optional[Dict[str, Set[str]]] = None,
    ) -> Set[str]:
        """The union of the seeds' connected coupling components."""
        neighbors = coupling if coupling is not None else self.neighbors
        seen: Set[str] = set(seeds)
        frontier = deque(sorted(seen))
        while frontier:
            device = frontier.popleft()
            for peer in neighbors.get(device, ()):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return seen


def _device_coupling(
    snapshot: Snapshot, link_keys: FrozenSet[LinkKey]
) -> Dict[str, Set[str]]:
    coupling: Dict[str, Set[str]] = {
        name: set() for name in snapshot.topology.node_names()
    }
    for name in snapshot.devices:
        coupling.setdefault(name, set())
    for (a_node, _a_if), (b_node, _b_if) in link_keys:
        if a_node != b_node:
            coupling.setdefault(a_node, set()).add(b_node)
            coupling.setdefault(b_node, set()).add(a_node)
    return coupling


def union_coupling(
    old: Optional["NetworkDependencyGraph"],
    new: "NetworkDependencyGraph",
) -> Dict[str, Set[str]]:
    """Device coupling over the union of two graphs' link sets — the sound
    scoping relation for a change that may add or remove coupling."""
    if old is None:
        return new.neighbors
    merged: Dict[str, Set[str]] = {}
    for source in (old.neighbors, new.neighbors):
        for device, peers in source.items():
            merged.setdefault(device, set()).update(peers)
    return merged


def topology_touched_devices(
    old: Optional["NetworkDependencyGraph"],
    new: "NetworkDependencyGraph",
) -> Set[str]:
    """Devices incident to a link present in exactly one of the graphs —
    the seeds a topology-only change contributes to incremental lint."""
    if old is None:
        return set()
    touched: Set[str] = set()
    for key in old.link_keys ^ new.link_keys:
        (a_node, _a_if), (b_node, _b_if) = key
        touched.add(a_node)
        touched.add(b_node)
    return touched


# -- diff -> changed objects -------------------------------------------------


def changed_objects(diff: LineDiff) -> Dict[str, Set[ObjectRef]]:
    """Map each changed configuration line to the graph object it belongs
    to (best effort: top-level lines map to a device-scope marker object
    of kind ``static-route`` for ``ip route`` lines, else the device's
    whole-config marker)."""
    changed: Dict[str, Set[ObjectRef]] = {}
    for line in list(diff.inserted) + list(diff.deleted):
        ref = _object_for_line(line.device, line.stanza, line.text)
        changed.setdefault(line.device, set()).add(ref)
    return changed


def _object_for_line(device: str, stanza: str, text: str) -> ObjectRef:
    words = stanza.split()
    if stanza.startswith("interface ") and len(words) == 2:
        return ObjectRef(device, KIND_INTERFACE, words[1])
    if stanza.startswith("ip access-list ") and len(words) == 3:
        return ObjectRef(device, KIND_ACL, words[2])
    if stanza.startswith("route-map ") and len(words) == 4:
        return ObjectRef(device, KIND_ROUTE_MAP, words[1])
    if stanza.startswith("router ospf") and len(words) == 3:
        return ObjectRef(device, KIND_OSPF, words[2])
    if stanza.startswith("router bgp") and len(words) == 3:
        return ObjectRef(device, KIND_BGP, words[2])
    stripped = text.strip()
    if stripped.startswith("ip route "):
        parts = stripped.split()
        if len(parts) >= 4:
            return ObjectRef(
                device, KIND_STATIC_ROUTE, f"{parts[2]}@{parts[3]}"
            )
    return ObjectRef(device, "device", device)


# -- graph cache -------------------------------------------------------------

_GRAPH_CACHE: Dict[str, NetworkDependencyGraph] = {}
_GRAPH_CACHE_CAP = 8


def graph_for(snapshot: Snapshot) -> NetworkDependencyGraph:
    """Build (or fetch from the fingerprint-keyed cache) the dependency
    graph of ``snapshot``.  The cache makes repeated full lints of the
    same configuration (CI gates, the serve loop, ``lint --base``'s base
    run) pay for graph extraction once."""
    fingerprints = {
        name: device_fingerprint(config)
        for name, config in snapshot.devices.items()
    }
    digest = hashlib.sha256()
    for name in sorted(fingerprints):
        digest.update(name.encode())
        digest.update(fingerprints[name].encode())
    for key in sorted(
        _link_key(*link.endpoints()) for link in snapshot.topology.links()
    ):
        digest.update(repr(key).encode())
    cache_key = digest.hexdigest()
    cached = _GRAPH_CACHE.get(cache_key)
    if cached is not None:
        return cached
    graph = NetworkDependencyGraph.build(snapshot, fingerprints=fingerprints)
    if len(_GRAPH_CACHE) >= _GRAPH_CACHE_CAP:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[cache_key] = graph
    return graph


def clear_graph_cache() -> None:
    _GRAPH_CACHE.clear()


__all__ = [
    "ObjectRef",
    "NetworkDependencyGraph",
    "device_fingerprint",
    "resolve_next_hop",
    "changed_objects",
    "topology_touched_devices",
    "union_coupling",
    "graph_for",
    "clear_graph_cache",
    "KIND_INTERFACE",
    "KIND_ACL",
    "KIND_ROUTE_MAP",
    "KIND_OSPF",
    "KIND_BGP",
    "KIND_BGP_NEIGHBOR",
    "KIND_STATIC_ROUTE",
    "KIND_REDISTRIBUTION",
]
