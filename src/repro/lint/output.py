"""Lint result formatters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output is the subset GitHub code scanning and editors consume:
one run, one rule per pass finding code, and one result per diagnostic with
a physical location pointing into the snapshot's ``configs/<device>.cfg``
file (line numbers refer to the canonical rendering, which is exactly what
``save_snapshot`` writes).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.config.io import CONFIG_DIR
from repro.config.schema import Snapshot
from repro.lint.diagnostics import Diagnostic, resolve_lines
from repro.lint.framework import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"


def _located(result: LintResult, snapshot: Optional[Snapshot]) -> List[Diagnostic]:
    if snapshot is None:
        return list(result.diagnostics)
    return resolve_lines(result.diagnostics, snapshot)


def format_text(
    result: LintResult, snapshot: Optional[Snapshot] = None
) -> str:
    """One line per finding plus a trailing summary."""
    diags = _located(result, snapshot)
    lines = [str(diag) for diag in diags]
    lines.append(result.summary())
    return "\n".join(lines)


def format_json(
    result: LintResult, snapshot: Optional[Snapshot] = None
) -> str:
    diags = _located(result, snapshot)
    payload = {
        "tool": TOOL_NAME,
        "summary": result.summary(),
        "passes_run": list(result.passes_run),
        "units_run": result.units_run,
        "objects_scanned": result.objects_scanned,
        "objects_total": result.objects_total,
        "suppressed": result.suppressed,
        "elapsed_seconds": result.elapsed,
        "diagnostics": [diag.to_dict() for diag in diags],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_sarif(
    result: LintResult, snapshot: Optional[Snapshot] = None
) -> str:
    diags = _located(result, snapshot)
    rules: Dict[str, Dict] = {}
    results = []
    for diag in diags:
        rules.setdefault(
            diag.code,
            {
                "id": diag.code,
                "name": diag.pass_name or diag.code,
                "shortDescription": {"text": diag.pass_name or diag.code},
                "defaultConfiguration": {"level": diag.severity.sarif_level},
            },
        )
        region: Dict[str, int] = {}
        if diag.line is not None:
            region["startLine"] = diag.line
        location = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": f"{CONFIG_DIR}/{diag.device}.cfg",
                    "uriBaseId": "SNAPSHOT",
                },
                **({"region": region} if region else {}),
            },
            "logicalLocations": [
                {
                    "name": diag.stanza or "top",
                    "fullyQualifiedName": diag.anchor(),
                    "kind": "declaration",
                }
            ],
        }
        results.append(
            {
                "ruleId": diag.code,
                "level": diag.severity.sarif_level,
                "message": {"text": diag.message},
                "locations": [location],
                # Stable across unrelated edits: hashes the finding's code,
                # device, and object path — never line numbers.
                "partialFingerprints": {
                    "reproLintFingerprint/v1": diag.fingerprint()
                },
            }
        )
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": [rules[code] for code in sorted(rules)],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "sarif": format_sarif,
}
