"""The built-in semantic lint passes.

Fourteen pass classes covering the config-text error classes that
behavioural verification (the RealConfig pipeline) either assumes away or
reports only indirectly as policy violations.  Device-scoped passes read
one configuration; snapshot-scoped passes read global identity spaces;
cross-device passes (:class:`~repro.lint.framework.CrossDevicePass`)
analyze a neighborhood of the network dependency graph:

===========================  ======  ====================================
pass                         codes   finds
===========================  ======  ====================================
undefined-references         REF0xx  dangling ACL / route-map / interface
                                     references
shadowed-acl-entries         ACL0xx  ACL entries unreachable behind an
                                     earlier, broader entry
unreachable-route-map        RMP0xx  route-map clauses behind a broader
                                     earlier match
duplicate-identity           DUP0xx  duplicate BGP AS identity
duplicate-address            ADR0xx  duplicate addresses on links,
                                     duplicate prefixes on a device
ospf-adjacency               OSP0xx  subnet / cost / enablement asymmetry
                                     across a physical link
redistribution-cycles        RED0xx  mutual redistribution statements
                                     between protocol domains
static-route-nexthops        STA0xx  static routes whose next hop cannot
                                     resolve
shutdown-interface-config    SHD0xx  routing / filtering config bound to
                                     administratively down interfaces
link-endpoint-consistency    LNK0xx  subnet / MTU mismatch and
                                     half-configured shared links
bgp-session-consistency      BGP0xx  asymmetric / missing neighbor
                                     statements, AS mismatches, sessions
                                     on dead interfaces
cross-device-blackholes      BLK0xx  static next hops pointing at devices
                                     that drop or cannot forward
network-redistribution-loops RDL0xx  redistribution cycles that span
                                     devices over live protocol domains
partition-isolation          ISO0xx  devices or protocol speakers with no
                                     viable path to the rest of the net
===========================  ======  ====================================

Severity grading: a finding is an ERROR when it changes or breaks
forwarding behaviour outright (dangling reference, masked opposite-action
filter rule, unresolvable next hop, duplicate link address, subnet
mismatch, blackholed next hop, isolated device), a WARNING when it is very
likely unintended but functional (shadowed same-action entries, asymmetric
costs, MTU mismatch, redistribution loops), and INFO for hygiene.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.config.schema import (
    AclEntry,
    DeviceConfig,
    Snapshot,
    StaticRoute,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.framework import CrossDevicePass, LintPass, register_pass
from repro.lint.graph import NetworkDependencyGraph, resolve_next_hop
from repro.net.addr import Prefix, format_ipv4
from repro.net.topology import InterfaceId


def _static_route_line(route: StaticRoute) -> str:
    """The canonical rendering of a static route (for line anchoring)."""
    if route.next_hop_interface is not None:
        via = route.next_hop_interface
    else:
        via = format_ipv4(route.next_hop_ip)
    text = f"ip route {route.prefix} {via}"
    if route.admin_distance != 1:
        text += f" {route.admin_distance}"
    return text


def _config_iface(snapshot: Snapshot, node: str, name: str):
    device = snapshot.devices.get(node)
    if device is None:
        return None
    return device.interfaces.get(name)


@register_pass
class UndefinedReferences(LintPass):
    """Names referenced but never defined on the device."""

    name = "undefined-references"
    code = "REF"
    description = (
        "ACLs, route maps, and interfaces must be defined before being "
        "referenced"
    )
    scope = frozenset({"interface", "router-bgp", "top", "acl", "route-map"})
    device_scoped = True
    docs = {
        "REF001": "An interface binds an ACL name that is not defined on "
        "the device; the binding filters nothing (or everything, depending "
        "on platform) and is almost certainly a typo or a stale rename.",
        "REF002": "A BGP neighbor statement names an interface the device "
        "does not define; the session can never establish.",
        "REF003": "A BGP neighbor applies a route-map that is not defined "
        "on the device; policy silently does not apply.",
        "REF004": "A static route exits via an interface the device does "
        "not define; the route can never be installed.",
    }

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for iface in device.interfaces.values():
            stanza = f"interface {iface.name}"
            for direction, acl_name in (
                ("in", iface.acl_in),
                ("out", iface.acl_out),
            ):
                if acl_name is not None and acl_name not in device.acls:
                    yield self._diag(
                        "001",
                        Severity.ERROR,
                        device.hostname,
                        f"interface {iface.name} binds undefined ACL "
                        f"{acl_name!r} {direction}",
                        stanza=stanza,
                        line_text=f"ip access-group {acl_name} {direction}",
                    )
        if device.bgp is not None:
            stanza = f"router bgp {device.bgp.asn}"
            for neighbor in device.bgp.neighbors.values():
                if neighbor.interface not in device.interfaces:
                    yield self._diag(
                        "002",
                        Severity.ERROR,
                        device.hostname,
                        f"BGP neighbor configured on undefined interface "
                        f"{neighbor.interface!r}",
                        stanza=stanza,
                        line_text=(
                            f"neighbor {neighbor.interface} remote-as "
                            f"{neighbor.remote_as}"
                        ),
                    )
                for direction, rm_name in (
                    ("in", neighbor.route_map_in),
                    ("out", neighbor.route_map_out),
                ):
                    if rm_name is not None and rm_name not in device.route_maps:
                        yield self._diag(
                            "003",
                            Severity.ERROR,
                            device.hostname,
                            f"neighbor {neighbor.interface} binds undefined "
                            f"route-map {rm_name!r} {direction}",
                            stanza=stanza,
                            line_text=(
                                f"neighbor {neighbor.interface} route-map "
                                f"{rm_name} {direction}"
                            ),
                        )
        for route in device.static_routes:
            if (
                route.next_hop_interface is not None
                and route.next_hop_interface not in device.interfaces
            ):
                yield self._diag(
                    "004",
                    Severity.ERROR,
                    device.hostname,
                    f"static route {route.prefix} via undefined interface "
                    f"{route.next_hop_interface!r}",
                    line_text=_static_route_line(route),
                )


def _entry_covers(earlier: AclEntry, later: AclEntry) -> bool:
    """True when every packet matching ``later`` also matches ``earlier``."""
    if earlier.proto is not None and earlier.proto != later.proto:
        return False
    for mine, theirs in ((earlier.src, later.src), (earlier.dst, later.dst)):
        if mine is not None and (theirs is None or not mine.contains(theirs)):
            return False
    if earlier.dst_port is not None:
        if later.dst_port is None:
            return False
        lo, hi = earlier.dst_port
        if not (lo <= later.dst_port[0] and later.dst_port[1] <= hi):
            return False
    return True


@register_pass
class ShadowedAclEntries(LintPass):
    """ACL entries that can never match because an earlier entry covers them."""

    name = "shadowed-acl-entries"
    code = "ACL"
    description = "every ACL entry should be reachable by some packet"
    scope = frozenset({"acl"})
    device_scoped = True
    docs = {
        "ACL001": "An ACL entry is fully covered by an earlier entry with "
        "the same action: it can never match and is dead configuration.",
        "ACL002": "An ACL entry is fully covered by an earlier entry with "
        "the opposite action: the later entry's intent is silently "
        "inverted for every packet it was written for.",
    }

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for acl in device.acls.values():
            entries = acl.sorted_entries()
            for index, entry in enumerate(entries):
                for earlier in entries[:index]:
                    if not _entry_covers(earlier, entry):
                        continue
                    masked = earlier.action != entry.action
                    yield self._diag(
                        "002" if masked else "001",
                        Severity.ERROR if masked else Severity.WARNING,
                        device.hostname,
                        f"ACL {acl.name} entry {entry.seq} ({entry.action}) is "
                        f"shadowed by entry {earlier.seq} ({earlier.action})"
                        + (" with the opposite action" if masked else ""),
                        stanza=f"ip access-list {acl.name}",
                    )
                    break  # report the first shadowing entry only


@register_pass
class UnreachableRouteMapClauses(LintPass):
    """Route-map clauses behind a broader (or catch-all) earlier match."""

    name = "unreachable-route-map"
    code = "RMP"
    description = "every route-map clause should be reachable by some route"
    scope = frozenset({"route-map"})
    device_scoped = True
    docs = {
        "RMP001": "A route-map clause sits behind an earlier clause with "
        "the same action that already matches everything it would match.",
        "RMP002": "A route-map clause sits behind an earlier clause with "
        "the opposite action covering its matches: routes it was written "
        "to permit (or deny) take the earlier clause instead.",
    }

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for rm in device.route_maps.values():
            clauses = rm.sorted_clauses()
            for index, clause in enumerate(clauses):
                for earlier in clauses[:index]:
                    if earlier.match_prefix is not None and (
                        clause.match_prefix is None
                        or not earlier.match_prefix.contains(clause.match_prefix)
                    ):
                        continue
                    masked = earlier.action != clause.action
                    yield self._diag(
                        "002" if masked else "001",
                        Severity.ERROR if masked else Severity.WARNING,
                        device.hostname,
                        f"route-map {rm.name} clause {clause.seq} "
                        f"({clause.action}) is unreachable: clause "
                        f"{earlier.seq} ({earlier.action}) already matches "
                        + (
                            "every route"
                            if earlier.match_prefix is None
                            else str(earlier.match_prefix)
                        ),
                        stanza=(
                            f"route-map {rm.name} {clause.action} {clause.seq}"
                        ),
                    )
                    break


@register_pass
class DuplicateIdentity(LintPass):
    """Identity clashes in the global BGP AS number space."""

    name = "duplicate-identity"
    code = "DUP"
    description = (
        "BGP AS identities must be unique in the one-AS-per-node model"
    )
    scope = frozenset({"router-bgp"})
    device_scoped = False
    docs = {
        "DUP001": "Two devices share a BGP AS number; in the one-AS-per-"
        "node model their eBGP sessions will not exchange routes the way "
        "the topology intends (loop prevention discards the updates).",
    }

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        by_asn: Dict[int, List[str]] = {}
        for device in snapshot.iter_devices():
            if device.bgp is not None:
                by_asn.setdefault(device.bgp.asn, []).append(device.hostname)
        for asn, owners in sorted(by_asn.items()):
            if len(owners) < 2:
                continue
            for owner in owners:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    owner,
                    f"BGP AS {asn} is also used by "
                    f"{', '.join(o for o in owners if o != owner)}",
                    stanza=f"router bgp {asn}",
                )


@register_pass
class DuplicateAddress(CrossDevicePass):
    """Address and prefix clashes visible on shared links or one device."""

    name = "duplicate-address"
    code = "ADR"
    description = (
        "interface addresses must be unique per link and prefixes unique "
        "per device"
    )
    scope = frozenset({"interface"})
    radius = 1
    docs = {
        "ADR001": "Both endpoints of a physical link are configured with "
        "the same interface address; ARP/ND resolution and every protocol "
        "riding the link are undefined.",
        "ADR002": "Two interfaces of one device carry the same prefix; "
        "connected-route installation is ambiguous.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        # Per link: both ends configured with the same interface address.
        for link in snapshot.topology.links():
            a_id, b_id = link.endpoints()
            if a_id.node not in targets and b_id.node not in targets:
                continue
            a_iface = _config_iface(snapshot, a_id.node, a_id.name)
            b_iface = _config_iface(snapshot, b_id.node, b_id.name)
            if a_iface is None or b_iface is None:
                continue
            if (
                a_iface.address is not None
                and a_iface.address == b_iface.address
            ):
                for end_id, iface in ((a_id, a_iface), (b_id, b_iface)):
                    yield self._diag(
                        "001",
                        Severity.ERROR,
                        end_id.node,
                        f"address duplicated on both ends of link "
                        f"{a_id} <-> {b_id}",
                        stanza=f"interface {iface.name}",
                    )
        # Per device: the same subnet configured on two interfaces.
        for device_name in sorted(targets):
            device = snapshot.devices.get(device_name)
            if device is None:
                continue
            seen: Dict[object, str] = {}
            for name in sorted(device.interfaces):
                iface = device.interfaces[name]
                if iface.prefix is None:
                    continue
                first = seen.setdefault(iface.prefix, name)
                if first != name:
                    yield self._diag(
                        "002",
                        Severity.WARNING,
                        device.hostname,
                        f"prefix {iface.prefix} configured on both "
                        f"{first} and {name}",
                        stanza=f"interface {name}",
                    )


@register_pass
class OspfAdjacencyMismatch(CrossDevicePass):
    """Per-link OSPF asymmetries that silently break or skew adjacencies."""

    name = "ospf-adjacency"
    code = "OSP"
    description = (
        "both ends of an OSPF link should agree on subnet, enablement, "
        "and (usually) cost"
    )
    scope = frozenset({"interface"})
    radius = 1
    docs = {
        "OSP001": "OSPF is enabled on one end of a link but not the "
        "other; the adjacency never forms and traffic silently takes "
        "other paths.",
        "OSP002": "The two ends of an OSPF-enabled link carry different "
        "subnets; hellos are ignored and the adjacency never forms.",
        "OSP003": "The two ends of an OSPF adjacency advertise different "
        "costs; traffic becomes asymmetric, which is usually unintended.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        for link in snapshot.topology.links():
            a_id, b_id = link.endpoints()
            if a_id.node not in targets and b_id.node not in targets:
                continue
            a = _config_iface(snapshot, a_id.node, a_id.name)
            b = _config_iface(snapshot, b_id.node, b_id.name)
            if a is None or b is None:
                continue
            if a.shutdown or b.shutdown:
                continue  # an intentionally down link is not a mismatch
            if a.ospf_enabled != b.ospf_enabled:
                enabled_end, silent_end = (
                    (a_id, b_id) if a.ospf_enabled else (b_id, a_id)
                )
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    enabled_end.node,
                    f"OSPF enabled on {enabled_end} but not on peer "
                    f"{silent_end}: adjacency will never form",
                    stanza=f"interface {enabled_end.name}",
                )
                continue
            if not a.ospf_enabled:
                continue
            if (
                a.prefix is not None
                and b.prefix is not None
                and a.prefix != b.prefix
            ):
                yield self._diag(
                    "002",
                    Severity.ERROR,
                    a_id.node,
                    f"OSPF subnet mismatch on link {a_id} <-> {b_id}: "
                    f"{a.prefix} vs {b.prefix}",
                    stanza=f"interface {a_id.name}",
                )
            if a.ospf_cost != b.ospf_cost:
                yield self._diag(
                    "003",
                    Severity.WARNING,
                    a_id.node,
                    f"asymmetric OSPF cost on link {a_id} <-> {b_id}: "
                    f"{a.ospf_cost} vs {b.ospf_cost}",
                    stanza=f"interface {a_id.name}",
                )


@register_pass
class RedistributionCycles(LintPass):
    """Route feedback loops created by mutual protocol redistribution."""

    name = "redistribution-cycles"
    code = "RED"
    description = (
        "mutual redistribution between protocol domains can loop routes "
        "and inflate metrics"
    )
    scope = frozenset({"router-ospf", "router-bgp"})
    device_scoped = False
    docs = {
        "RED001": "Redistribution statements across several devices close "
        "an ospf->bgp->ospf cycle on paper; whether routes actually "
        "circulate depends on domain connectivity (see RDL001).",
        "RED002": "One device redistributes in both directions between "
        "OSPF and BGP; the textbook border pattern, flagged for metric/"
        "filter review.",
    }

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        # Directed edges between routing protocol domains, attributed to the
        # devices that create them.  Only ospf<->bgp can cycle in this model
        # ("static"/"connected" are source-only domains).
        edges: Dict[Tuple[str, str], List[str]] = {}
        for device in snapshot.iter_devices():
            for target, process in (("ospf", device.ospf), ("bgp", device.bgp)):
                if process is None:
                    continue
                for redist in process.redistribute:
                    edges.setdefault((redist.source, target), []).append(
                        device.hostname
                    )
        forward = edges.get(("ospf", "bgp"))
        backward = edges.get(("bgp", "ospf"))
        if not forward or not backward:
            return
        single = set(forward) & set(backward)
        multi = (set(forward) | set(backward)) - single
        for device_name in sorted(single):
            # Mutual redistribution confined to one border device is the
            # textbook pattern; still worth surfacing.
            yield self._diag(
                "002",
                Severity.INFO,
                device_name,
                "device redistributes ospf->bgp and bgp->ospf; ensure "
                "metrics/filters prevent route feedback",
                stanza=self._stanza(snapshot, device_name),
            )
        if len(set(forward) | set(backward)) > 1:
            participants = sorted(set(forward) | set(backward))
            for device_name in sorted(multi) or participants:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    device_name,
                    "redistribution cycle ospf->bgp->ospf spans multiple "
                    f"devices ({', '.join(participants)}): routes can "
                    "circulate between domains",
                    stanza=self._stanza(snapshot, device_name),
                )

    @staticmethod
    def _stanza(snapshot: Snapshot, device_name: str) -> str:
        device = snapshot.devices[device_name]
        if device.ospf is not None:
            return f"router ospf {device.ospf.process_id}"
        if device.bgp is not None:
            return f"router bgp {device.bgp.asn}"
        return ""


@register_pass
class StaticRouteNextHops(LintPass):
    """Static routes whose next hop can never resolve."""

    name = "static-route-nexthops"
    code = "STA"
    description = (
        "an IP next hop must fall inside a connected subnet of an "
        "operational interface"
    )
    scope = frozenset({"top", "interface"})
    device_scoped = True
    docs = {
        "STA001": "A static route's IP next hop is outside every "
        "connected subnet of an up interface; the route can never "
        "resolve and the prefix blackholes locally.",
        "STA002": "A static route's next hop is one of the device's own "
        "addresses — a self-loop that resolves nowhere useful.",
    }

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        up_prefixes = [
            iface.prefix
            for iface in device.interfaces.values()
            if iface.prefix is not None and iface.is_up()
        ]
        own_addresses = {
            iface.address
            for iface in device.interfaces.values()
            if iface.address is not None
        }
        for route in device.static_routes:
            if route.next_hop_ip is None:
                continue
            if route.next_hop_ip in own_addresses:
                yield self._diag(
                    "002",
                    Severity.WARNING,
                    device.hostname,
                    f"static route {route.prefix} points at the device's own "
                    "address",
                    line_text=_static_route_line(route),
                )
            elif not any(
                prefix.contains_address(route.next_hop_ip)
                for prefix in up_prefixes
            ):
                yield self._diag(
                    "001",
                    Severity.ERROR,
                    device.hostname,
                    f"static route {route.prefix} next hop "
                    f"{format_ipv4(route.next_hop_ip)} is outside every "
                    "connected subnet of an up interface",
                    line_text=_static_route_line(route),
                )


@register_pass
class ShutdownInterfaceConfig(LintPass):
    """Routing and filtering config attached to administratively down
    interfaces — usually a leftover from maintenance."""

    name = "shutdown-interface-config"
    code = "SHD"
    description = (
        "configuration bound to a shutdown interface has no effect until "
        "the interface is re-enabled"
    )
    scope = frozenset({"interface", "router-bgp", "top"})
    device_scoped = True
    docs = {
        "SHD001": "OSPF is enabled on a shutdown interface; the "
        "enablement is dead configuration until the port comes back.",
        "SHD002": "ACLs are bound to a shutdown interface; the filters "
        "do nothing while the port is down.",
        "SHD003": "A BGP neighbor rides a shutdown interface; the "
        "session cannot establish.",
        "SHD004": "A static route exits via a shutdown interface; the "
        "route cannot be installed.",
    }

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        down: Set[str] = {
            name
            for name, iface in device.interfaces.items()
            if iface.shutdown
        }
        if not down:
            return
        for name in sorted(down):
            iface = device.interfaces[name]
            stanza = f"interface {name}"
            if iface.ospf_enabled:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    device.hostname,
                    f"interface {name} runs OSPF but is shut down",
                    stanza=stanza,
                    line_text="ip ospf enable",
                )
            if iface.acl_in is not None or iface.acl_out is not None:
                yield self._diag(
                    "002",
                    Severity.INFO,
                    device.hostname,
                    f"interface {name} binds ACLs but is shut down",
                    stanza=stanza,
                )
        if device.bgp is not None:
            for neighbor in device.bgp.neighbors.values():
                if neighbor.interface in down:
                    yield self._diag(
                        "003",
                        Severity.WARNING,
                        device.hostname,
                        f"BGP neighbor on {neighbor.interface} cannot "
                        "establish: interface is shut down",
                        stanza=f"router bgp {device.bgp.asn}",
                        line_text=(
                            f"neighbor {neighbor.interface} remote-as "
                            f"{neighbor.remote_as}"
                        ),
                    )
        for route in device.static_routes:
            if route.next_hop_interface in down:
                yield self._diag(
                    "004",
                    Severity.WARNING,
                    device.hostname,
                    f"static route {route.prefix} exits via shut down "
                    f"interface {route.next_hop_interface}",
                    line_text=_static_route_line(route),
                )


@register_pass
class LinkEndpointConsistency(CrossDevicePass):
    """Protocol-independent consistency of the two ends of a shared link."""

    name = "link-endpoint-consistency"
    code = "LNK"
    description = (
        "both ends of a physical link should agree on subnet, mask, and "
        "MTU, and both should be configured"
    )
    scope = frozenset({"interface"})
    radius = 1
    docs = {
        "LNK001": "The two configured endpoints of a link carry "
        "different subnets (or masks); directly connected traffic and "
        "every protocol above it break, whether or not a routing "
        "protocol runs on the link.",
        "LNK002": "The two endpoints of a link disagree on MTU; large "
        "frames are dropped in one direction, the classic source of "
        "hard-to-debug partial outages.",
        "LNK003": "Only one end of a physical link is configured; the "
        "link cannot carry traffic and the configured end's config is "
        "aspirational.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        for link in snapshot.topology.links():
            a_id, b_id = link.endpoints()
            if a_id.node not in targets and b_id.node not in targets:
                continue
            a = _config_iface(snapshot, a_id.node, a_id.name)
            b = _config_iface(snapshot, b_id.node, b_id.name)
            if a is None and b is None:
                continue
            if a is None or b is None:
                present_id, present, absent_id = (
                    (b_id, b, a_id) if a is None else (a_id, a, b_id)
                )
                yield self._diag(
                    "003",
                    Severity.WARNING,
                    present_id.node,
                    f"link {a_id} <-> {b_id} is half-configured: "
                    f"{absent_id} has no interface configuration",
                    stanza=f"interface {present_id.name}",
                )
                continue
            if a.shutdown or b.shutdown:
                continue  # an intentionally down link is exempt
            if (
                a.prefix is not None
                and b.prefix is not None
                and a.prefix != b.prefix
            ):
                yield self._diag(
                    "001",
                    Severity.ERROR,
                    a_id.node,
                    f"subnet mismatch on link {a_id} <-> {b_id}: "
                    f"{a.prefix} vs {b.prefix}",
                    stanza=f"interface {a_id.name}",
                )
            if a.mtu != b.mtu:
                yield self._diag(
                    "002",
                    Severity.WARNING,
                    a_id.node,
                    f"MTU mismatch on link {a_id} <-> {b_id}: "
                    f"{a.mtu} vs {b.mtu}",
                    stanza=f"interface {a_id.name}",
                )


@register_pass
class BgpSessionConsistency(CrossDevicePass):
    """Cross-device agreement of the two halves of each BGP peering."""

    name = "bgp-session-consistency"
    code = "BGP"
    description = (
        "each BGP session needs matching neighbor statements, correct AS "
        "numbers, and live interfaces on both ends"
    )
    scope = frozenset({"interface", "router-bgp"})
    radius = 1
    docs = {
        "BGP001": "A device has a neighbor statement for a link whose "
        "peer has no matching neighbor statement; the session stays in "
        "Active forever.",
        "BGP002": "A neighbor statement's remote-as does not match the "
        "AS the peer device actually runs; the OPEN is rejected and the "
        "session never establishes.",
        "BGP003": "A neighbor statement rides an interface with no link "
        "or an unconfigured peer interface; the session peers into the "
        "void.",
        "BGP004": "The peer interface of a BGP session is "
        "administratively shut down; the session cannot establish until "
        "the remote side re-enables the port.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        for device_name in sorted(targets):
            device = snapshot.devices.get(device_name)
            if device is None or device.bgp is None:
                continue
            stanza = f"router bgp {device.bgp.asn}"
            for if_name in sorted(device.bgp.neighbors):
                neighbor = device.bgp.neighbors[if_name]
                local = device.interfaces.get(if_name)
                if local is None or local.shutdown:
                    continue  # REF002 / SHD003 own these
                line = f"neighbor {if_name} remote-as {neighbor.remote_as}"
                peer = snapshot.topology.neighbor_of(
                    InterfaceId(device_name, if_name)
                )
                peer_iface = (
                    _config_iface(snapshot, peer.node, peer.name)
                    if peer is not None
                    else None
                )
                if peer is None or peer_iface is None:
                    where = (
                        "an unlinked interface"
                        if peer is None
                        else f"unconfigured peer interface {peer}"
                    )
                    yield self._diag(
                        "003",
                        Severity.WARNING,
                        device_name,
                        f"BGP neighbor on {if_name} peers into the void "
                        f"({where})",
                        stanza=stanza,
                        line_text=line,
                    )
                    continue
                peer_device = snapshot.devices[peer.node]
                if (
                    peer_device.bgp is None
                    or peer.name not in peer_device.bgp.neighbors
                ):
                    yield self._diag(
                        "001",
                        Severity.ERROR,
                        device_name,
                        f"asymmetric BGP session on {if_name}: {peer.node} "
                        f"has no neighbor statement on {peer.name}",
                        stanza=stanza,
                        line_text=line,
                    )
                elif neighbor.remote_as != peer_device.bgp.asn:
                    yield self._diag(
                        "002",
                        Severity.ERROR,
                        device_name,
                        f"remote-as mismatch on {if_name}: configured "
                        f"{neighbor.remote_as}, but {peer.node} runs AS "
                        f"{peer_device.bgp.asn}",
                        stanza=stanza,
                        line_text=line,
                    )
                if peer_iface.shutdown:
                    yield self._diag(
                        "004",
                        Severity.WARNING,
                        device_name,
                        f"BGP session on {if_name} rides {peer}, which is "
                        "shut down",
                        stanza=stanza,
                        line_text=line,
                    )


def _acl_drops_all(acl, prefix: Prefix) -> bool:
    """True when an explicit deny entry provably drops every packet
    destined to ``prefix`` (sound regardless of the implicit default:
    only explicit denies count, and any earlier possibly-matching permit
    clears the verdict)."""
    for entry in acl.sorted_entries():
        overlaps = entry.dst is None or entry.dst.overlaps(prefix)
        if not overlaps:
            continue
        if entry.action == "permit":
            return False
        covers_all_packets = (
            entry.proto is None
            and entry.src is None
            and entry.dst_port is None
            and (entry.dst is None or entry.dst.contains(prefix))
        )
        if covers_all_packets:
            return True
        # A partial deny: some packets die here, the rest fall through.
    return False


@register_pass
class CrossDeviceBlackholes(CrossDevicePass):
    """Static routes that resolve fine locally but die at the next hop."""

    name = "cross-device-blackholes"
    code = "BLK"
    description = (
        "a static next hop must point at a device that accepts and can "
        "forward the traffic"
    )
    scope = frozenset({"top", "interface", "acl"})
    radius = 1
    docs = {
        "BLK001": "A static route's next-hop device drops the traffic on "
        "arrival: the inbound ACL of the receiving interface contains an "
        "explicit deny covering the routed prefix with no earlier permit "
        "that could match.",
        "BLK002": "A static route's next-hop device has no way to "
        "forward the traffic onward: no routing protocol, and no "
        "connected or static route overlapping the prefix.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        for device_name in sorted(targets):
            device = snapshot.devices.get(device_name)
            if device is None:
                continue
            for route in device.static_routes:
                if route.next_hop_ip is None:
                    continue
                resolved = resolve_next_hop(
                    snapshot, device, route.next_hop_ip
                )
                if resolved is None:
                    continue  # STA001 owns unresolvable next hops
                peer_node, peer_if = resolved
                peer_device = snapshot.devices[peer_node]
                peer_iface = peer_device.interfaces[peer_if]
                acl = (
                    peer_device.acls.get(peer_iface.acl_in)
                    if peer_iface.acl_in is not None
                    else None
                )
                if acl is not None and _acl_drops_all(acl, route.prefix):
                    yield self._diag(
                        "001",
                        Severity.ERROR,
                        device_name,
                        f"static route {route.prefix} next hop "
                        f"{peer_node}:{peer_if} drops the traffic: inbound "
                        f"ACL {acl.name} denies the prefix",
                        line_text=_static_route_line(route),
                    )
                    continue
                if not self._peer_can_forward(peer_device, route.prefix):
                    yield self._diag(
                        "002",
                        Severity.ERROR,
                        device_name,
                        f"static route {route.prefix} next hop "
                        f"{peer_node}:{peer_if} cannot forward onward: "
                        f"{peer_node} runs no routing protocol and has no "
                        "overlapping connected or static route",
                        line_text=_static_route_line(route),
                    )

    @staticmethod
    def _peer_can_forward(peer_device: DeviceConfig, prefix: Prefix) -> bool:
        if peer_device.ospf is not None or peer_device.bgp is not None:
            return True  # may learn the prefix dynamically
        for iface in peer_device.interfaces.values():
            if (
                iface.prefix is not None
                and iface.is_up()
                and iface.prefix.overlaps(prefix)
            ):
                return True
        for other in peer_device.static_routes:
            if other.prefix.overlaps(prefix):
                return True
        return False


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic representative: the lexicographically smaller.
            lo, hi = sorted((ra, rb))
            self._parent[hi] = lo

    def __contains__(self, item: str) -> bool:
        return item in self._parent


@register_pass
class NetworkRedistributionLoops(CrossDevicePass):
    """Redistribution cycles that actually span devices over live protocol
    domains — the connectivity-checked generalization of RED001."""

    name = "network-redistribution-loops"
    code = "RDL"
    description = (
        "redistribution at multiple points between the same connected "
        "OSPF and BGP domains lets routes circulate network-wide"
    )
    scope = frozenset({"interface", "router-ospf", "router-bgp"})
    radius = None  # evidence spans the connected component
    docs = {
        "RDL001": "Two or more devices redistribute between the *same* "
        "connected OSPF domain and the *same* connected BGP domain in "
        "opposite directions; a route injected at one border returns at "
        "the other and circulates, inflating metrics or looping. Unlike "
        "RED001, this pass verifies over the dependency graph that the "
        "domains are actually connected, so redistribution on unrelated "
        "islands stays silent.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        ospf_domains, bgp_domains = self._protocol_domains(snapshot)
        # domain-pair -> devices redistributing in each direction.
        forward: Dict[Tuple[str, str], List[str]] = {}
        backward: Dict[Tuple[str, str], List[str]] = {}
        for device in snapshot.iter_devices():
            name = device.hostname
            if name not in ospf_domains or name not in bgp_domains:
                continue
            pair = (ospf_domains.find(name), bgp_domains.find(name))
            if device.bgp is not None and any(
                r.source == "ospf" for r in device.bgp.redistribute
            ):
                forward.setdefault(pair, []).append(name)
            if device.ospf is not None and any(
                r.source == "bgp" for r in device.ospf.redistribute
            ):
                backward.setdefault(pair, []).append(name)
        for pair in sorted(set(forward) & set(backward)):
            fwd, bwd = forward[pair], backward[pair]
            participants = sorted(set(fwd) | set(bwd))
            if len(participants) < 2:
                continue  # single border device: RED002 owns this
            for device_name in participants:
                if device_name not in targets:
                    continue
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    device_name,
                    "network-wide redistribution loop: ospf->bgp at "
                    f"{', '.join(sorted(set(fwd)))} returns bgp->ospf at "
                    f"{', '.join(sorted(set(bwd)))} across connected "
                    "protocol domains",
                    stanza=RedistributionCycles._stanza(snapshot, device_name),
                )

    @staticmethod
    def _protocol_domains(
        snapshot: Snapshot,
    ) -> Tuple[_UnionFind, _UnionFind]:
        ospf = _UnionFind()
        bgp = _UnionFind()
        for device in snapshot.iter_devices():
            if device.ospf is not None:
                ospf.add(device.hostname)
            if device.bgp is not None:
                bgp.add(device.hostname)
        for link in snapshot.topology.links():
            a_id, b_id = link.endpoints()
            a = _config_iface(snapshot, a_id.node, a_id.name)
            b = _config_iface(snapshot, b_id.node, b_id.name)
            if a is None or b is None or a.shutdown or b.shutdown:
                continue
            a_dev = snapshot.devices[a_id.node]
            b_dev = snapshot.devices[b_id.node]
            if (
                a_id.node in ospf
                and b_id.node in ospf
                and a.ospf_enabled
                and b.ospf_enabled
            ):
                ospf.union(a_id.node, b_id.node)
            if (
                a_id.node in bgp
                and b_id.node in bgp
                and a_dev.bgp is not None
                and b_dev.bgp is not None
                and a_id.name in a_dev.bgp.neighbors
                and b_id.name in b_dev.bgp.neighbors
            ):
                bgp.union(a_id.node, b_id.node)
        return ospf, bgp


@register_pass
class PartitionIsolation(CrossDevicePass):
    """Devices cut off from the network, physically or at the protocol
    layer — partition/isolation intent checks."""

    name = "partition-isolation"
    code = "ISO"
    description = (
        "every device with links should have a viable path, and every "
        "protocol speaker a viable adjacency or session"
    )
    scope = frozenset({"interface", "router-ospf", "router-bgp"})
    radius = 1
    docs = {
        "ISO001": "A device has physical links but none of them is "
        "viable (every link is shut down on one end or half-"
        "configured); the device is partitioned from the network.",
        "ISO002": "A device speaks a routing protocol (OSPF enabled on "
        "interfaces, or BGP neighbors configured) but has no viable "
        "adjacency or session on any link; its prefixes are announced "
        "to no one.",
    }

    def check_region(
        self,
        snapshot: Snapshot,
        graph: NetworkDependencyGraph,
        targets: Set[str],
    ) -> Iterator[Diagnostic]:
        for device_name in sorted(targets):
            device = snapshot.devices.get(device_name)
            if device is None:
                continue
            linked = 0
            viable = 0
            ospf_attempts = 0
            ospf_viable = 0
            bgp_attempts = 0
            bgp_viable = 0
            for if_name in sorted(device.interfaces):
                iface = device.interfaces[if_name]
                peer = snapshot.topology.neighbor_of(
                    InterfaceId(device_name, if_name)
                )
                if peer is None:
                    continue
                linked += 1
                peer_iface = _config_iface(snapshot, peer.node, peer.name)
                link_up = (
                    iface.is_up()
                    and peer_iface is not None
                    and peer_iface.is_up()
                )
                if link_up:
                    viable += 1
                peer_device = snapshot.devices.get(peer.node)
                if device.ospf is not None and iface.ospf_enabled:
                    ospf_attempts += 1
                    if (
                        link_up
                        and peer_device is not None
                        and peer_device.ospf is not None
                        and peer_iface is not None
                        and peer_iface.ospf_enabled
                    ):
                        ospf_viable += 1
                if (
                    device.bgp is not None
                    and if_name in device.bgp.neighbors
                ):
                    bgp_attempts += 1
                    if (
                        link_up
                        and peer_device is not None
                        and peer_device.bgp is not None
                        and peer.name in peer_device.bgp.neighbors
                    ):
                        bgp_viable += 1
            if linked and viable == 0:
                yield self._diag(
                    "001",
                    Severity.ERROR,
                    device_name,
                    f"device is partitioned: none of its {linked} link(s) "
                    "is up and configured on both ends",
                )
                continue  # protocol isolation is implied; don't double-report
            protocol_islands = []
            if ospf_attempts and ospf_viable == 0:
                protocol_islands.append("OSPF adjacency")
            if bgp_attempts and bgp_viable == 0:
                protocol_islands.append("BGP session")
            for what in protocol_islands:
                yield self._diag(
                    "002",
                    Severity.WARNING,
                    device_name,
                    f"device speaks a routing protocol but no viable "
                    f"{what} exists on any link: its routes reach no one",
                )


# -- catalog helpers ---------------------------------------------------------


def rule_catalog() -> List[Tuple[str, str, str]]:
    """(code prefix, pass name, description) for every registered pass."""
    from repro.lint.framework import all_passes

    return [(p.code, p.name, p.description) for p in all_passes()]


def explain_code(code: str) -> Optional[str]:
    """Human-readable documentation for a finding code (``LNK001``) or a
    pass prefix (``LNK``), for ``repro lint --explain``."""
    from repro.lint.framework import all_passes

    code = code.upper()
    for lint_pass in all_passes():
        if code == lint_pass.code:
            lines = [f"{lint_pass.code} · {lint_pass.name}"]
            lines.append(lint_pass.description)
            for full_code in sorted(lint_pass.docs):
                lines.append(f"  {full_code}: {lint_pass.docs[full_code]}")
            return "\n".join(lines)
        if code in lint_pass.docs:
            return (
                f"{code} · {lint_pass.name}\n{lint_pass.docs[code]}"
            )
    return None


__all__ = [
    "UndefinedReferences",
    "ShadowedAclEntries",
    "UnreachableRouteMapClauses",
    "DuplicateIdentity",
    "DuplicateAddress",
    "OspfAdjacencyMismatch",
    "RedistributionCycles",
    "StaticRouteNextHops",
    "ShutdownInterfaceConfig",
    "LinkEndpointConsistency",
    "BgpSessionConsistency",
    "CrossDeviceBlackholes",
    "NetworkRedistributionLoops",
    "PartitionIsolation",
    "rule_catalog",
    "explain_code",
]
