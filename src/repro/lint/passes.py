"""The built-in semantic lint passes.

Eight pass classes covering the config-text error classes that behavioural
verification (the RealConfig pipeline) either assumes away or reports only
indirectly as policy violations:

==========================  ======  =====================================
pass                        codes   finds
==========================  ======  =====================================
undefined-references        REF0xx  dangling ACL / route-map / interface
                                    references
shadowed-acl-entries        ACL0xx  ACL entries unreachable behind an
                                    earlier, broader entry
unreachable-route-map       RMP0xx  route-map clauses behind a broader
                                    earlier match
duplicate-identity          DUP0xx  duplicate BGP AS identity, duplicate
                                    addresses / prefixes on links
ospf-adjacency              OSP0xx  subnet / cost / enablement asymmetry
                                    across a physical link
redistribution-cycles       RED0xx  mutual redistribution loops between
                                    protocol domains
static-route-nexthops       STA0xx  static routes whose next hop cannot
                                    resolve
shutdown-interface-config   SHD0xx  routing / filtering config bound to
                                    administratively down interfaces
==========================  ======  =====================================

Severity grading: a finding is an ERROR when it changes or breaks forwarding
behaviour outright (dangling reference, masked opposite-action filter rule,
unresolvable next hop, duplicate link address), a WARNING when it is very
likely unintended but functional (shadowed same-action entries, asymmetric
costs, mutual redistribution at multiple points), and INFO for hygiene.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.config.schema import AclEntry, DeviceConfig, Snapshot, StaticRoute
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.framework import LintPass, register_pass
from repro.net.addr import format_ipv4


def _static_route_line(route: StaticRoute) -> str:
    """The canonical rendering of a static route (for line anchoring)."""
    if route.next_hop_interface is not None:
        via = route.next_hop_interface
    else:
        via = format_ipv4(route.next_hop_ip)
    text = f"ip route {route.prefix} {via}"
    if route.admin_distance != 1:
        text += f" {route.admin_distance}"
    return text


@register_pass
class UndefinedReferences(LintPass):
    """Names referenced but never defined on the device."""

    name = "undefined-references"
    code = "REF"
    description = (
        "ACLs, route maps, and interfaces must be defined before being "
        "referenced"
    )
    scope = frozenset({"interface", "router-bgp", "top", "acl", "route-map"})
    device_scoped = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for iface in device.interfaces.values():
            stanza = f"interface {iface.name}"
            for direction, acl_name in (
                ("in", iface.acl_in),
                ("out", iface.acl_out),
            ):
                if acl_name is not None and acl_name not in device.acls:
                    yield self._diag(
                        "001",
                        Severity.ERROR,
                        device.hostname,
                        f"interface {iface.name} binds undefined ACL "
                        f"{acl_name!r} {direction}",
                        stanza=stanza,
                        line_text=f"ip access-group {acl_name} {direction}",
                    )
        if device.bgp is not None:
            stanza = f"router bgp {device.bgp.asn}"
            for neighbor in device.bgp.neighbors.values():
                if neighbor.interface not in device.interfaces:
                    yield self._diag(
                        "002",
                        Severity.ERROR,
                        device.hostname,
                        f"BGP neighbor configured on undefined interface "
                        f"{neighbor.interface!r}",
                        stanza=stanza,
                        line_text=(
                            f"neighbor {neighbor.interface} remote-as "
                            f"{neighbor.remote_as}"
                        ),
                    )
                for direction, rm_name in (
                    ("in", neighbor.route_map_in),
                    ("out", neighbor.route_map_out),
                ):
                    if rm_name is not None and rm_name not in device.route_maps:
                        yield self._diag(
                            "003",
                            Severity.ERROR,
                            device.hostname,
                            f"neighbor {neighbor.interface} binds undefined "
                            f"route-map {rm_name!r} {direction}",
                            stanza=stanza,
                            line_text=(
                                f"neighbor {neighbor.interface} route-map "
                                f"{rm_name} {direction}"
                            ),
                        )
        for route in device.static_routes:
            if (
                route.next_hop_interface is not None
                and route.next_hop_interface not in device.interfaces
            ):
                yield self._diag(
                    "004",
                    Severity.ERROR,
                    device.hostname,
                    f"static route {route.prefix} via undefined interface "
                    f"{route.next_hop_interface!r}",
                    line_text=_static_route_line(route),
                )


def _entry_covers(earlier: AclEntry, later: AclEntry) -> bool:
    """True when every packet matching ``later`` also matches ``earlier``."""
    if earlier.proto is not None and earlier.proto != later.proto:
        return False
    for mine, theirs in ((earlier.src, later.src), (earlier.dst, later.dst)):
        if mine is not None and (theirs is None or not mine.contains(theirs)):
            return False
    if earlier.dst_port is not None:
        if later.dst_port is None:
            return False
        lo, hi = earlier.dst_port
        if not (lo <= later.dst_port[0] and later.dst_port[1] <= hi):
            return False
    return True


@register_pass
class ShadowedAclEntries(LintPass):
    """ACL entries that can never match because an earlier entry covers them."""

    name = "shadowed-acl-entries"
    code = "ACL"
    description = "every ACL entry should be reachable by some packet"
    scope = frozenset({"acl"})
    device_scoped = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for acl in device.acls.values():
            entries = acl.sorted_entries()
            for index, entry in enumerate(entries):
                for earlier in entries[:index]:
                    if not _entry_covers(earlier, entry):
                        continue
                    masked = earlier.action != entry.action
                    yield self._diag(
                        "002" if masked else "001",
                        Severity.ERROR if masked else Severity.WARNING,
                        device.hostname,
                        f"ACL {acl.name} entry {entry.seq} ({entry.action}) is "
                        f"shadowed by entry {earlier.seq} ({earlier.action})"
                        + (" with the opposite action" if masked else ""),
                        stanza=f"ip access-list {acl.name}",
                    )
                    break  # report the first shadowing entry only


@register_pass
class UnreachableRouteMapClauses(LintPass):
    """Route-map clauses behind a broader (or catch-all) earlier match."""

    name = "unreachable-route-map"
    code = "RMP"
    description = "every route-map clause should be reachable by some route"
    scope = frozenset({"route-map"})
    device_scoped = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        for rm in device.route_maps.values():
            clauses = rm.sorted_clauses()
            for index, clause in enumerate(clauses):
                for earlier in clauses[:index]:
                    if earlier.match_prefix is not None and (
                        clause.match_prefix is None
                        or not earlier.match_prefix.contains(clause.match_prefix)
                    ):
                        continue
                    masked = earlier.action != clause.action
                    yield self._diag(
                        "002" if masked else "001",
                        Severity.ERROR if masked else Severity.WARNING,
                        device.hostname,
                        f"route-map {rm.name} clause {clause.seq} "
                        f"({clause.action}) is unreachable: clause "
                        f"{earlier.seq} ({earlier.action}) already matches "
                        + (
                            "every route"
                            if earlier.match_prefix is None
                            else str(earlier.match_prefix)
                        ),
                        stanza=(
                            f"route-map {rm.name} {clause.action} {clause.seq}"
                        ),
                    )
                    break


@register_pass
class DuplicateIdentity(LintPass):
    """Identity clashes: shared BGP AS numbers and duplicate link addresses."""

    name = "duplicate-identity"
    code = "DUP"
    description = (
        "BGP identities and interface addresses must be unique where "
        "protocols require it"
    )
    scope = frozenset({"router-bgp", "interface"})
    device_scoped = False

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        # (a) eBGP sessions between devices sharing an AS number never
        # exchange routes the way the one-AS-per-node model intends.
        by_asn: Dict[int, List[str]] = {}
        for device in snapshot.iter_devices():
            if device.bgp is not None:
                by_asn.setdefault(device.bgp.asn, []).append(device.hostname)
        for asn, owners in sorted(by_asn.items()):
            if len(owners) < 2:
                continue
            for owner in owners:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    owner,
                    f"BGP AS {asn} is also used by "
                    f"{', '.join(o for o in owners if o != owner)}",
                    stanza=f"router bgp {asn}",
                )
        # (b) per link: both ends configured with the same interface address.
        for link in snapshot.topology.links():
            ends = []
            for end in link.endpoints():
                device = snapshot.devices.get(end.node)
                iface = device.interfaces.get(end.name) if device else None
                ends.append((end, iface))
            (a_id, a_iface), (b_id, b_iface) = ends
            if a_iface is None or b_iface is None:
                continue
            if (
                a_iface.address is not None
                and a_iface.address == b_iface.address
            ):
                for end_id, iface in ends:
                    yield self._diag(
                        "002",
                        Severity.ERROR,
                        end_id.node,
                        f"address duplicated on both ends of link "
                        f"{a_id} <-> {b_id}",
                        stanza=f"interface {iface.name}",
                    )
        # (c) per device: the same subnet configured on two interfaces.
        for device in snapshot.iter_devices():
            seen: Dict[object, str] = {}
            for name in sorted(device.interfaces):
                iface = device.interfaces[name]
                if iface.prefix is None:
                    continue
                first = seen.setdefault(iface.prefix, name)
                if first != name:
                    yield self._diag(
                        "003",
                        Severity.WARNING,
                        device.hostname,
                        f"prefix {iface.prefix} configured on both "
                        f"{first} and {name}",
                        stanza=f"interface {name}",
                    )


@register_pass
class OspfAdjacencyMismatch(LintPass):
    """Per-link OSPF asymmetries that silently break or skew adjacencies."""

    name = "ospf-adjacency"
    code = "OSP"
    description = (
        "both ends of an OSPF link should agree on subnet, enablement, "
        "and (usually) cost"
    )
    scope = frozenset({"interface"})
    device_scoped = False

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        for link in snapshot.topology.links():
            a_id, b_id = link.endpoints()
            a = self._config_iface(snapshot, a_id.node, a_id.name)
            b = self._config_iface(snapshot, b_id.node, b_id.name)
            if a is None or b is None:
                continue
            if a.shutdown or b.shutdown:
                continue  # an intentionally down link is not a mismatch
            if a.ospf_enabled != b.ospf_enabled:
                enabled_end, silent_end = (
                    (a_id, b_id) if a.ospf_enabled else (b_id, a_id)
                )
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    enabled_end.node,
                    f"OSPF enabled on {enabled_end} but not on peer "
                    f"{silent_end}: adjacency will never form",
                    stanza=f"interface {enabled_end.name}",
                )
                continue
            if not a.ospf_enabled:
                continue
            if (
                a.prefix is not None
                and b.prefix is not None
                and a.prefix != b.prefix
            ):
                yield self._diag(
                    "002",
                    Severity.ERROR,
                    a_id.node,
                    f"OSPF subnet mismatch on link {a_id} <-> {b_id}: "
                    f"{a.prefix} vs {b.prefix}",
                    stanza=f"interface {a_id.name}",
                )
            if a.ospf_cost != b.ospf_cost:
                yield self._diag(
                    "003",
                    Severity.WARNING,
                    a_id.node,
                    f"asymmetric OSPF cost on link {a_id} <-> {b_id}: "
                    f"{a.ospf_cost} vs {b.ospf_cost}",
                    stanza=f"interface {a_id.name}",
                )

    @staticmethod
    def _config_iface(snapshot: Snapshot, node: str, name: str):
        device = snapshot.devices.get(node)
        if device is None:
            return None
        return device.interfaces.get(name)


@register_pass
class RedistributionCycles(LintPass):
    """Route feedback loops created by mutual protocol redistribution."""

    name = "redistribution-cycles"
    code = "RED"
    description = (
        "mutual redistribution between protocol domains can loop routes "
        "and inflate metrics"
    )
    scope = frozenset({"router-ospf", "router-bgp"})
    device_scoped = False

    def check_snapshot(self, snapshot: Snapshot) -> Iterator[Diagnostic]:
        # Directed edges between routing protocol domains, attributed to the
        # devices that create them.  Only ospf<->bgp can cycle in this model
        # ("static"/"connected" are source-only domains).
        edges: Dict[Tuple[str, str], List[str]] = {}
        for device in snapshot.iter_devices():
            for target, process in (("ospf", device.ospf), ("bgp", device.bgp)):
                if process is None:
                    continue
                for redist in process.redistribute:
                    edges.setdefault((redist.source, target), []).append(
                        device.hostname
                    )
        forward = edges.get(("ospf", "bgp"))
        backward = edges.get(("bgp", "ospf"))
        if not forward or not backward:
            return
        single = set(forward) & set(backward)
        multi = (set(forward) | set(backward)) - single
        for device_name in sorted(single):
            # Mutual redistribution confined to one border device is the
            # textbook pattern; still worth surfacing.
            yield self._diag(
                "002",
                Severity.INFO,
                device_name,
                "device redistributes ospf->bgp and bgp->ospf; ensure "
                "metrics/filters prevent route feedback",
                stanza=self._stanza(snapshot, device_name),
            )
        if len(set(forward) | set(backward)) > 1:
            participants = sorted(set(forward) | set(backward))
            for device_name in sorted(multi) or participants:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    device_name,
                    "redistribution cycle ospf->bgp->ospf spans multiple "
                    f"devices ({', '.join(participants)}): routes can "
                    "circulate between domains",
                    stanza=self._stanza(snapshot, device_name),
                )

    @staticmethod
    def _stanza(snapshot: Snapshot, device_name: str) -> str:
        device = snapshot.devices[device_name]
        if device.ospf is not None:
            return f"router ospf {device.ospf.process_id}"
        if device.bgp is not None:
            return f"router bgp {device.bgp.asn}"
        return ""


@register_pass
class StaticRouteNextHops(LintPass):
    """Static routes whose next hop can never resolve."""

    name = "static-route-nexthops"
    code = "STA"
    description = (
        "an IP next hop must fall inside a connected subnet of an "
        "operational interface"
    )
    scope = frozenset({"top", "interface"})
    device_scoped = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        up_prefixes = [
            iface.prefix
            for iface in device.interfaces.values()
            if iface.prefix is not None and iface.is_up()
        ]
        own_addresses = {
            iface.address
            for iface in device.interfaces.values()
            if iface.address is not None
        }
        for route in device.static_routes:
            if route.next_hop_ip is None:
                continue
            if route.next_hop_ip in own_addresses:
                yield self._diag(
                    "002",
                    Severity.WARNING,
                    device.hostname,
                    f"static route {route.prefix} points at the device's own "
                    "address",
                    line_text=_static_route_line(route),
                )
            elif not any(
                prefix.contains_address(route.next_hop_ip)
                for prefix in up_prefixes
            ):
                yield self._diag(
                    "001",
                    Severity.ERROR,
                    device.hostname,
                    f"static route {route.prefix} next hop "
                    f"{format_ipv4(route.next_hop_ip)} is outside every "
                    "connected subnet of an up interface",
                    line_text=_static_route_line(route),
                )


@register_pass
class ShutdownInterfaceConfig(LintPass):
    """Routing and filtering config attached to administratively down
    interfaces — usually a leftover from maintenance."""

    name = "shutdown-interface-config"
    code = "SHD"
    description = (
        "configuration bound to a shutdown interface has no effect until "
        "the interface is re-enabled"
    )
    scope = frozenset({"interface", "router-bgp", "top"})
    device_scoped = True

    def check_device(
        self, snapshot: Snapshot, device: DeviceConfig
    ) -> Iterator[Diagnostic]:
        down: Set[str] = {
            name
            for name, iface in device.interfaces.items()
            if iface.shutdown
        }
        if not down:
            return
        for name in sorted(down):
            iface = device.interfaces[name]
            stanza = f"interface {name}"
            if iface.ospf_enabled:
                yield self._diag(
                    "001",
                    Severity.WARNING,
                    device.hostname,
                    f"interface {name} runs OSPF but is shut down",
                    stanza=stanza,
                    line_text="ip ospf enable",
                )
            if iface.acl_in is not None or iface.acl_out is not None:
                yield self._diag(
                    "002",
                    Severity.INFO,
                    device.hostname,
                    f"interface {name} binds ACLs but is shut down",
                    stanza=stanza,
                )
        if device.bgp is not None:
            for neighbor in device.bgp.neighbors.values():
                if neighbor.interface in down:
                    yield self._diag(
                        "003",
                        Severity.WARNING,
                        device.hostname,
                        f"BGP neighbor on {neighbor.interface} cannot "
                        "establish: interface is shut down",
                        stanza=f"router bgp {device.bgp.asn}",
                        line_text=(
                            f"neighbor {neighbor.interface} remote-as "
                            f"{neighbor.remote_as}"
                        ),
                    )
        for route in device.static_routes:
            if route.next_hop_interface in down:
                yield self._diag(
                    "004",
                    Severity.WARNING,
                    device.hostname,
                    f"static route {route.prefix} exits via shut down "
                    f"interface {route.next_hop_interface}",
                    line_text=_static_route_line(route),
                )


#: Mapping of rule code prefixes to pass metadata, for SARIF rule listings.
def rule_catalog() -> List[Tuple[str, str, str]]:
    """(code prefix, pass name, description) for every registered pass."""
    from repro.lint.framework import all_passes

    return [(p.code, p.name, p.description) for p in all_passes()]


__all__ = [
    "UndefinedReferences",
    "ShadowedAclEntries",
    "UnreachableRouteMapClauses",
    "DuplicateIdentity",
    "OspfAdjacencyMismatch",
    "RedistributionCycles",
    "StaticRouteNextHops",
    "ShutdownInterfaceConfig",
    "rule_catalog",
]
