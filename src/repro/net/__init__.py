"""Network substrate: addressing, header space, and topology."""

from repro.net.addr import (
    AddressError,
    IPv4Address,
    Prefix,
    format_ipv4,
    interval_to_prefixes,
    parse_ipv4,
)
from repro.net.headerspace import FIELDS, Header, HeaderBox, Predicate, header
from repro.net.topology import Interface, InterfaceId, Link, Node, Topology, TopologyError
from repro.net.topologies import (
    LabeledTopology,
    fat_tree,
    fat_tree_expected_sizes,
    grid,
    line,
    random_connected,
    ring,
)

__all__ = [
    "AddressError",
    "IPv4Address",
    "Prefix",
    "format_ipv4",
    "interval_to_prefixes",
    "parse_ipv4",
    "FIELDS",
    "Header",
    "HeaderBox",
    "Predicate",
    "header",
    "Interface",
    "InterfaceId",
    "Link",
    "Node",
    "Topology",
    "TopologyError",
    "LabeledTopology",
    "fat_tree",
    "fat_tree_expected_sizes",
    "grid",
    "line",
    "random_connected",
    "ring",
]
