"""IPv4 addressing primitives.

RealConfig models IP prefixes as bitvectors (the paper uses DDlog's bitvector
type for exactly this purpose).  This module provides a small, dependency-free
implementation of IPv4 addresses, prefixes, and the interval arithmetic the
equivalence-class machinery is built on.

All addresses are plain integers in ``[0, 2**32)`` under the hood; the classes
here are thin immutable wrappers that add parsing, formatting, and the prefix
algebra (containment, overlap, enumeration of sub-prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Tuple

IPV4_BITS = 32
IPV4_MAX = (1 << IPV4_BITS) - 1


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an integer as dotted-quad notation.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= IPV4_MAX:
        raise AddressError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@total_ordering
@dataclass(frozen=True)
class IPv4Address:
    """An immutable IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= IPV4_MAX:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(parse_ipv4(text))

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


@total_ordering
@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address + mask length).

    The network address is canonicalised: host bits below the mask are
    required to be zero, mirroring how router configuration languages treat
    prefixes.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= IPV4_BITS:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= IPV4_MAX:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~self.mask():
            raise AddressError(
                f"host bits set in prefix {format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation.

        >>> Prefix.parse("10.0.0.0/8")
        Prefix.parse('10.0.0.0/8')
        """
        if "/" not in text:
            raise AddressError(f"missing /length in prefix: {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return cls(parse_ipv4(addr_text), int(len_text))

    @classmethod
    def from_address(cls, addr: IPv4Address, length: int = IPV4_BITS) -> "Prefix":
        mask = _mask_for(length)
        return cls(addr.value & mask, length)

    @classmethod
    def from_address_int(cls, value: int, length: int = IPV4_BITS) -> "Prefix":
        """The prefix of the given length containing address ``value``."""
        return cls(value & _mask_for(length), length)

    @classmethod
    def default(cls) -> "Prefix":
        """The default route ``0.0.0.0/0``."""
        return cls(0, 0)

    def mask(self) -> int:
        return _mask_for(self.length)

    def first(self) -> int:
        """Lowest address covered by this prefix."""
        return self.network

    def last(self) -> int:
        """Highest address covered by this prefix."""
        return self.network | (~self.mask() & IPV4_MAX)

    def as_interval(self) -> Tuple[int, int]:
        """Return the closed interval ``[first, last]`` of covered addresses."""
        return (self.first(), self.last())

    def num_addresses(self) -> int:
        return 1 << (IPV4_BITS - self.length)

    def contains_address(self, addr: int) -> bool:
        return (addr & self.mask()) == self.network

    def contains(self, other: "Prefix") -> bool:
        """True when ``other`` is fully covered by this prefix."""
        return self.length <= other.length and self.contains_address(other.network)

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def supernet(self) -> "Prefix":
        """The prefix one bit shorter than this one."""
        if self.length == 0:
            raise AddressError("the default route has no supernet")
        length = self.length - 1
        return Prefix(self.network & _mask_for(length), length)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """The two prefixes one bit longer than this one."""
        if self.length == IPV4_BITS:
            raise AddressError("a host prefix has no subnets")
        length = self.length + 1
        low = Prefix(self.network, length)
        high = Prefix(self.network | (1 << (IPV4_BITS - length)), length)
        return (low, high)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for value in range(self.first(), self.last() + 1):
            yield IPv4Address(value)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix.parse({str(self)!r})"

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)


def _mask_for(length: int) -> int:
    if length == 0:
        return 0
    return (IPV4_MAX << (IPV4_BITS - length)) & IPV4_MAX


def interval_to_prefixes(lo: int, hi: int) -> Iterator[Prefix]:
    """Decompose a closed address interval into a minimal list of prefixes.

    This is the classic CIDR cover of ``[lo, hi]``; used when converting EC
    predicates back into prefix-form forwarding rules.

    >>> [str(p) for p in interval_to_prefixes(0, 7)]
    ['0.0.0.0/29']
    """
    if lo > hi:
        return
    if not (0 <= lo <= IPV4_MAX and 0 <= hi <= IPV4_MAX):
        raise AddressError(f"interval out of range: [{lo}, {hi}]")
    while lo <= hi:
        # Largest power-of-two block aligned at lo that fits within [lo, hi].
        max_align = lo & -lo if lo else 1 << IPV4_BITS
        span = hi - lo + 1
        block = 1
        while block * 2 <= span and block * 2 <= max_align:
            block *= 2
        length = IPV4_BITS - block.bit_length() + 1
        yield Prefix(lo, length)
        lo += block
