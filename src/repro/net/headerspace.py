"""Header space predicates.

The data plane model (``repro.dataplane``) partitions the space of packet
headers into *equivalence classes* (ECs) the way APKeep does.  An EC is
represented by a :class:`Predicate`: a union of disjoint :class:`HeaderBox`
hyper-rectangles over the match fields

    ``dst_ip`` x ``src_ip`` x ``proto`` x ``dst_port``

Forwarding rules only constrain ``dst_ip``; ACL rules may constrain all four
fields.  Boxes support exact intersection and subtraction, which is all the
EC-splitting algorithm needs.  Everything here is immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.addr import IPV4_MAX, Prefix

#: Match fields, in canonical order.
FIELDS: Tuple[str, ...] = ("dst_ip", "src_ip", "proto", "dst_port")

#: Inclusive upper bound of each field's domain (lower bound is always 0).
FIELD_MAX: Dict[str, int] = {
    "dst_ip": IPV4_MAX,
    "src_ip": IPV4_MAX,
    "proto": 255,
    "dst_port": 65535,
}

#: A concrete packet header: one value per field, in FIELDS order.
Header = Tuple[int, int, int, int]

Interval = Tuple[int, int]


class HeaderSpaceError(ValueError):
    """Raised for malformed boxes or predicates."""


def _full_intervals() -> Tuple[Interval, ...]:
    return tuple((0, FIELD_MAX[f]) for f in FIELDS)


@dataclass(frozen=True)
class HeaderBox:
    """A hyper-rectangle over the match fields (closed intervals)."""

    intervals: Tuple[Interval, ...]

    def __post_init__(self) -> None:
        if len(self.intervals) != len(FIELDS):
            raise HeaderSpaceError(
                f"expected {len(FIELDS)} intervals, got {len(self.intervals)}"
            )
        for field, (lo, hi) in zip(FIELDS, self.intervals):
            if lo > hi:
                raise HeaderSpaceError(f"empty interval for {field}: [{lo}, {hi}]")
            if lo < 0 or hi > FIELD_MAX[field]:
                raise HeaderSpaceError(
                    f"interval out of domain for {field}: [{lo}, {hi}]"
                )

    @classmethod
    def everything(cls) -> "HeaderBox":
        """The box covering the entire header space."""
        return cls(_full_intervals())

    @classmethod
    def build(cls, **field_ranges: Interval) -> "HeaderBox":
        """Build a box constraining only the given fields.

        >>> HeaderBox.build(proto=(6, 6)).intervals[2]
        (6, 6)
        """
        intervals = list(_full_intervals())
        for field, rng in field_ranges.items():
            if field not in FIELDS:
                raise HeaderSpaceError(f"unknown field: {field}")
            intervals[FIELDS.index(field)] = rng
        return cls(tuple(intervals))

    @classmethod
    def from_dst_prefix(cls, prefix: Prefix) -> "HeaderBox":
        return cls.build(dst_ip=prefix.as_interval())

    def interval(self, field: str) -> Interval:
        return self.intervals[FIELDS.index(field)]

    def volume(self) -> int:
        """Number of concrete headers covered by the box."""
        total = 1
        for lo, hi in self.intervals:
            total *= hi - lo + 1
        return total

    def contains(self, header: Header) -> bool:
        return all(lo <= v <= hi for v, (lo, hi) in zip(header, self.intervals))

    def is_subset(self, other: "HeaderBox") -> bool:
        return all(
            olo <= lo and hi <= ohi
            for (lo, hi), (olo, ohi) in zip(self.intervals, other.intervals)
        )

    def intersect(self, other: "HeaderBox") -> Optional["HeaderBox"]:
        """The overlap of two boxes, or ``None`` when they are disjoint."""
        out: List[Interval] = []
        for (alo, ahi), (blo, bhi) in zip(self.intervals, other.intervals):
            lo, hi = max(alo, blo), min(ahi, bhi)
            if lo > hi:
                return None
            out.append((lo, hi))
        return HeaderBox(tuple(out))

    def subtract(self, other: "HeaderBox") -> List["HeaderBox"]:
        """This box minus ``other``, as a list of disjoint boxes.

        The classic slab decomposition: peel off the part of each dimension
        lying outside ``other`` while pinning earlier dimensions to the
        overlap.  Produces at most ``2 * len(FIELDS)`` boxes.
        """
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        if self == overlap:
            return []
        pieces: List[HeaderBox] = []
        pinned: List[Interval] = []
        for axis, ((lo, hi), (olo, ohi)) in enumerate(
            zip(self.intervals, overlap.intervals)
        ):
            rest = self.intervals[axis + 1 :]
            if lo < olo:
                pieces.append(
                    HeaderBox(tuple(pinned) + ((lo, olo - 1),) + rest)
                )
            if ohi < hi:
                pieces.append(
                    HeaderBox(tuple(pinned) + ((ohi + 1, hi),) + rest)
                )
            pinned.append((olo, ohi))
        return pieces

    def sample(self) -> Header:
        """A concrete header inside the box (the low corner)."""
        return tuple(lo for lo, _ in self.intervals)  # type: ignore[return-value]

    def __str__(self) -> str:
        parts = []
        for field, (lo, hi) in zip(FIELDS, self.intervals):
            if (lo, hi) != (0, FIELD_MAX[field]):
                parts.append(f"{field}=[{lo},{hi}]")
        return "Box(" + ", ".join(parts or ["*"]) + ")"


@dataclass(frozen=True)
class Predicate:
    """A union of disjoint header boxes.

    Predicates are the set algebra backing equivalence classes: they support
    intersection, subtraction, disjoint union, and emptiness/volume queries.
    The boxes are kept disjoint as an invariant (constructors guarantee it;
    operations preserve it).
    """

    boxes: Tuple[HeaderBox, ...]

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "Predicate":
        return cls(())

    @classmethod
    def everything(cls) -> "Predicate":
        return cls((HeaderBox.everything(),))

    @classmethod
    def from_box(cls, box: HeaderBox) -> "Predicate":
        return cls((box,))

    @classmethod
    def from_dst_prefix(cls, prefix: Prefix) -> "Predicate":
        return cls((HeaderBox.from_dst_prefix(prefix),))

    @classmethod
    def from_disjoint_boxes(cls, boxes: Sequence[HeaderBox]) -> "Predicate":
        """Wrap boxes the caller guarantees to be pairwise disjoint."""
        return cls(tuple(boxes))

    # -- set algebra -------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.boxes

    def volume(self) -> int:
        return sum(box.volume() for box in self.boxes)

    def contains(self, header: Header) -> bool:
        return any(box.contains(header) for box in self.boxes)

    def intersect_box(self, box: HeaderBox) -> "Predicate":
        out = []
        for mine in self.boxes:
            overlap = mine.intersect(box)
            if overlap is not None:
                out.append(overlap)
        return Predicate(tuple(out))

    def intersect(self, other: "Predicate") -> "Predicate":
        out: List[HeaderBox] = []
        for box in other.boxes:
            out.extend(self.intersect_box(box).boxes)
        return Predicate(tuple(out))

    def subtract_box(self, box: HeaderBox) -> "Predicate":
        out: List[HeaderBox] = []
        for mine in self.boxes:
            out.extend(mine.subtract(box))
        return Predicate(tuple(out))

    def subtract(self, other: "Predicate") -> "Predicate":
        result = self
        for box in other.boxes:
            result = result.subtract_box(box)
            if result.is_empty():
                break
        return result

    def union_disjoint(self, other: "Predicate") -> "Predicate":
        """Union of two predicates the caller knows are disjoint."""
        return Predicate(self.boxes + other.boxes)

    def union(self, other: "Predicate") -> "Predicate":
        """General union (re-establishes disjointness)."""
        return self.union_disjoint(other.subtract(self))

    def overlaps(self, other: "Predicate") -> bool:
        return any(
            a.intersect(b) is not None for a in self.boxes for b in other.boxes
        )

    def overlaps_box(self, box: HeaderBox) -> bool:
        return any(a.intersect(box) is not None for a in self.boxes)

    def is_subset_of_box(self, box: HeaderBox) -> bool:
        return all(mine.is_subset(box) for mine in self.boxes)

    def semantically_equals(self, other: "Predicate") -> bool:
        """Set equality (structural ``==`` compares box lists literally)."""
        return self.subtract(other).is_empty() and other.subtract(self).is_empty()

    def sample(self) -> Header:
        if self.is_empty():
            raise HeaderSpaceError("cannot sample from an empty predicate")
        return self.boxes[0].sample()

    def samples(self) -> Iterator[Header]:
        """One concrete header per box."""
        for box in self.boxes:
            yield box.sample()

    def dst_prefixes(self) -> List[Prefix]:
        """CIDR cover of the destination-IP footprint (for reporting)."""
        from repro.net.addr import interval_to_prefixes

        prefixes: List[Prefix] = []
        seen = set()
        for box in self.boxes:
            lo, hi = box.interval("dst_ip")
            for prefix in interval_to_prefixes(lo, hi):
                if prefix not in seen:
                    seen.add(prefix)
                    prefixes.append(prefix)
        return prefixes

    def __str__(self) -> str:
        if self.is_empty():
            return "Pred(empty)"
        return "Pred(" + " | ".join(str(b) for b in self.boxes) + ")"


def header(dst_ip: int, src_ip: int = 0, proto: int = 0, dst_port: int = 0) -> Header:
    """Convenience constructor for a concrete header tuple."""
    return (dst_ip, src_ip, proto, dst_port)
