"""Topology generators.

The paper's evaluation (§5) runs on a k=12 fat tree: 180 switches and 864
links.  :func:`fat_tree` reproduces that construction for any even k.  The
other generators (grid, ring, line, random) are used by tests and the example
applications.

Every generator returns a :class:`LabeledTopology`: the physical topology
plus the metadata the configuration synthesizer needs — per-node role labels
and the host prefixes each edge device originates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addr import Prefix, parse_ipv4
from repro.net.topology import InterfaceId, Topology, TopologyError

#: Base of the address pool used for point-to-point link subnets (/30 each).
LINK_POOL_BASE = parse_ipv4("10.0.0.0")

#: Base of the address pool used for host (destination) prefixes (/24 each).
HOST_POOL_BASE = parse_ipv4("172.16.0.0")


@dataclass
class LabeledTopology:
    """A topology plus the labels needed to synthesize configurations."""

    topology: Topology
    #: node -> role ("core" / "agg" / "edge" / "router")
    roles: Dict[str, str] = field(default_factory=dict)
    #: node -> host prefixes originated (advertised) by that node
    host_prefixes: Dict[str, List[Prefix]] = field(default_factory=dict)
    #: human-readable description of the generator parameters
    description: str = ""

    def edge_nodes(self) -> List[str]:
        return [n for n, r in self.roles.items() if r == "edge"]


class _SubnetAllocator:
    """Hands out consecutive subnets from an address pool."""

    def __init__(self, base: int, length: int) -> None:
        self._next = base
        self._step = 1 << (32 - length)
        self._length = length

    def allocate(self) -> Prefix:
        prefix = Prefix(self._next, self._length)
        self._next += self._step
        return prefix


def _wire(
    topo: Topology,
    links: _SubnetAllocator,
    a_node: str,
    a_if: str,
    b_node: str,
    b_if: str,
) -> None:
    """Create two addressed interfaces and the link between them."""
    subnet = links.allocate()
    topo.add_interface(a_node, a_if, prefix=subnet, address=subnet.first() + 1)
    topo.add_interface(b_node, b_if, prefix=subnet, address=subnet.first() + 2)
    topo.add_link(InterfaceId(a_node, a_if), InterfaceId(b_node, b_if))


def _attach_host_prefix(
    labeled: LabeledTopology, hosts: _SubnetAllocator, node: str
) -> None:
    """Give ``node`` a host subnet on a stub interface."""
    prefix = hosts.allocate()
    labeled.topology.add_interface(
        node, "host0", prefix=prefix, address=prefix.first() + 1
    )
    labeled.host_prefixes.setdefault(node, []).append(prefix)


def fat_tree(k: int) -> LabeledTopology:
    """The k-ary fat tree of the paper's evaluation.

    - ``(k/2)^2`` core switches, each connected to one aggregation switch in
      every pod;
    - ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches,
      fully bipartitely connected inside the pod;
    - every edge switch originates one /24 host prefix.

    ``fat_tree(12)`` gives the paper's topology: 180 nodes, 864 links.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology()
    labeled = LabeledTopology(topo, description=f"fat-tree(k={k})")
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)

    cores = [f"core{i}" for i in range(half * half)]
    for name in cores:
        topo.add_node(name)
        labeled.roles[name] = "core"
    for pod in range(k):
        for i in range(half):
            agg = f"agg{pod}_{i}"
            topo.add_node(agg)
            labeled.roles[agg] = "agg"
        for i in range(half):
            edge = f"edge{pod}_{i}"
            topo.add_node(edge)
            labeled.roles[edge] = "edge"

    # Core <-> aggregation: core (i*half + j) connects to agg i of every pod.
    for i in range(half):
        for j in range(half):
            core = f"core{i * half + j}"
            for pod in range(k):
                agg = f"agg{pod}_{i}"
                _wire(topo, links, core, f"eth{pod}", agg, f"up{j}")

    # Aggregation <-> edge, full bipartite within each pod.
    for pod in range(k):
        for i in range(half):
            agg = f"agg{pod}_{i}"
            for j in range(half):
                edge = f"edge{pod}_{j}"
                _wire(topo, links, agg, f"down{j}", edge, f"up{i}")

    for pod in range(k):
        for j in range(half):
            _attach_host_prefix(labeled, hosts, f"edge{pod}_{j}")
    return labeled


def line(n: int) -> LabeledTopology:
    """A chain of n routers; every router originates a host prefix."""
    if n < 1:
        raise TopologyError(f"need at least one node, got {n}")
    topo = Topology()
    labeled = LabeledTopology(topo, description=f"line(n={n})")
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)
    for i in range(n):
        topo.add_node(f"r{i}")
        labeled.roles[f"r{i}"] = "router"
    for i in range(n - 1):
        _wire(topo, links, f"r{i}", "eth1", f"r{i + 1}", "eth0")
    for i in range(n):
        _attach_host_prefix(labeled, hosts, f"r{i}")
    return labeled


def ring(n: int) -> LabeledTopology:
    """A cycle of n routers; every router originates a host prefix."""
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    topo = Topology()
    labeled = LabeledTopology(topo, description=f"ring(n={n})")
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)
    for i in range(n):
        topo.add_node(f"r{i}")
        labeled.roles[f"r{i}"] = "router"
    for i in range(n):
        _wire(topo, links, f"r{i}", "eth1", f"r{(i + 1) % n}", "eth0")
    for i in range(n):
        _attach_host_prefix(labeled, hosts, f"r{i}")
    return labeled


def grid(rows: int, cols: int) -> LabeledTopology:
    """A rows x cols mesh; every router originates a host prefix."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid dimensions must be positive: {rows}x{cols}")
    topo = Topology()
    labeled = LabeledTopology(topo, description=f"grid({rows}x{cols})")
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)

    def name(r: int, c: int) -> str:
        return f"g{r}_{c}"

    for r in range(rows):
        for c in range(cols):
            topo.add_node(name(r, c))
            labeled.roles[name(r, c)] = "router"
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                _wire(topo, links, name(r, c), f"e{c + 1}", name(r, c + 1), f"w{c}")
            if r + 1 < rows:
                _wire(topo, links, name(r, c), f"s{r + 1}", name(r + 1, c), f"n{r}")
    for r in range(rows):
        for c in range(cols):
            _attach_host_prefix(labeled, hosts, name(r, c))
    return labeled


def random_connected(
    n: int, extra_links: int, seed: Optional[int] = None
) -> LabeledTopology:
    """A random connected graph: a random spanning tree plus extra links."""
    if n < 1:
        raise TopologyError(f"need at least one node, got {n}")
    rng = random.Random(seed)
    topo = Topology()
    labeled = LabeledTopology(
        topo, description=f"random(n={n}, extra={extra_links}, seed={seed})"
    )
    links = _SubnetAllocator(LINK_POOL_BASE, 30)
    hosts = _SubnetAllocator(HOST_POOL_BASE, 24)
    names = [f"r{i}" for i in range(n)]
    for name in names:
        topo.add_node(name)
        labeled.roles[name] = "router"

    counters: Dict[str, int] = {name: 0 for name in names}

    def fresh_if(node: str) -> str:
        counters[node] += 1
        return f"eth{counters[node]}"

    linked_pairs: set = set()

    def connect(a: str, b: str) -> None:
        linked_pairs.add(frozenset((a, b)))
        _wire(topo, links, a, fresh_if(a), b, fresh_if(b))

    order = names[:]
    rng.shuffle(order)
    for i in range(1, n):
        connect(order[i], rng.choice(order[:i]))

    attempts = 0
    added = 0
    while added < extra_links and attempts < extra_links * 20 + 100:
        attempts += 1
        a, b = rng.sample(names, 2)
        if frozenset((a, b)) in linked_pairs:
            continue
        connect(a, b)
        added += 1

    for name in names:
        _attach_host_prefix(labeled, hosts, name)
    return labeled


def fat_tree_expected_sizes(k: int) -> Tuple[int, int]:
    """(num switches, num links) of the k-ary fat tree, analytically."""
    half = k // 2
    nodes = half * half + k * k  # cores + (agg+edge per pod)
    links = half * half * k + k * half * half
    return nodes, links
