"""Network topology substrate.

A :class:`Topology` is the physical layer the control plane runs over:
nodes (routers), named interfaces, and point-to-point links between
interfaces.  The configuration layer (``repro.config``) references nodes and
interfaces by name; the routing layer reads link state (including per-link
up/down status) from here.

Interfaces carry an IP prefix.  For point-to-point links the two endpoint
interfaces share a /30 (or /31) subnet, mirroring how the paper's fat-tree
configurations are synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addr import Prefix


class TopologyError(ValueError):
    """Raised for inconsistent topology construction or lookups."""


@dataclass(frozen=True)
class InterfaceId:
    """Globally unique interface identifier: (node name, interface name)."""

    node: str
    name: str

    def __str__(self) -> str:
        return f"{self.node}:{self.name}"


@dataclass
class Interface:
    """A router interface.

    ``prefix`` is the subnet configured on the interface; ``address`` is the
    interface's own address within that subnet (an integer).  ``enabled``
    reflects administrative status ("no shutdown").
    """

    id: InterfaceId
    prefix: Optional[Prefix] = None
    address: Optional[int] = None
    enabled: bool = True

    @property
    def node(self) -> str:
        return self.id.node

    @property
    def name(self) -> str:
        return self.id.name


@dataclass(frozen=True)
class Link:
    """An undirected point-to-point link between two interfaces."""

    a: InterfaceId
    b: InterfaceId

    def other(self, end: InterfaceId) -> InterfaceId:
        if end == self.a:
            return self.b
        if end == self.b:
            return self.a
        raise TopologyError(f"{end} is not an endpoint of {self}")

    def endpoints(self) -> Tuple[InterfaceId, InterfaceId]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"{self.a} <-> {self.b}"


@dataclass
class Node:
    """A router."""

    name: str
    interfaces: Dict[str, Interface] = field(default_factory=dict)

    def interface(self, name: str) -> Interface:
        try:
            return self.interfaces[name]
        except KeyError:
            raise TopologyError(f"no interface {name!r} on node {self.name!r}") from None


class Topology:
    """A mutable collection of nodes, interfaces, and links."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[InterfaceId, Link] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name!r}")
        node = Node(name)
        self._nodes[name] = node
        return node

    def add_interface(
        self,
        node: str,
        name: str,
        prefix: Optional[Prefix] = None,
        address: Optional[int] = None,
    ) -> Interface:
        owner = self.node(node)
        if name in owner.interfaces:
            raise TopologyError(f"duplicate interface {name!r} on node {node!r}")
        iface = Interface(InterfaceId(node, name), prefix=prefix, address=address)
        owner.interfaces[name] = iface
        return iface

    def add_link(self, a: InterfaceId, b: InterfaceId) -> Link:
        for end in (a, b):
            self.interface(end)  # validate existence
            if end in self._links:
                raise TopologyError(f"interface {end} is already linked")
        if a == b:
            raise TopologyError(f"self-link on {a}")
        link = Link(a, b)
        self._links[a] = link
        self._links[b] = link
        return link

    # -- lookups -----------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"no node named {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def interface(self, iface_id: InterfaceId) -> Interface:
        return self.node(iface_id.node).interface(iface_id.name)

    def link_at(self, iface_id: InterfaceId) -> Optional[Link]:
        return self._links.get(iface_id)

    def neighbor_of(self, iface_id: InterfaceId) -> Optional[InterfaceId]:
        """The interface at the other end of the link, if any."""
        link = self._links.get(iface_id)
        if link is None:
            return None
        return link.other(iface_id)

    # -- iteration ---------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def interfaces(self) -> Iterator[Interface]:
        for node in self._nodes.values():
            yield from node.interfaces.values()

    def links(self) -> Iterator[Link]:
        seen = set()
        for link in self._links.values():
            key = id(link)
            if key not in seen:
                seen.add(key)
                yield link

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_links(self) -> int:
        return sum(1 for _ in self.links())

    # -- derived views -----------------------------------------------------

    def adjacency(self) -> Dict[str, List[Tuple[str, InterfaceId, InterfaceId]]]:
        """Node-level adjacency: node -> [(peer, local iface, peer iface)]."""
        adj: Dict[str, List[Tuple[str, InterfaceId, InterfaceId]]] = {
            name: [] for name in self._nodes
        }
        for link in self.links():
            a, b = link.endpoints()
            adj[a.node].append((b.node, a, b))
            adj[b.node].append((a.node, b, a))
        return adj

    def __str__(self) -> str:
        return f"Topology(nodes={self.num_nodes()}, links={self.num_links()})"
