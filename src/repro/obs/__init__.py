"""repro.obs — production observability for the serving pipeline.

Three cooperating pieces, all wired into :class:`~repro.serve.daemon.ServeDaemon`
and readable live while it runs:

- :mod:`repro.obs.journal` — the structured **event journal**: an
  append-only JSONL file of every batch outcome (committed, retried,
  quarantined, lint-rejected, breaker transition, ...) with monotonic
  sequence numbers that survive daemon restarts and correlation ids
  threading batch → stage → worker → finding;
- :mod:`repro.obs.recorder` — the **flight recorder**: a bounded
  in-memory ring of recent events plus per-stage latency histograms
  (p50/p95/p99), dumped atomically into the dead-letter directory
  whenever a batch is quarantined or the circuit breaker opens;
- :mod:`repro.obs.server` — the **live introspection server**: a stdlib
  ``http.server`` thread serving ``/health``, ``/stats``,
  ``/events?since=SEQ``, and ``/metrics`` (Prometheus text), consumed by
  the ``repro top`` and ``repro tail`` CLI verbs.

Cross-process *span* aggregation (pool workers shipping their span trees
back to the parent tracer) lives in :mod:`repro.telemetry.tracer`
(:func:`~repro.telemetry.tracer.export_spans` /
:func:`~repro.telemetry.tracer.graft_spans`) and
:mod:`repro.parallel.worker`; this package covers the serving side.
"""

from repro.obs.journal import (
    EVENT_AUDIT,
    EVENT_BREAKER,
    EVENT_CHECKPOINT,
    EVENT_CHECKPOINT_FAILED,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_COMMITTED,
    EVENT_DEADLINE,
    EVENT_FINDING,
    EVENT_JOURNAL_DEGRADED,
    EVENT_LINT_REJECTED,
    EVENT_MALFORMED,
    EVENT_QUARANTINED,
    EVENT_REBUILD,
    EVENT_RETRIED,
    EVENT_STAGE,
    EVENT_START,
    EVENT_STOP,
    EVENT_TENANT_EVICTED,
    EVENT_TENANT_FAILED,
    EVENT_TENANT_HYDRATED,
    EVENT_TENANT_SHED,
    EVENT_TYPES,
    EventJournal,
    RepairReport,
    TenantJournal,
    correlation_id,
    follow_events,
    last_sequence,
    read_events,
    repair_journal,
)
from repro.obs.recorder import FlightRecorder, load_flight_dump, percentile
from repro.obs.server import IntrospectionServer, ObsState

__all__ = [
    "EVENT_AUDIT",
    "EVENT_BREAKER",
    "EVENT_CHECKPOINT",
    "EVENT_CHECKPOINT_FAILED",
    "EVENT_CHECKPOINT_FALLBACK",
    "EVENT_JOURNAL_DEGRADED",
    "EVENT_COMMITTED",
    "EVENT_DEADLINE",
    "EVENT_FINDING",
    "EVENT_LINT_REJECTED",
    "EVENT_MALFORMED",
    "EVENT_QUARANTINED",
    "EVENT_REBUILD",
    "EVENT_RETRIED",
    "EVENT_STAGE",
    "EVENT_START",
    "EVENT_STOP",
    "EVENT_TENANT_EVICTED",
    "EVENT_TENANT_FAILED",
    "EVENT_TENANT_HYDRATED",
    "EVENT_TENANT_SHED",
    "EVENT_TYPES",
    "EventJournal",
    "RepairReport",
    "TenantJournal",
    "correlation_id",
    "follow_events",
    "last_sequence",
    "read_events",
    "repair_journal",
    "FlightRecorder",
    "load_flight_dump",
    "percentile",
    "IntrospectionServer",
    "ObsState",
]
