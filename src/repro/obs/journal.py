"""The structured event journal: append-only JSONL with monotonic seqs.

Every consequential daemon action becomes one JSON object on one line::

    {"seq": 42, "ts": 1754650000.123, "event": "committed",
     "cid": "000007", "batch": "000007", "attempts": 1, ...}

Schema (every event):

- ``seq``    monotonic sequence number, **gapless across daemon
  restarts**: a journal reopened on the same file resumes numbering from
  the last durable line, so ``/events?since=SEQ`` replays the stream with
  no hole and no reuse;
- ``ts``     wall-clock unix timestamp (the only wall-clock field in the
  telemetry stack — journals are operational logs, not diffable traces);
- ``event``  one of :data:`EVENT_TYPES`;
- ``cid``    the correlation id: ``batch[/stage][/wN][/finding]``,
  threading one batch through its stages, the worker that computed a
  shard, and any policy finding it produced.

Event-specific fields ride alongside (``attempts``, ``failure_class``,
``seconds``, ``from``/``to`` for breaker transitions, ...); consumers must
ignore fields they do not know.

Appends are flushed per event, so a crash loses at most the line being
written; the reader tolerates a torn final line (it is skipped, and the
writer's tail scan ignores it too, so the next daemon reuses its seq —
a seq is only *taken* once its line is durable and parseable).

A journal constructed with ``path=None`` keeps the same seq/subscriber
behaviour purely in memory — that is what lets the flight recorder and
the introspection server run even when no journal file was configured.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.chaos.points import crash_point
from repro.resilience.faults import fault_point
from repro.telemetry import get_metrics, names

EVENT_START = "daemon-start"
EVENT_STOP = "daemon-stop"
EVENT_COMMITTED = "committed"
EVENT_RETRIED = "retried"
EVENT_QUARANTINED = "quarantined"
EVENT_LINT_REJECTED = "lint-rejected"
EVENT_MALFORMED = "malformed"
EVENT_REBUILD = "rebuild"
EVENT_DEADLINE = "deadline-exceeded"
EVENT_BREAKER = "breaker"
EVENT_STAGE = "stage"
EVENT_FINDING = "finding"
EVENT_AUDIT = "audit"
EVENT_CHECKPOINT = "checkpoint"
# Storage-fault degradation (PR "durable storage hardening").
EVENT_CHECKPOINT_FALLBACK = "checkpoint-fallback"
EVENT_CHECKPOINT_FAILED = "checkpoint-failed"
EVENT_JOURNAL_DEGRADED = "journal-degraded"
# Multi-tenant service lifecycle (repro.tenants).
EVENT_TENANT_HYDRATED = "tenant-hydrated"
EVENT_TENANT_EVICTED = "tenant-evicted"
EVENT_TENANT_SHED = "load-shed"
EVENT_TENANT_FAILED = "tenant-failed"

#: Every event type the daemon emits, in rough lifecycle order.  The docs
#: table in DESIGN.md mirrors this tuple; tests assert they stay in sync.
EVENT_TYPES = (
    EVENT_START,
    EVENT_STOP,
    EVENT_COMMITTED,
    EVENT_RETRIED,
    EVENT_QUARANTINED,
    EVENT_LINT_REJECTED,
    EVENT_MALFORMED,
    EVENT_REBUILD,
    EVENT_DEADLINE,
    EVENT_BREAKER,
    EVENT_STAGE,
    EVENT_FINDING,
    EVENT_AUDIT,
    EVENT_CHECKPOINT,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_CHECKPOINT_FAILED,
    EVENT_JOURNAL_DEGRADED,
    EVENT_TENANT_HYDRATED,
    EVENT_TENANT_EVICTED,
    EVENT_TENANT_SHED,
    EVENT_TENANT_FAILED,
)


def correlation_id(
    batch: Optional[str] = None,
    stage: Optional[str] = None,
    worker: Optional[int] = None,
    finding: Optional[str] = None,
    tenant: Optional[str] = None,
) -> str:
    """``[tenant:]batch[/stage][/wN][/finding]`` — empty segments between
    two present ones are kept (as ``-``) so the path stays positional.
    The tenant prefix (multi-tenant service) uses ``:`` so single-tenant
    cids parse unchanged."""
    segments: List[str] = [
        batch or "-",
        stage or "-",
        f"w{worker}" if worker is not None else "-",
        finding or "-",
    ]
    while len(segments) > 1 and segments[-1] == "-":
        segments.pop()
    path = "/".join(segments)
    return f"{tenant}:{path}" if tenant is not None else path


class EventJournal:
    """Appends events to a JSONL file (or memory) with gapless seqs."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._handle = None
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._seq = 0
        #: True once a file write failed (ENOSPC, EIO, ...): the journal
        #: keeps emitting to subscribers (the flight recorder) in memory
        #: instead of crashing the daemon.
        self.degraded = False
        self.last_write_error: Optional[str] = None
        if self.path is not None:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._seq = last_sequence(self.path)
            self._handle = self.path.open("a")
            # A crash mid-append leaves a torn, unterminated last line;
            # start on a fresh line so the next event is not glued to it.
            if self.path.stat().st_size > 0:
                with self.path.open("rb") as tail:
                    tail.seek(-1, 2)
                    if tail.read(1) != b"\n":
                        self._handle.write("\n")
                        self._handle.flush()

    @property
    def seq(self) -> int:
        """Sequence number of the most recently emitted event."""
        return self._seq

    def subscribe(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """``callback(event)`` runs synchronously on every emit — the
        flight recorder taps the journal this way."""
        self._subscribers.append(callback)

    def emit(
        self,
        event: str,
        batch: Optional[str] = None,
        stage: Optional[str] = None,
        worker: Optional[int] = None,
        finding: Optional[str] = None,
        tenant: Optional[str] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Append one event; returns the full record (with seq/ts/cid)."""
        self._seq += 1
        record: Dict[str, Any] = {
            "seq": self._seq,
            "ts": time.time(),
            "event": event,
            "cid": correlation_id(batch, stage, worker, finding, tenant),
        }
        if batch is not None:
            record["batch"] = batch
        if stage is not None:
            record["stage"] = stage
        if worker is not None:
            record["worker"] = worker
        if finding is not None:
            record["finding"] = finding
        if tenant is not None:
            record["tenant"] = tenant
        record.update(fields)
        degraded_now = False
        if self._handle is not None:
            line = json.dumps(record, sort_keys=True) + "\n"
            try:
                fault_point("journal_write", record)
                crash_point("journal.append", tear=lambda: self._tear(line))
                self._handle.write(line)
                self._handle.flush()
            except OSError as error:
                # Storage fault (disk full, dying device): degrade to the
                # in-memory flight recorder instead of killing the daemon.
                # Subscribers still see every event; only durability is
                # lost, and the degradation itself becomes an event.
                degraded_now = True
                self.degraded = True
                self.last_write_error = str(error)
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.gauge(names.JOURNAL_DEGRADED).set(1)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.OBS_EVENTS, event=event).inc()
            metrics.gauge(names.OBS_JOURNAL_SEQ).set(self._seq)
        for callback in self._subscribers:
            callback(record)
        if degraded_now:
            # Safe recursion: the handle is gone, so this emit is
            # memory-only and cannot degrade again.
            self.emit(EVENT_JOURNAL_DEGRADED, error=self.last_write_error)
        return record

    def _tear(self, line: str) -> None:
        """Leave the half-written line a mid-append kill would leave —
        the ``journal.append`` crash point's realistic partial state."""
        if self._handle is None:
            return
        self._handle.write(line[: max(1, len(line) // 2)])
        self._handle.flush()

    def events_since(self, since: int = 0) -> List[Dict[str, Any]]:
        """Durable events with ``seq > since`` (file-backed journals read
        the file, so this replays across restarts; memory journals can
        only answer from what the caller retained — they return [])."""
        if self.path is None:
            return []
        return list(read_events(self.path, since=since))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(
    path: Union[str, Path], since: int = 0
) -> Iterator[Dict[str, Any]]:
    """Iterate journal events with ``seq > since``, in file order.

    Torn or malformed lines (a crash mid-append) are skipped rather than
    raised: the journal is an operational log and must stay readable
    after any crash.
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) or "seq" not in record:
                continue
            if record["seq"] > since:
                yield record


class TenantJournal:
    """A tagging view over a shared :class:`EventJournal`: every emit is
    stamped with one tenant id, so the multi-tenant service can hand each
    per-tenant fault domain the same append-only file while keeping its
    events attributable (``cid`` prefix + ``tenant`` field)."""

    def __init__(self, inner: EventJournal, tenant: str) -> None:
        self._inner = inner
        self.tenant = tenant

    @property
    def seq(self) -> int:
        return self._inner.seq

    @property
    def path(self) -> Optional[Path]:
        return self._inner.path

    def emit(self, event: str, **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("tenant", self.tenant)
        return self._inner.emit(event, **kwargs)

    def events_since(self, since: int = 0) -> List[Dict[str, Any]]:
        return self._inner.events_since(since)


def follow_events(
    path: Union[str, Path],
    since: int = 0,
    poll_interval: float = 1.0,
    should_stop: Optional[Callable[[], bool]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[Dict[str, Any]]:
    """Tail a journal file forever, surviving rotation and truncation.

    ``repro tail --follow`` used to re-read the same path with a rising
    ``since`` — after a logrotate-style rename-and-recreate (or an
    in-place truncation) the fresh file restarts its seqs at 1, every
    event fails the ``seq > since`` filter, and the tail goes silent
    while looking alive.  This generator stats the path between polls
    and resets its cursor whenever the inode changes or the file
    shrinks, so the first events of the successor file are yielded too.

    ``should_stop``/``sleep`` are injectable for deterministic tests;
    the generator itself never raises on a missing file (rotation can
    momentarily leave no file at all).
    """
    import os as _os

    path = Path(path)
    identity: Optional[tuple] = None  # (st_ino, st_dev)
    size = 0
    while True:
        try:
            stat = _os.stat(path)
        except OSError:
            stat = None
        if stat is not None:
            if identity is None:
                identity = (stat.st_ino, stat.st_dev)
            elif (stat.st_ino, stat.st_dev) != identity or stat.st_size < size:
                # Rotated (new inode) or truncated in place: the seq
                # numbering restarted, so the cursor must too.
                identity = (stat.st_ino, stat.st_dev)
                since = 0
            size = stat.st_size
        for event in read_events(path, since=since):
            raw_seq = event.get("seq", since)
            if isinstance(raw_seq, int):
                since = max(since, raw_seq)
            yield event
        if should_stop is not None and should_stop():
            return
        sleep(poll_interval)


def last_sequence(path: Union[str, Path]) -> int:
    """The seq of the last durable, parseable event in ``path`` (0 when
    the file is missing or empty) — what a reopened journal resumes from."""
    last = 0
    for record in read_events(path):
        if isinstance(record.get("seq"), int):
            last = max(last, record["seq"])
    return last


@dataclass(frozen=True)
class RepairReport:
    """What :func:`repair_journal` did to a journal file."""

    path: Path
    #: ``none`` (already clean), ``terminated`` (final line was complete
    #: JSON missing only its newline — newline appended), ``truncated``
    #: (torn final fragment removed), or ``missing`` (no file).
    action: str
    kept_bytes: int = 0
    removed_bytes: int = 0
    last_seq: int = 0
    detail: str = ""

    @property
    def changed(self) -> bool:
        return self.action in ("terminated", "truncated")


def _parse_record(raw: bytes) -> Optional[Dict[str, Any]]:
    try:
        record = json.loads(raw)
    except ValueError:
        return None
    if isinstance(record, dict) and isinstance(record.get("seq"), int):
        return record
    return None


def repair_journal(path: Union[str, Path]) -> RepairReport:
    """Repair a torn final journal line *in place* and report it.

    Readers already tolerate a torn tail by skipping it; this makes the
    damage explicit and removes it, so tools that process the raw file
    (or humans) see a clean log.  Two cases:

    - the final fragment is complete JSON that merely lost its newline
      (killed between ``write`` and the terminator): its seq was already
      *taken* by readers, so the line is kept and the newline appended —
      truncating it would let the next writer reuse that seq;
    - anything else after the last newline is a torn fragment: truncated.

    Damage *before* later good lines is left alone — only the tail is
    ever touched, and the file is never rewritten wholesale.
    """
    path = Path(path)
    if not path.exists():
        return RepairReport(path, "missing", detail="no journal file")
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return RepairReport(
            path, "none", kept_bytes=len(data), last_seq=last_sequence(path)
        )
    cut = data.rfind(b"\n") + 1  # 0 when the file is a single fragment
    fragment = data[cut:]
    record = _parse_record(fragment)
    if record is not None:
        with path.open("ab") as handle:
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        return RepairReport(
            path,
            "terminated",
            kept_bytes=len(data) + 1,
            last_seq=record["seq"],
            detail=f"final line seq={record['seq']} lacked its newline",
        )
    with path.open("r+b") as handle:
        handle.truncate(cut)
        handle.flush()
        os.fsync(handle.fileno())
    return RepairReport(
        path,
        "truncated",
        kept_bytes=cut,
        removed_bytes=len(fragment),
        last_seq=last_sequence(path),
        detail=f"removed a {len(fragment)}-byte torn fragment",
    )
