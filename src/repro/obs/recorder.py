"""The flight recorder: recent events + latency histograms, in memory.

Black-box style: a bounded ring of the most recent journal events and a
sliding window of per-stage latency samples, kept cheap enough to run
always.  When something goes wrong — a batch is quarantined, the circuit
breaker opens — the daemon dumps the recorder's snapshot atomically into
the dead-letter directory next to the payload and traceback, so the
post-mortem shows not just *what* failed but what the pipeline was doing
in the moments before.

Percentiles are computed at snapshot time from the sample window (the
window bounds memory, not accuracy-over-all-time: ``count``/``sum`` do
cover the whole run).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

from repro.telemetry import atomic_write_text, get_metrics, names

#: Events kept in the ring.
DEFAULT_EVENT_CAPACITY = 256
#: Latency samples kept per stage for percentile estimation.
DEFAULT_SAMPLE_WINDOW = 512


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (0..100) of ``samples`` by the nearest-rank
    method; 0.0 for an empty list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[min(len(ordered), int(rank)) - 1]


class _StageWindow:
    __slots__ = ("samples", "count", "total", "peak")

    def __init__(self, window: int) -> None:
        self.samples: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def observe(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.count += 1
        self.total += seconds
        self.peak = max(self.peak, seconds)

    def summary(self) -> Dict[str, float]:
        window = list(self.samples)
        return {
            "count": self.count,
            "sum_seconds": self.total,
            "mean_seconds": (self.total / self.count) if self.count else 0.0,
            "max_seconds": self.peak,
            "p50_seconds": percentile(window, 50),
            "p95_seconds": percentile(window, 95),
            "p99_seconds": percentile(window, 99),
            "window": len(window),
        }


class FlightRecorder:
    """Bounded ring of recent events + per-stage latency windows."""

    def __init__(
        self,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> None:
        if event_capacity < 1:
            raise ValueError("event_capacity must be >= 1")
        if sample_window < 1:
            raise ValueError("sample_window must be >= 1")
        self.event_capacity = event_capacity
        self.sample_window = sample_window
        self._events: Deque[Dict[str, Any]] = deque(maxlen=event_capacity)
        self._stages: Dict[str, _StageWindow] = {}
        self.dumps_written = 0

    # -- feeding ---------------------------------------------------------------

    def record_event(self, event: Dict[str, Any]) -> None:
        """Keep one journal event in the ring (journal.subscribe target)."""
        self._events.append(event)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Add one latency sample for a pipeline stage (or ``batch`` for
        whole-batch wall clock)."""
        window = self._stages.get(stage)
        if window is None:
            window = self._stages[stage] = _StageWindow(self.sample_window)
        window.observe(seconds)

    # -- reading ---------------------------------------------------------------

    def events(self, since: int = 0) -> List[Dict[str, Any]]:
        """Ring events with ``seq > since`` (the in-memory fallback for
        ``/events`` when no journal file is configured)."""
        return [e for e in self._events if e.get("seq", 0) > since]

    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {
            stage: self._stages[stage].summary()
            for stage in sorted(self._stages)
        }

    def snapshot(self) -> Dict[str, Any]:
        """The dumpable state: recent events + per-stage summaries."""
        return {
            "events": list(self._events),
            "histograms": self.histograms(),
            "event_capacity": self.event_capacity,
            "sample_window": self.sample_window,
        }

    def dump_to(self, path) -> None:
        """Atomically write the snapshot as JSON (the dead-letter dump)."""
        atomic_write_text(
            path, json.dumps(self.snapshot(), sort_keys=True, indent=2)
        )
        self.dumps_written += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.OBS_FLIGHT_DUMPS).inc()


def load_flight_dump(path) -> Optional[Dict[str, Any]]:
    """Read a flight dump back (None when absent) — the replay/triage
    helper mirroring :meth:`FlightRecorder.dump_to`."""
    path = Path(path)
    if not path.exists():
        return None
    payload: Union[Dict[str, Any], Any] = json.loads(path.read_text())
    return payload if isinstance(payload, dict) else None
