"""The live introspection server: a stdlib HTTP thread in the daemon.

Four read-only endpoints over the daemon's live state:

- ``GET /health``           the liveness/readiness payload (same JSON the
  ``--health-file`` heartbeat writes, always current);
- ``GET /stats``            serving counters, queue depth, breaker state,
  cursor, and the flight recorder's per-stage latency summaries;
- ``GET /events?since=SEQ`` journal replay: every durable event with
  ``seq > SEQ``, as JSONL (``application/x-ndjson``) — gapless across
  daemon restarts because the journal's seqs are;
- ``GET /metrics``          Prometheus text exposition (version 0.0.4)
  of the process-global metrics registry.

The server owns no state: everything is pulled through the callables of
an :class:`ObsState` at request time, so responses always reflect the
instant of the GET.  It binds ``127.0.0.1`` by default (introspection is
an operator loopback tool, not a public API) and ``port=0`` picks an
ephemeral port, published via :attr:`IntrospectionServer.port`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from repro.telemetry import get_metrics, names

ENDPOINTS = ("/health", "/stats", "/events", "/metrics", "/tenants")


def _no_metrics_exposition() -> str:
    return "# metrics collection disabled (no registry installed)\n"


def default_metrics_text() -> str:
    """Exposition of the process-global registry (or a comment when
    metrics collection is off)."""
    from repro.telemetry import MetricsRegistry, prometheus_text

    registry = get_metrics()
    if isinstance(registry, MetricsRegistry):
        return prometheus_text(registry)
    return _no_metrics_exposition()


@dataclass
class ObsState:
    """The pull-side contract between the server and its daemon."""

    health: Callable[[], Dict[str, Any]]
    stats: Callable[[], Dict[str, Any]]
    events_since: Callable[[int], List[Dict[str, Any]]]
    metrics_text: Callable[[], str] = field(default=default_metrics_text)
    #: Multi-tenant services publish per-tenant state here; single-tenant
    #: daemons leave it None and ``GET /tenants`` answers 404.
    tenants: Optional[Callable[[], Dict[str, Any]]] = None


class _Handler(BaseHTTPRequestHandler):
    # Set by the server factory.
    state: ObsState

    #: Suppress per-request stderr logging (the daemon owns the terminal).
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.OBS_HTTP_REQUESTS, endpoint=route).inc()
        try:
            if route == "/health":
                self._send_json(self.state.health())
            elif route == "/stats":
                self._send_json(self.state.stats())
            elif route == "/events":
                self._send_events(parsed.query)
            elif route == "/metrics":
                self._send_text(
                    self.state.metrics_text(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/tenants":
                if self.state.tenants is None:
                    self._send_error(
                        404, "not a multi-tenant service (no /tenants state)"
                    )
                else:
                    self._send_json(self.state.tenants())
            else:
                self._send_error(404, f"unknown endpoint {route!r}")
        except BrokenPipeError:
            pass
        except Exception as error:  # noqa: BLE001 - introspection must not kill serving
            try:
                self._send_error(500, f"{type(error).__name__}: {error}")
            except Exception:
                pass

    # -- responses -------------------------------------------------------------

    def _send_events(self, query: str) -> None:
        params = parse_qs(query)
        raw = params.get("since", ["0"])[-1]
        try:
            since = int(raw)
        except ValueError:
            self._send_error(400, f"since must be an integer, got {raw!r}")
            return
        lines = [
            json.dumps(event, sort_keys=True)
            for event in self.state.events_since(since)
        ]
        body = "\n".join(lines) + ("\n" if lines else "")
        self._send_text(body, content_type="application/x-ndjson")

    def _send_json(self, payload: Dict[str, Any]) -> None:
        self._send_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            content_type="application/json",
        )

    def _send_text(self, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, code: int, message: str) -> None:
        data = (json.dumps({"error": message}) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class IntrospectionServer:
    """A daemon-threaded HTTP server over an :class:`ObsState`."""

    def __init__(
        self, state: ObsState, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        handler = type("_BoundHandler", (_Handler,), {"state": state})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "IntrospectionServer":
        if self._thread is not None:
            raise RuntimeError("introspection server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None
