"""repro.parallel: sharded worker-pool execution for the hot path.

See :mod:`repro.parallel.plan` for the two-phase batch semantics and
:mod:`repro.parallel.executor` for the round protocol and the deferred
commit.  Wire-up lives in :class:`repro.core.realconfig.RealConfig`
(``workers=N``) and the global ``--workers`` CLI flag; ``workers=1``
never touches this package.
"""

from repro.parallel.executor import (
    BACKENDS,
    ParallelExecutor,
    PoolDriftError,
    RoundOne,
    resolve_backend,
)
from repro.parallel.plan import (
    BatchPlan,
    forwarding_devices,
    partition_checksum,
    stage_batch,
)
from repro.parallel.pool import ForkPool, InlinePool, PoolError, fork_available
from repro.parallel.shard import assign_shards
from repro.parallel.worker import Replica, StaleReplicaError
