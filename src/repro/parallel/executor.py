"""The parallel executor: epoch-stamped rounds against the worker pool.

One verification with ``workers=N`` runs three steps:

1. **Round one** (:meth:`ParallelExecutor.run_batch`): every worker
   replays phase A of the batch on its replica (keeping all replicas'
   partitions in lockstep), then computes phase-B net moves for its
   device shard only.  Shard checksums are compared before any result is
   trusted; the merged move list is sorted by (device, EC) so it is
   independent of arrival order and shard assignment.
2. **Round two** (:meth:`ParallelExecutor.run_analyses`): workers apply
   the merged moves (syncing the other shards' ports into their
   replicas) and analyze their EC shard of the affected set.
3. **Commit** (:meth:`ParallelExecutor.commit_batch`): only now does the
   main process mutate — it replays the same phase A, cross-checks its
   checksum against the pool's, and installs the merged moves.

The deferred commit is what makes the transaction story cheap: a failure
or abort in rounds one/two tears down the in-flight pool (workers are
killed mid-shard) while the main process state is untouched; only a
failure after commit begins needs the rebuild fallback.  It is also why
``workers=N`` beats serial even on one core — the serial transactional
path eagerly deep-copies the whole pipeline state every verification,
while this path captures nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.dataplane.batch import BatchResult
from repro.dataplane.ec import EcId
from repro.dataplane.model import EcMove, FilterChange, NetworkModel
from repro.dataplane.rule import RuleUpdate
from repro.parallel.plan import forwarding_devices, stage_batch
from repro.parallel.pool import ForkPool, InlinePool, PoolError, fork_available
from repro.parallel.shard import assign_shards
from repro.parallel.worker import MSG_ANALYZE, MSG_PLAN, MSG_SEED, obs_envelope
from repro.policy.paths import EcAnalysis
from repro.telemetry import (
    get_metrics,
    get_tracer,
    graft_spans,
    names,
    span,
    tracing_enabled,
)

BACKENDS = ("auto", "fork", "inline")


class PoolDriftError(PoolError):
    """Replica state diverged from the main process (checksum mismatch) —
    the round's results cannot be trusted."""


@dataclass
class RoundOne:
    """Merged output of the model-update round."""

    moves: List[EcMove] = field(default_factory=list)
    checksum: int = 0
    num_inserts: int = 0
    num_deletes: int = 0
    filter_changes: List[FilterChange] = field(default_factory=list)
    ec_splits: int = 0
    ec_merges: int = 0
    #: ECs the policy round must re-analyze: movers plus surviving
    #: filter-change ECs (all alive at end of replay, by construction).
    affected_ecs: List[EcId] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Per-worker {"queue_wait_seconds", "compute_seconds"} for the model
    #: round, in worker order (filled from the replies' obs timings).
    worker_timings: List[Dict[str, float]] = field(default_factory=list)


def resolve_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown parallel backend {backend!r} (one of {BACKENDS})")
    if backend == "auto":
        return "fork" if fork_available() else "inline"
    return backend


class ParallelExecutor:
    """Owns the pool and drives the per-verification rounds."""

    def __init__(
        self,
        model: NetworkModel,
        workers: int,
        backend: str = "auto",
        shard_seed: int = 0,
    ) -> None:
        if workers < 2:
            raise ValueError("ParallelExecutor needs workers >= 2")
        self.model = model
        self.workers = workers
        self.backend = resolve_backend(backend)
        #: Permutes shard assignment; the merged result is invariant to it
        #: (the equivalence tests drive this, production leaves it 0).
        self.shard_seed = shard_seed
        self._pool = None
        self._dirty = True
        self._epoch = 0

    # -- pool lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn and seed the pool eagerly.  Called from RealConfig's
        constructor so forking happens before any caller threads exist
        (the serve daemon starts its prefetch thread after building the
        verifier)."""
        self._ensure_pool()

    def invalidate(self) -> None:
        """Mark the replicas stale (the main model changed outside a
        batch round — policy registration, restore, recovery).  The next
        round reseeds before trusting them."""
        self._dirty = True

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        self._dirty = True
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(names.PARALLEL_POOL_UP).set(0)

    def _teardown(self) -> None:
        """Kill in-flight shard computation and force a reseed."""
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.PARALLEL_TEARDOWNS).inc()
            metrics.gauge(names.PARALLEL_POOL_UP).set(0)
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self._dirty = True

    def _make_pool(self):
        if self.backend == "fork":
            return ForkPool(self.workers)
        return InlinePool(self.workers)

    def _ensure_pool(self) -> None:
        metrics = get_metrics()
        if self._pool is not None and not self._pool.alive:
            self._teardown()
        if self._pool is None:
            self._pool = self._make_pool()
            self._pool.start()
            self._dirty = True
        if self._dirty:
            with span(
                names.SPAN_PARALLEL_SEED,
                workers=self.workers,
                backend=self.backend,
            ) as sp:
                payload = {
                    "topology": self.model.topology,
                    "merge_ecs": self.model.ecs.merge_on_unregister,
                    "mode": self.model.mode,
                    "state": self.model.capture_state(),
                }
                trace = tracing_enabled()
                # Per-worker send (not broadcast) so each envelope carries
                # the worker index for span/timing attribution.
                for idx in range(self.workers):
                    self._pool.send(
                        idx,
                        (MSG_SEED, self._epoch, payload, obs_envelope(idx, trace)),
                    )
                replies = self._gather()
                self._absorb_replies(sp, replies)
            expected = {reply["checksum"] for reply in replies}
            if len(expected) != 1:
                raise PoolDriftError(
                    f"freshly seeded replicas disagree: {sorted(expected)}"
                )
            self._dirty = False
            if metrics.enabled:
                metrics.counter(names.PARALLEL_RESEEDS).inc()
                metrics.gauge(names.PARALLEL_WORKERS).set(self.workers)
                metrics.gauge(names.PARALLEL_POOL_UP).set(1)

    def _gather(
        self, abort_check: Optional[Callable[[], None]] = None
    ) -> List[Dict]:
        """Gather one round; any failure (worker error, death, timeout,
        abort) tears the pool down before propagating — in-flight shards
        must never outlive the round that launched them."""
        try:
            return self._pool.gather(self._epoch, abort_check=abort_check)
        except BaseException:
            self._teardown()
            raise

    def _absorb_replies(self, parent, replies: List[Dict]) -> List[Dict[str, float]]:
        """Graft the workers' shipped span trees under the dispatching span
        and pull out the per-worker timings (queue wait vs. compute), in
        worker order.  The tracer check makes the untraced path free."""
        timings: List[Dict[str, float]] = []
        tracer = get_tracer()
        for idx, reply in enumerate(replies):
            timings.append(reply.get("timings") or {})
            records = reply.pop("spans", None)
            if records and tracer.enabled:
                graft_spans(tracer, parent, records, worker=idx)
        return timings

    # -- round one: sharded model update -----------------------------------------

    def run_batch(
        self,
        updates: Sequence[RuleUpdate],
        order: str,
        abort_check: Optional[Callable[[], None]] = None,
    ) -> RoundOne:
        started = time.perf_counter()
        metrics = get_metrics()
        self._ensure_pool()
        self._epoch += 1
        devices = forwarding_devices(updates)
        shards = assign_shards(devices, self.workers, seed=self.shard_seed)
        update_list = list(updates)
        with span(
            names.SPAN_PARALLEL_SHARD,
            phase="model",
            workers=self.workers,
            devices=len(devices),
        ) as sp:
            trace = tracing_enabled()
            for idx in range(self.workers):
                self._pool.send(
                    idx,
                    (
                        MSG_PLAN,
                        self._epoch,
                        update_list,
                        order,
                        shards[idx],
                        idx == 0,  # one worker reports the batch extras
                        obs_envelope(idx, trace),
                    ),
                )
            replies = self._gather(abort_check)
            timings = self._absorb_replies(sp, replies)
            checksums = {reply["checksum"] for reply in replies}
            if len(checksums) != 1:
                self._teardown()
                raise PoolDriftError(
                    f"shard replay diverged across workers: {sorted(checksums)}"
                )
            merged: List[EcMove] = []
            for reply in replies:
                merged.extend(reply["moves"])
            # Canonical order: independent of shard assignment and reply
            # arrival, so downstream consumers see the serial net effect.
            merged.sort(key=lambda m: (m.device, m.ec))
            extras = replies[0]["extras"]
            affected = sorted(
                {move.ec for move in merged} | set(extras["alive_filter_ecs"])
            )
            result = RoundOne(
                moves=merged,
                checksum=checksums.pop(),
                num_inserts=extras["num_inserts"],
                num_deletes=extras["num_deletes"],
                filter_changes=extras["filter_changes"],
                ec_splits=extras["ec_splits"],
                ec_merges=extras["ec_merges"],
                affected_ecs=affected,
                elapsed_seconds=time.perf_counter() - started,
                worker_timings=timings,
            )
            sp.set("moves", len(merged))
            sp.set("affected_ecs", len(affected))
        if metrics.enabled:
            metrics.counter(names.PARALLEL_EPOCHS).inc()
            metrics.counter(names.PARALLEL_SHARD_MOVES).inc(len(merged))
        return result

    # -- rounds one + two with worker-crash recovery -------------------------------

    def run_rounds(
        self,
        updates: Sequence[RuleUpdate],
        order: str,
        abort_check: Optional[Callable[[], None]] = None,
    ):
        """Run both pre-commit rounds, surviving worker death.

        A fork worker dying mid-round (OOM kill, SIGKILL, crash) surfaces
        as :class:`PoolError` / ``OSError`` / ``EOFError`` from the pipe.
        Because nothing has mutated the main model yet, the whole
        round pair is safely re-runnable: tear the dead pool down,
        respawn a fresh one (reseeded from the untouched main model), and
        retry once; if the respawned pool dies too, degrade to the inline
        backend and finish the batch in-process.  Only
        :class:`PoolDriftError` is never retried — a checksum divergence
        means the *results* cannot be trusted, not that a process died,
        and retrying would just recompute the same divergence.

        Returns ``(round_one, analyses)``.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                round_one = self.run_batch(updates, order, abort_check)
                analyses = self.run_analyses(round_one, abort_check)
                return round_one, analyses
            except PoolDriftError:
                raise
            except (PoolError, OSError, EOFError):
                # _gather tears down on failure, but send() can raise
                # BrokenPipeError before any gather — make sure the dead
                # pool is gone either way.
                self._teardown()
                metrics = get_metrics()
                if attempt == 1 and self.backend == "fork":
                    if metrics.enabled:
                        metrics.counter(names.PARALLEL_RESPAWNS).inc()
                    continue
                if self.backend != "inline":
                    self.backend = "inline"
                    if metrics.enabled:
                        metrics.counter(names.PARALLEL_INLINE_FALLBACKS).inc()
                    continue
                raise

    # -- round two: parallel policy re-check --------------------------------------

    def run_analyses(
        self,
        round_one: RoundOne,
        abort_check: Optional[Callable[[], None]] = None,
    ) -> Dict[EcId, EcAnalysis]:
        metrics = get_metrics()
        shards = assign_shards(
            round_one.affected_ecs, self.workers, seed=self.shard_seed
        )
        with span(
            names.SPAN_PARALLEL_SHARD,
            phase="policy",
            workers=self.workers,
            ecs=len(round_one.affected_ecs),
        ) as sp:
            trace = tracing_enabled()
            for idx in range(self.workers):
                self._pool.send(
                    idx,
                    (
                        MSG_ANALYZE,
                        self._epoch,
                        round_one.moves,
                        shards[idx],
                        obs_envelope(idx, trace),
                    ),
                )
            replies = self._gather(abort_check)
            self._absorb_replies(sp, replies)
        analyses: Dict[EcId, EcAnalysis] = {}
        for reply in replies:
            analyses.update(reply["analyses"])
        if metrics.enabled:
            metrics.counter(names.PARALLEL_REMOTE_ANALYSES).inc(len(analyses))
        return analyses

    # -- commit: deferred main-process mutation ------------------------------------

    def commit_batch(
        self,
        updates: Sequence[RuleUpdate],
        order: str,
        round_one: RoundOne,
    ) -> BatchResult:
        """First mutation of the main model: replay phase A (the EC events
        propagate to the checker's listener exactly as in serial
        application), cross-check the partition against the pool, and
        install the merged net moves."""
        started = time.perf_counter()
        with span(
            names.SPAN_PARALLEL_MERGE,
            moves=len(round_one.moves),
            workers=self.workers,
        ):
            plan = stage_batch(self.model, updates, order)
            if plan.checksum != round_one.checksum:
                # Nondeterminism between replica and main replay: neither
                # side can be trusted now.  The transaction wrapper
                # rebuilds the verifier; the pool reseeds from it.
                self._teardown()
                raise PoolDriftError(
                    "main-process replay diverged from the worker pool "
                    f"({plan.checksum} != {round_one.checksum})"
                )
            self.model.apply_moves(round_one.moves)
        return BatchResult(
            order=order,
            num_inserts=plan.num_inserts,
            num_deletes=plan.num_deletes,
            moves=list(round_one.moves),
            filter_changes=plan.filter_changes,
            elapsed_seconds=round_one.elapsed_seconds
            + (time.perf_counter() - started),
            ec_splits=plan.ec_splits,
            ec_merges=plan.ec_merges,
        )
