"""Two-phase ("net effect") staged application of a rule-update batch.

Serial batch application interleaves EC bookkeeping with per-update port
reclassification: every update registers/unregisters its match box and
then recomputes the port of each EC the box touches, so an EC crossed by
n updates is reclassified n times (Table 3's transient moves).  The
parallel execution layer splits that into two phases:

- **Phase A** (:func:`stage_batch`) replays the batch's *exact* serial
  EC-manager operation sequence — register/unregister plus FIB/ACL table
  edits — while skipping reclassification entirely, and records which
  ECs were affected on which device (propagated through splits: a child
  born of an affected parent is affected too, and merge losers drop out).
- **Phase B** (:meth:`NetworkModel.reclassify_net`) computes each
  affected (device, EC)'s final effective port once, against the final
  tables.

Why the result is bit-identical to serial application:

- The EC manager's state depends only on the register/unregister
  sequence — reclassification never touches it — so phase A yields the
  same partition, the same EC ids, and the same split/merge counters as
  the serial batch.
- An EC's effective port on a device is a pure function of the device's
  final FIB and the EC's final containment set; any rule change that can
  alter an EC's longest-prefix match registers (or already contains) a
  box containing that EC, so the recorded affected set covers every EC
  whose port can differ.  Phase B therefore lands every affected EC on
  exactly the port serial application leaves it on, and unaffected ECs
  were never moved by either strategy.

Filter (ACL) updates are order-sensitive in their *reported* before/after
decisions, so phase A applies them with full serial semantics (the
decision diff is computed per update, mid-sequence, exactly as
:class:`~repro.dataplane.batch.BatchUpdater` does).

Device independence makes phase B shardable: reclassifying device d reads
d's tables, the containment index, and d's port map only — so disjoint
device shards commute, which is what the worker pool exploits.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.dataplane.batch import ORDERS, OrderError, order_updates
from repro.dataplane.ec import EcId, EcMerge, EcSplit
from repro.dataplane.model import FilterChange, NetworkModel
from repro.dataplane.rule import FilterRule, ForwardingRule, RuleUpdate


@dataclass
class BatchPlan:
    """What phase A of one staged batch did to a model."""

    order: str
    num_inserts: int = 0
    num_deletes: int = 0
    #: device -> ECs whose port may have changed there (split-propagated,
    #: merge losers removed; may still contain dead ids — phase B filters).
    affected: Dict[str, Set[EcId]] = field(default_factory=dict)
    filter_changes: List[FilterChange] = field(default_factory=list)
    ec_splits: int = 0
    ec_merges: int = 0
    #: Partition checksum after replay — compared across replicas and the
    #: main process to detect drift before any result is trusted.
    checksum: int = 0

    def alive_filter_ecs(self, model: NetworkModel) -> List[EcId]:
        """Filter-change ECs that survived the whole batch (the policy
        stage re-checks these alongside the moved ECs)."""
        return sorted(
            {c.ec for c in self.filter_changes if model.ecs.exists(c.ec)}
        )


def forwarding_devices(updates: Sequence[RuleUpdate]) -> List[str]:
    """Devices whose forwarding tables a batch edits — the only devices
    phase B must visit, known *before* any replay (splits only copy
    ports on other devices; they never change them)."""
    return sorted(
        {u.rule.node for u in updates if isinstance(u.rule, ForwardingRule)}
    )


def partition_checksum(model: NetworkModel) -> int:
    """Cheap fingerprint of the EC partition's identity: the live EC ids
    plus the cumulative split/merge counters.  Identical op sequences give
    identical checksums; it is intentionally insensitive to port state
    (ports are synchronized separately, by construction)."""
    ids = tuple(model.ecs.ec_ids())
    return zlib.crc32(
        repr((ids, model.ecs.splits, model.ecs.merges)).encode("ascii")
    )


def stage_batch(
    model: NetworkModel, updates: Sequence[RuleUpdate], order: str
) -> BatchPlan:
    """Phase A: replay ``updates`` in the given order against ``model``
    without reclassifying ports.  Used identically by every pool worker
    (on its replica) and by the main process at commit time."""
    if order not in ORDERS:
        raise OrderError(f"unknown update order {order!r}")
    plan = BatchPlan(order=order)
    splits_before = model.ecs.splits
    merges_before = model.ecs.merges

    def propagate(event) -> None:
        # Affectedness follows the partition: a child EC inherits its
        # parent's pending reclassifications (serial application would
        # have moved the parent *before* the split, and the child would
        # have inherited the already-updated port); merge losers no
        # longer exist to reclassify.
        if isinstance(event, EcSplit):
            for bucket in plan.affected.values():
                if event.parent in bucket:
                    bucket.add(event.child)
        elif isinstance(event, EcMerge):
            for bucket in plan.affected.values():
                bucket.discard(event.loser)

    model.ecs.add_listener(propagate)
    try:
        if order == "grouped":
            _stage_grouped(model, list(updates), plan)
        else:
            for update in order_updates(list(updates), order):
                _stage_one(model, update, plan)
    finally:
        model.ecs.remove_listener(propagate)
    plan.ec_splits = model.ecs.splits - splits_before
    plan.ec_merges = model.ecs.merges - merges_before
    plan.checksum = partition_checksum(model)
    return plan


def _stage_one(model: NetworkModel, update: RuleUpdate, plan: BatchPlan) -> None:
    rule = update.rule
    if isinstance(rule, ForwardingRule):
        bucket = plan.affected.setdefault(rule.node, set())
        if update.is_insert():
            plan.num_inserts += 1
            bucket.update(model.stage_insert_forwarding(rule))
        else:
            plan.num_deletes += 1
            box, affected = model.stage_delete_forwarding(rule)
            bucket.update(affected)
            model.ecs.unregister(box)  # may trigger merges
        return
    assert isinstance(rule, FilterRule)
    # Filter decisions are diffed mid-sequence (serial semantics): the
    # before/after comparison needs the boxes registered *at this point*
    # of the replay, not the final partition.
    if update.is_insert():
        plan.num_inserts += 1
        _, changes = model.insert_filter(rule)
    else:
        plan.num_deletes += 1
        _, changes = model.delete_filter(rule)
    plan.filter_changes.extend(changes)


def _stage_grouped(
    model: NetworkModel, updates: List[RuleUpdate], plan: BatchPlan
) -> None:
    groups: Dict[Tuple, Tuple[List[str], List[str]]] = {}
    filters: List[RuleUpdate] = []
    for update in updates:
        if isinstance(update.rule, ForwardingRule):
            key = (update.rule.node, update.rule.prefix)
            groups.setdefault(key, ([], []))
            if update.is_insert():
                groups[key][0].append(update.rule.out_interface)
                plan.num_inserts += 1
            else:
                groups[key][1].append(update.rule.out_interface)
                plan.num_deletes += 1
        else:
            filters.append(update)
    for (node, prefix) in sorted(groups, key=lambda k: (k[0], k[1])):
        inserts, deletes = groups[(node, prefix)]
        box, affected, pending = model.stage_modify_forwarding(
            node, prefix, inserts, deletes
        )
        plan.affected.setdefault(node, set()).update(affected)
        for _ in range(pending):
            model.ecs.unregister(box)
    for update in order_updates(filters, "grouped"):
        _stage_one(model, update, plan)
