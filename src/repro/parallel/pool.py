"""Worker pools: forked processes or an in-process inline stand-in.

:class:`ForkPool` spawns K daemon processes over per-worker queue pairs.
Per-worker inboxes (instead of one shared task queue) are load-bearing:
every replica must see *every* epoch to stay in lockstep, so rounds are
broadcast — a shared queue would let one worker consume another's replay.
Gathers poll with a short timeout so the caller's ``abort_check`` (the
serve daemon's deadline) fires between ticks, and a dead worker process
is detected instead of hanging forever.

:class:`InlinePool` implements the identical protocol synchronously with
in-process :class:`~repro.parallel.worker.Replica` instances — no fork,
no pickling.  It is the backend for platforms without ``fork`` and for
the Hypothesis equivalence property (hundreds of examples, where process
spawn would dominate), and exercises the same replay/shard/merge logic.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.parallel.worker import (
    MSG_STOP,
    REPLY_OK,
    Replica,
    worker_main,
)

#: Default time budget for one gather (one round across all workers).
GATHER_TIMEOUT_SECONDS = 120.0
#: Poll interval between abort checks while waiting on a worker.
POLL_SECONDS = 0.05


class PoolError(RuntimeError):
    """Raised when the pool itself fails (dead worker, timeout, stale
    reply) — as opposed to a worker *forwarding* a model/verification
    error, which is re-raised as its original type."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ForkPool:
    """K forked worker processes over per-worker queue pairs."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._ctx = multiprocessing.get_context(
            "fork" if fork_available() else "spawn"
        )
        self._procs: List[Any] = []
        self._inboxes: List[Any] = []
        self._outboxes: List[Any] = []

    @property
    def started(self) -> bool:
        return bool(self._procs)

    @property
    def alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def start(self) -> None:
        if self._procs:
            raise PoolError("pool already started")
        for _ in range(self.size):
            inbox = self._ctx.Queue()
            outbox = self._ctx.Queue()
            proc = self._ctx.Process(
                target=worker_main, args=(inbox, outbox), daemon=True
            )
            proc.start()
            self._procs.append(proc)
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)

    def send(self, idx: int, message: Tuple) -> None:
        self._inboxes[idx].put(message)

    def broadcast(self, message: Tuple) -> None:
        for inbox in self._inboxes:
            inbox.put(message)

    def gather(
        self,
        epoch: int,
        abort_check: Optional[Callable[[], None]] = None,
        timeout: float = GATHER_TIMEOUT_SECONDS,
    ) -> List[Dict[str, Any]]:
        """Collect one reply per worker, in worker order.  Worker errors
        re-raise as their original exception type; protocol trouble (death,
        timeout, stale epoch) raises :class:`PoolError`.  ``abort_check``
        runs every poll tick and may raise to cancel the round."""
        replies: List[Dict[str, Any]] = []
        deadline = time.monotonic() + timeout
        for idx in range(self.size):
            while True:
                if abort_check is not None:
                    abort_check()
                try:
                    reply = self._outboxes[idx].get(timeout=POLL_SECONDS)
                    break
                except queue_module.Empty:
                    if not self._procs[idx].is_alive():
                        raise PoolError(f"pool worker {idx} died") from None
                    if time.monotonic() > deadline:
                        raise PoolError(
                            f"pool worker {idx} timed out after {timeout:.0f}s"
                        ) from None
            tag, reply_epoch, payload = reply[0], reply[1], reply[2]
            if reply_epoch != epoch:
                raise PoolError(
                    f"pool worker {idx} answered epoch {reply_epoch}, "
                    f"expected {epoch}"
                )
            if tag != REPLY_OK:
                error: BaseException = payload
                setattr(error, "worker_traceback", reply[3])
                raise error
            replies.append(payload)
        return replies

    def stop(self) -> None:
        """Graceful shutdown; falls back to terminate for stragglers."""
        for inbox in self._inboxes:
            try:
                inbox.put((MSG_STOP,))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
        self.terminate()

    def terminate(self) -> None:
        """Kill every worker (tears down in-flight shard computation)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._inboxes + self._outboxes:
            # Cancel feeder threads so interpreter shutdown never blocks
            # on a queue whose reader is gone.
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        self._procs = []
        self._inboxes = []
        self._outboxes = []


class InlinePool:
    """The pool protocol executed synchronously in-process."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._replicas: List[Replica] = []
        self._pending: List[Optional[Tuple]] = []

    @property
    def started(self) -> bool:
        return bool(self._replicas)

    @property
    def alive(self) -> bool:
        return bool(self._replicas)

    def start(self) -> None:
        self._replicas = [Replica() for _ in range(self.size)]
        self._pending = [None] * self.size

    def send(self, idx: int, message: Tuple) -> None:
        self._pending[idx] = message

    def broadcast(self, message: Tuple) -> None:
        for idx in range(self.size):
            self._pending[idx] = message

    def gather(
        self,
        epoch: int,
        abort_check: Optional[Callable[[], None]] = None,
        timeout: float = GATHER_TIMEOUT_SECONDS,
    ) -> List[Dict[str, Any]]:
        replies: List[Dict[str, Any]] = []
        for idx in range(self.size):
            if abort_check is not None:
                abort_check()
            message = self._pending[idx]
            self._pending[idx] = None
            if message is None:
                raise PoolError(f"inline worker {idx} has no pending message")
            replies.append(self._replicas[idx].handle(message))
        return replies

    def stop(self) -> None:
        self._replicas = []
        self._pending = []

    terminate = stop
