"""Deterministic shard assignment.

Work units (device names in round one, EC ids in round two) are sorted
and dealt round-robin across the pool.  The partition a worker receives
therefore depends only on the unit set and the pool size — never on dict
iteration order or scheduling — and the merged result is provably
independent of the assignment itself (the Hypothesis property drives
``seed`` to permute assignments and asserts the output is unchanged).
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def assign_shards(items: Sequence[T], k: int, seed: int = 0) -> List[List[T]]:
    """Partition ``items`` into ``k`` shards.  ``seed=0`` (production)
    deals the sorted items round-robin; a non-zero seed deterministically
    permutes them first — same shards sizes, different assignment — which
    the equivalence tests use to prove assignment-order invariance."""
    if k < 1:
        raise ValueError("shard count must be >= 1")
    ordered = sorted(items)
    if seed:
        random.Random(seed).shuffle(ordered)
    shards: List[List[T]] = [[] for _ in range(k)]
    for index, item in enumerate(ordered):
        shards[index % k].append(item)
    return shards
