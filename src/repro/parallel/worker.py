"""The worker side of the pool protocol.

Every worker holds a :class:`Replica` — a full :class:`NetworkModel` copy
seeded from the main process and kept in lockstep by replaying *every*
epoch's staged batch (phase A is cheap; it is the per-update
reclassification that dominates serial batches).  Messages are
epoch-stamped tuples; a replica that observes a gap refuses to answer
(:class:`StaleReplicaError`) rather than return results computed against
drifted state, and the executor responds by reseeding.

The same :class:`Replica` class backs both the forked worker processes
(:func:`worker_main`) and the in-process inline backend, so property
tests exercise the identical replay/shard/merge code paths without
process overhead.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.dataplane.model import EcMove, NetworkModel
from repro.parallel.plan import partition_checksum, stage_batch
from repro.policy.paths import analyze_ec

# Message kinds (main -> worker).  Every message after the kind starts
# with the epoch it belongs to.
MSG_SEED = "seed"
MSG_PLAN = "plan"
MSG_ANALYZE = "analyze"
MSG_STOP = "stop"

# Reply kinds (worker -> main).
REPLY_OK = "ok"
REPLY_ERROR = "error"


class StaleReplicaError(RuntimeError):
    """The replica's epoch does not line up with the message's — its state
    can no longer be trusted and the pool must reseed."""


class Replica:
    """Worker-side model replica plus the message handlers."""

    def __init__(self) -> None:
        self.model: Optional[NetworkModel] = None
        self.epoch = -1

    def handle(self, message: Tuple) -> Dict[str, Any]:
        kind = message[0]
        if kind == MSG_SEED:
            return self._handle_seed(message)
        if kind == MSG_PLAN:
            return self._handle_plan(message)
        if kind == MSG_ANALYZE:
            return self._handle_analyze(message)
        raise ValueError(f"unknown pool message kind {kind!r}")

    def _handle_seed(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, payload = message
        model = NetworkModel(
            payload["topology"],
            merge_on_unregister=payload["merge_ecs"],
            mode=payload["mode"],
        )
        model.restore_state(payload["state"])
        self.model = model
        self.epoch = epoch
        return {"checksum": partition_checksum(model)}

    def _handle_plan(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, updates, order, devices, want_extras = message
        if self.model is None:
            raise StaleReplicaError("replica was never seeded")
        if epoch != self.epoch + 1:
            raise StaleReplicaError(
                f"replica at epoch {self.epoch} received plan for {epoch}"
            )
        self.epoch = epoch
        plan = stage_batch(self.model, updates, order)
        moves: List[EcMove] = []
        for node in devices:
            moves.extend(
                self.model.reclassify_net(node, plan.affected.get(node, ()))
            )
        reply: Dict[str, Any] = {"moves": moves, "checksum": plan.checksum}
        if want_extras:
            reply["extras"] = {
                "num_inserts": plan.num_inserts,
                "num_deletes": plan.num_deletes,
                "filter_changes": plan.filter_changes,
                "ec_splits": plan.ec_splits,
                "ec_merges": plan.ec_merges,
                "alive_filter_ecs": plan.alive_filter_ecs(self.model),
            }
        return reply

    def _handle_analyze(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, moves, ecs = message
        if self.model is None:
            raise StaleReplicaError("replica was never seeded")
        if epoch != self.epoch:
            raise StaleReplicaError(
                f"replica at epoch {self.epoch} received analyze for {epoch}"
            )
        # Sync the other shards' net moves first (idempotent for our own),
        # so every replica's port maps equal the post-commit main model.
        self.model.apply_moves(moves)
        analyses = {
            ec: analyze_ec(self.model, ec)
            for ec in ecs
            if self.model.ecs.exists(ec)
        }
        return {"analyses": analyses}


def _picklable(exc: BaseException) -> BaseException:
    """Exceptions cross the result queue by pickle; anything that does not
    survive the round trip is downgraded to a RuntimeError carrying its
    repr (the traceback string travels alongside either way)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def worker_main(inbox, outbox) -> None:
    """Entry point of one pool process: serve messages until MSG_STOP."""
    replica = Replica()
    while True:
        message = inbox.get()
        if message[0] == MSG_STOP:
            break
        epoch = message[1]
        try:
            payload = replica.handle(message)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the main process
            outbox.put(
                (REPLY_ERROR, epoch, _picklable(exc), traceback.format_exc())
            )
        else:
            outbox.put((REPLY_OK, epoch, payload))
