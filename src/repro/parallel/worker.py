"""The worker side of the pool protocol.

Every worker holds a :class:`Replica` — a full :class:`NetworkModel` copy
seeded from the main process and kept in lockstep by replaying *every*
epoch's staged batch (phase A is cheap; it is the per-update
reclassification that dominates serial batches).  Messages are
epoch-stamped tuples; a replica that observes a gap refuses to answer
(:class:`StaleReplicaError`) rather than return results computed against
drifted state, and the executor responds by reseeding.

Every message ends with an **obs envelope** (or ``None``): a plain dict
``{"worker": idx, "sent_at": monotonic, "trace": bool}``.  From it the
replica computes queue-wait (dispatch-to-dequeue latency on the shared
monotonic clock) and compute time, returned in ``reply["timings"]``; and
when ``trace`` is set the replica records its work on a private local
:class:`~repro.telemetry.tracer.Tracer` — a ``parallel.worker`` root span
with replay/reclassify/sync/analyze children — and ships the serialized
tree back in ``reply["spans"]`` for the executor to graft under the
dispatching span.  This is what makes one trace show the whole
cross-process round.

The same :class:`Replica` class backs both the forked worker processes
(:func:`worker_main`) and the in-process inline backend, so property
tests exercise the identical replay/shard/merge code paths without
process overhead.
"""

from __future__ import annotations

import pickle
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.dataplane.model import EcMove, NetworkModel
from repro.parallel.plan import partition_checksum, stage_batch
from repro.policy.paths import analyze_ec
from repro.telemetry import (
    NullTracer,
    Tracer,
    export_spans,
    names,
    set_tracer,
    span,
)

# Message kinds (main -> worker).  Every message after the kind starts
# with the epoch it belongs to and ends with the obs envelope (or None).
MSG_SEED = "seed"
MSG_PLAN = "plan"
MSG_ANALYZE = "analyze"
MSG_STOP = "stop"

# Reply kinds (worker -> main).
REPLY_OK = "ok"
REPLY_ERROR = "error"

#: message kind -> the phase attribute of the worker root span.
_PHASES = {MSG_SEED: "seed", MSG_PLAN: "model", MSG_ANALYZE: "policy"}


def obs_envelope(worker: int, trace: bool) -> Dict[str, Any]:
    """The per-message observability envelope the executor attaches."""
    return {"worker": worker, "sent_at": time.monotonic(), "trace": trace}


class StaleReplicaError(RuntimeError):
    """The replica's epoch does not line up with the message's — its state
    can no longer be trusted and the pool must reseed."""


class Replica:
    """Worker-side model replica plus the message handlers."""

    def __init__(self) -> None:
        self.model: Optional[NetworkModel] = None
        self.epoch = -1

    def handle(self, message: Tuple) -> Dict[str, Any]:
        received = time.monotonic()
        kind = message[0]
        handlers = {
            MSG_SEED: self._handle_seed,
            MSG_PLAN: self._handle_plan,
            MSG_ANALYZE: self._handle_analyze,
        }
        handler = handlers.get(kind)
        if handler is None:
            raise ValueError(f"unknown pool message kind {kind!r}")
        obs = message[-1]
        if not isinstance(obs, dict):
            obs = None
        if obs is None or not obs.get("trace"):
            reply = handler(message)
            if obs is not None:
                reply["timings"] = self._timings(obs, received)
            return reply
        # Traced round: record on a private tracer (never the inherited
        # global — a forked worker shares the parent's pre-fork tracer
        # object, whose spans would otherwise be lost or double-counted).
        queue_wait = max(0.0, received - obs.get("sent_at", received))
        local = Tracer()
        previous = set_tracer(local)
        try:
            with span(
                names.SPAN_WORKER,
                worker=obs.get("worker"),
                epoch=message[1],
                phase=_PHASES[kind],
                queue_wait_seconds=queue_wait,
            ):
                reply = handler(message)
        finally:
            set_tracer(previous)
        reply["spans"] = export_spans(local)
        reply["timings"] = self._timings(obs, received)
        return reply

    @staticmethod
    def _timings(obs: Dict[str, Any], received: float) -> Dict[str, float]:
        now = time.monotonic()
        return {
            "queue_wait_seconds": max(
                0.0, received - obs.get("sent_at", received)
            ),
            "compute_seconds": now - received,
        }

    def _handle_seed(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, payload = message[0], message[1], message[2]
        with span(names.SPAN_WORKER_SEED):
            model = NetworkModel(
                payload["topology"],
                merge_on_unregister=payload["merge_ecs"],
                mode=payload["mode"],
            )
            model.restore_state(payload["state"])
        self.model = model
        self.epoch = epoch
        return {"checksum": partition_checksum(model)}

    def _handle_plan(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, updates, order, devices, want_extras = message[:6]
        if self.model is None:
            raise StaleReplicaError("replica was never seeded")
        if epoch != self.epoch + 1:
            raise StaleReplicaError(
                f"replica at epoch {self.epoch} received plan for {epoch}"
            )
        self.epoch = epoch
        with span(names.SPAN_WORKER_REPLAY, updates=len(updates)):
            plan = stage_batch(self.model, updates, order)
        moves: List[EcMove] = []
        with span(names.SPAN_WORKER_RECLASSIFY, devices=len(devices)) as sp:
            for node in devices:
                moves.extend(
                    self.model.reclassify_net(
                        node, plan.affected.get(node, ())
                    )
                )
            sp.set("moves", len(moves))
        reply: Dict[str, Any] = {"moves": moves, "checksum": plan.checksum}
        if want_extras:
            reply["extras"] = {
                "num_inserts": plan.num_inserts,
                "num_deletes": plan.num_deletes,
                "filter_changes": plan.filter_changes,
                "ec_splits": plan.ec_splits,
                "ec_merges": plan.ec_merges,
                "alive_filter_ecs": plan.alive_filter_ecs(self.model),
            }
        return reply

    def _handle_analyze(self, message: Tuple) -> Dict[str, Any]:
        _, epoch, moves, ecs = message[:4]
        if self.model is None:
            raise StaleReplicaError("replica was never seeded")
        if epoch != self.epoch:
            raise StaleReplicaError(
                f"replica at epoch {self.epoch} received analyze for {epoch}"
            )
        # Sync the other shards' net moves first (idempotent for our own),
        # so every replica's port maps equal the post-commit main model.
        with span(names.SPAN_WORKER_SYNC, moves=len(moves)):
            self.model.apply_moves(moves)
        with span(names.SPAN_WORKER_ANALYZE, ecs=len(ecs)):
            analyses = {
                ec: analyze_ec(self.model, ec)
                for ec in ecs
                if self.model.ecs.exists(ec)
            }
        return {"analyses": analyses}


def _picklable(exc: BaseException) -> BaseException:
    """Exceptions cross the result queue by pickle; anything that does not
    survive the round trip is downgraded to a RuntimeError carrying its
    repr (the traceback string travels alongside either way)."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def worker_main(inbox, outbox) -> None:
    """Entry point of one pool process: serve messages until MSG_STOP."""
    # A forked worker inherits the parent's (possibly enabled) global
    # tracer; spans recorded there would never be exported.  Worker spans
    # travel only via the obs envelope's traced path.
    set_tracer(NullTracer())
    replica = Replica()
    while True:
        message = inbox.get()
        if message[0] == MSG_STOP:
            break
        epoch = message[1]
        try:
            payload = replica.handle(message)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the main process
            outbox.put(
                (REPLY_ERROR, epoch, _picklable(exc), traceback.format_exc())
            )
        else:
            outbox.put((REPLY_OK, epoch, payload))
