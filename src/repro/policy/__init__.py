"""Incremental network policy checking."""

from repro.policy.spec import (
    BlackholeFree,
    LoopFree,
    Multipath,
    Policy,
    PolicyStatus,
    Reachability,
    Waypoint,
    isolation,
)
from repro.policy.paths import EcAnalysis, analyze_ec
from repro.policy.checker import CheckReport, IncrementalChecker, PolicyError
from repro.policy.mining import MinedSpec, SpecificationMiner, single_link_failures
from repro.policy.trace import (
    DELIVERED,
    DROPPED,
    Hop,
    Trace,
    format_traces,
    trace_packet,
)

__all__ = [
    "MinedSpec",
    "SpecificationMiner",
    "single_link_failures",
    "DELIVERED",
    "DROPPED",
    "Hop",
    "Trace",
    "format_traces",
    "trace_packet",
    "BlackholeFree",
    "LoopFree",
    "Multipath",
    "Policy",
    "PolicyStatus",
    "Reachability",
    "Waypoint",
    "isolation",
    "EcAnalysis",
    "analyze_ec",
    "CheckReport",
    "IncrementalChecker",
    "PolicyError",
]
