"""The incremental network policy checker.

Mirrors the paper's design (§4.2): the checker tracks the relationship
between ECs, node pairs, and forwarding behaviour with two maps —

1. each EC's analysis (its forwarding graph, deliveries, loops,
   blackholes); the paper's "map from each EC to the set of paths the EC
   traverses";
2. ``pair_to_ecs``: a map from each endpoint pair (s, d) to the ECs
   deliverable from s to d.

After the model updater reports the affected ECs, only those ECs are
re-analyzed; the pairs whose EC sets changed are identified from the
analysis diff, and only the policies registered on affected ECs/pairs are
re-evaluated.  The report lists policies that *became* violated and
policies that *became* satisfied — the latter "helps operators test whether
a repair plan works".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dataplane.batch import BatchResult
from repro.dataplane.ec import EcId, EcMerge, EcSplit
from repro.dataplane.model import NetworkModel
from repro.policy.paths import EcAnalysis, analyze_ec, _deliveries
from repro.policy.spec import (
    BlackholeFree,
    LoopFree,
    Multipath,
    Policy,
    PolicyStatus,
    Reachability,
    Waypoint,
)
from repro.telemetry import get_metrics, names, span

Pair = Tuple[str, str]


class PolicyError(ValueError):
    """Raised for invalid checker operations."""


def _node_disjoint_paths(
    edges: Dict[str, Tuple[str, ...]], src: str, dst: str
) -> int:
    """Number of internally node-disjoint ``src -> dst`` paths in an EC's
    forwarding graph (max flow with unit node capacities via node
    splitting)."""
    import networkx as nx

    # Split every node v into v#in -> v#out (capacity 1, except the
    # endpoints, which may carry several paths); forwarding edges go
    # v#out -> w#in with capacity 1 (a physical hop carries one path).
    graph = nx.DiGraph()
    nodes = set(edges)
    for nexts in edges.values():
        nodes.update(nexts)
    for node in nodes:
        capacity = 10**9 if node in (src, dst) else 1
        graph.add_edge(f"{node}#in", f"{node}#out", capacity=capacity)
    for node, nexts in edges.items():
        for succ in nexts:
            graph.add_edge(f"{node}#out", f"{succ}#in", capacity=1)
    if f"{src}#out" not in graph or f"{dst}#in" not in graph:
        return 0
    value, _ = nx.maximum_flow(graph, f"{src}#out", f"{dst}#in")
    return int(value)


@dataclass
class CheckReport:
    """Outcome of one (incremental) check."""

    affected_ecs: List[EcId] = field(default_factory=list)
    affected_pairs: List[Pair] = field(default_factory=list)
    total_pairs: int = 0
    newly_violated: List[PolicyStatus] = field(default_factory=list)
    newly_satisfied: List[PolicyStatus] = field(default_factory=list)
    analysis_seconds: float = 0.0
    policy_seconds: float = 0.0
    #: How many registered policies were re-evaluated by this check — the
    #: incremental-work counter the profile report divides by the number of
    #: registered policies.
    policies_rechecked: int = 0

    @property
    def elapsed_seconds(self) -> float:
        return self.analysis_seconds + self.policy_seconds

    def summary(self) -> str:
        return (
            f"{len(self.affected_ecs)} ECs, "
            f"{len(self.affected_pairs)}/{self.total_pairs} pairs affected; "
            f"{len(self.newly_violated)} newly violated, "
            f"{len(self.newly_satisfied)} newly satisfied "
            f"({self.elapsed_seconds * 1000:.1f} ms)"
        )


class IncrementalChecker:
    """Maintains per-EC analyses, the pair->EC map, and policy statuses."""

    def __init__(
        self,
        model: NetworkModel,
        endpoints: Iterable[str],
        policies: Iterable[Policy] = (),
    ) -> None:
        self.model = model
        self.endpoints = sorted(set(endpoints))
        self._endpoint_set = set(self.endpoints)
        self._analyses: Dict[EcId, EcAnalysis] = {}
        self._pair_to_ecs: Dict[Pair, Set[EcId]] = {}
        self._policies: Dict[str, Policy] = {}
        self._statuses: Dict[str, bool] = {}
        #: pair -> policy names registered on it
        self._by_pair: Dict[Pair, Set[str]] = {}
        self._invariants: Set[str] = set()
        model.ecs.add_listener(self._on_ec_event)
        # Analyze the current data plane first, so policies added below are
        # evaluated against real state.
        self.initial_report = self.full_check()
        for policy in policies:
            self.add_policy(policy)

    # -- state capture / restore --------------------------------------------------

    def capture_state(self) -> Dict:
        """Picklable snapshot of the checker.  ``EcAnalysis`` values are
        replaced wholesale on re-analysis (never mutated), so referencing
        them is safe; the pair/name index sets are copied."""
        return {
            "endpoints": list(self.endpoints),
            "analyses": dict(self._analyses),
            "pair_to_ecs": {
                pair: set(ecs) for pair, ecs in self._pair_to_ecs.items()
            },
            "policies": dict(self._policies),
            "statuses": dict(self._statuses),
            "by_pair": {
                pair: set(names) for pair, names in self._by_pair.items()
            },
            "invariants": set(self._invariants),
            "initial_report": self.initial_report,
        }

    def restore_state(self, state: Dict) -> None:
        self.endpoints = list(state["endpoints"])
        self._endpoint_set = set(self.endpoints)
        self._analyses = dict(state["analyses"])
        self._pair_to_ecs = {
            pair: set(ecs) for pair, ecs in state["pair_to_ecs"].items()
        }
        self._policies = dict(state["policies"])
        self._statuses = dict(state["statuses"])
        self._by_pair = {
            pair: set(names) for pair, names in state["by_pair"].items()
        }
        self._invariants = set(state["invariants"])
        self.initial_report = state["initial_report"]

    @classmethod
    def from_state(
        cls, model: NetworkModel, state: Dict
    ) -> "IncrementalChecker":
        """Rebuild a checker onto ``model`` from a captured state without
        running ``full_check`` or re-registering policies — both the EC
        partition (with policy match boxes refcounted) and the analyses
        come from the state, as on checkpoint restore."""
        checker = object.__new__(cls)
        checker.model = model
        checker.restore_state(state)
        model.ecs.add_listener(checker._on_ec_event)
        return checker

    # -- policy registration ----------------------------------------------------

    def add_policy(self, policy: Policy) -> PolicyStatus:
        if policy.name in self._policies:
            raise PolicyError(f"duplicate policy name {policy.name!r}")
        box = policy.match_box()
        if box is not None:
            # Policies register on packet sets: make ECs atoms of the match.
            self.model.ecs.register(box)
        self._policies[policy.name] = policy
        pair = policy.pair()
        if pair is not None:
            self._by_pair.setdefault(pair, set()).add(policy.name)
        else:
            self._invariants.add(policy.name)
        status = self._evaluate(policy)
        self._statuses[policy.name] = status.holds
        return status

    def remove_policy(self, name: str) -> None:
        policy = self._policies.pop(name, None)
        if policy is None:
            raise PolicyError(f"no policy named {name!r}")
        self._statuses.pop(name, None)
        pair = policy.pair()
        if pair is not None:
            bucket = self._by_pair.get(pair)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._by_pair[pair]
        self._invariants.discard(name)
        box = policy.match_box()
        if box is not None:
            self.model.ecs.unregister(box)

    def policies(self) -> List[Policy]:
        return [self._policies[name] for name in sorted(self._policies)]

    def status(self, name: str) -> PolicyStatus:
        policy = self._policies.get(name)
        if policy is None:
            raise PolicyError(f"no policy named {name!r}")
        return self._evaluate(policy)

    def statuses(self) -> List[PolicyStatus]:
        return [self._evaluate(p) for p in self.policies()]

    # -- EC lifecycle ---------------------------------------------------------------

    def _on_ec_event(self, event) -> None:
        if isinstance(event, EcSplit):
            parent = self._analyses.get(event.parent)
            if parent is not None:
                # At split time the child behaves exactly like the parent.
                child = EcAnalysis(
                    ec=event.child,
                    edges=dict(parent.edges),
                    accepts=parent.accepts,
                    delivered=dict(parent.delivered),
                    loop_nodes=parent.loop_nodes,
                    blackholes=parent.blackholes,
                )
                self._analyses[event.child] = child
                for pair in self._tracked_pairs(parent):
                    self._pair_to_ecs.setdefault(pair, set()).add(event.child)
        elif isinstance(event, EcMerge):
            loser = self._analyses.pop(event.loser, None)
            if loser is not None:
                for pair in self._tracked_pairs(loser):
                    bucket = self._pair_to_ecs.get(pair)
                    if bucket is not None:
                        bucket.discard(event.loser)
                        if not bucket:
                            del self._pair_to_ecs[pair]

    def _tracked_pairs(self, analysis: EcAnalysis) -> Set[Pair]:
        return {
            (src, dst)
            for src, dst in analysis.delivered_pairs()
            if src in self._endpoint_set and dst in self._endpoint_set
        }

    # -- checking --------------------------------------------------------------------

    def total_pairs(self) -> int:
        n = len(self.endpoints)
        return n * (n - 1)

    def full_check(self) -> CheckReport:
        """(Re)analyze every EC; used at startup."""
        return self._check_ecs(self.model.ecs.ec_ids())

    def check_batch(self, batch: BatchResult) -> CheckReport:
        """Re-analyze only the ECs the model updater reported as affected."""
        return self._check_ecs(batch.affected_ec_ids(self.model))

    def check_ecs(self, ecs: Iterable[EcId]) -> CheckReport:
        return self._check_ecs(sorted(set(ecs)))

    def check_ecs_with(
        self,
        ecs: Iterable[EcId],
        analyses: Dict[EcId, EcAnalysis],
    ) -> CheckReport:
        """Like :meth:`check_ecs`, but consume pre-computed per-EC analyses
        (the parallel worker pool's round-two output) instead of analyzing
        locally.  ECs missing from the mapping fall back to a local
        :func:`analyze_ec`, so an over-approximated affected set stays
        correct."""
        return self._check_ecs(sorted(set(ecs)), analyses)

    def _check_ecs(
        self,
        ecs: List[EcId],
        analyses: Optional[Dict[EcId, EcAnalysis]] = None,
    ) -> CheckReport:
        with span(names.SPAN_POLICY_CHECK, ecs=len(ecs)) as sp:
            report = self._check_ecs_inner(ecs, sp, analyses)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(names.POLICY_ECS_ANALYZED).inc(
                len(report.affected_ecs)
            )
            metrics.counter(names.POLICY_PAIRS_AFFECTED).inc(
                len(report.affected_pairs)
            )
            metrics.counter(names.POLICY_RECHECKED).inc(report.policies_rechecked)
            metrics.counter(names.POLICY_FLIPPED).inc(
                len(report.newly_violated) + len(report.newly_satisfied)
            )
            metrics.gauge(names.POLICY_REGISTERED).set(len(self._policies))
        return report

    def _check_ecs_inner(
        self,
        ecs: List[EcId],
        sp,
        analyses: Optional[Dict[EcId, EcAnalysis]] = None,
    ) -> CheckReport:
        report = CheckReport(total_pairs=self.total_pairs())
        started = time.perf_counter()
        affected_pairs: Set[Pair] = set()
        touched_invariants = False
        for ec in ecs:
            if not self.model.ecs.exists(ec):
                continue
            old = self._analyses.get(ec)
            new = analyses.get(ec) if analyses is not None else None
            if new is None:
                new = analyze_ec(self.model, ec)
            self._analyses[ec] = new
            old_pairs = self._tracked_pairs(old) if old is not None else set()
            new_pairs = self._tracked_pairs(new)
            for pair in old_pairs - new_pairs:
                bucket = self._pair_to_ecs.get(pair)
                if bucket is not None:
                    bucket.discard(ec)
                    if not bucket:
                        del self._pair_to_ecs[pair]
            for pair in new_pairs - old_pairs:
                self._pair_to_ecs.setdefault(pair, set()).add(ec)
            # The paper's affected pairs are the endpoints of the affected
            # ECs' (old or new) paths — the pairs whose paths were modified,
            # whether or not delivery flipped.
            if old is not None:
                affected_pairs.update(old_pairs | new_pairs)
            else:
                affected_pairs.update(new_pairs)
            if old is None or old.loop_nodes != new.loop_nodes:
                touched_invariants = True
            if old is None or old.blackholes != new.blackholes:
                touched_invariants = True
            report.affected_ecs.append(ec)
        report.analysis_seconds = time.perf_counter() - started
        report.affected_pairs = sorted(affected_pairs)

        started = time.perf_counter()
        to_recheck: Set[str] = set()
        for pair in affected_pairs:
            to_recheck.update(self._by_pair.get(pair, ()))
        # Pair policies can also flip when an EC inside their match splits
        # or changes without altering set membership of other pairs — an EC
        # in the affected list registered on a policy's match re-checks it.
        for name, policy in self._policies.items():
            box = policy.match_box()
            if box is None:
                continue
            registered = self.model.ecs.ecs_in(box)
            if registered.intersection(report.affected_ecs):
                to_recheck.add(name)
        if touched_invariants:
            to_recheck.update(self._invariants)
        for name in sorted(to_recheck):
            policy = self._policies[name]
            status = self._evaluate(policy)
            previous = self._statuses.get(name)
            self._statuses[name] = status.holds
            if previous is None:
                continue
            if previous and not status.holds:
                report.newly_violated.append(status)
            elif not previous and status.holds:
                report.newly_satisfied.append(status)
        report.policies_rechecked = len(to_recheck)
        report.policy_seconds = time.perf_counter() - started
        sp.set("ecs_analyzed", len(report.affected_ecs))
        sp.set("pairs_affected", len(report.affected_pairs))
        sp.set("policies_rechecked", report.policies_rechecked)
        sp.set("policies_registered", len(self._policies))
        sp.set(
            "flipped",
            len(report.newly_violated) + len(report.newly_satisfied),
        )
        return report

    # -- evaluation --------------------------------------------------------------------

    def delivered_ecs(self, src: str, dst: str) -> Set[EcId]:
        """The paper's pair map: ECs deliverable from ``src`` to ``dst``."""
        return set(self._pair_to_ecs.get((src, dst), set()))

    def delivered_pair_map(self) -> Dict[Pair, FrozenSet[EcId]]:
        return {
            pair: frozenset(ecs) for pair, ecs in self._pair_to_ecs.items()
        }

    def analysis(self, ec: EcId) -> EcAnalysis:
        try:
            return self._analyses[ec]
        except KeyError:
            raise PolicyError(f"EC {ec} has not been analyzed") from None

    def explain(self, name: str) -> List["Trace"]:
        """Concrete evidence for a policy's current status: packet traces
        (paper §4's debugging functionality) for a sample header of each
        EC that decides the verdict.

        - a violated reachability/multipath policy: traces of the
          undelivered (or width-deficient) ECs from the policy's source;
        - a violated isolation policy: traces of the leaking ECs;
        - a violated waypoint policy: traces of the bypassing ECs;
        - loop/blackhole violations: traces of offending ECs from a device
          that feeds the loop or blackhole;
        - a holding policy: traces of its registered ECs (the positive
          evidence).
        """
        from repro.policy.trace import Trace, trace_packet

        policy = self._policies.get(name)
        if policy is None:
            raise PolicyError(f"no policy named {name!r}")
        traces: List[Trace] = []
        box = policy.match_box()
        if box is not None and policy.pair() is not None:
            src = policy.pair()[0]
            for ec in sorted(self.model.ecs.ecs_in(box)):
                predicate = self.model.ecs.predicate(ec)
                sample = predicate.intersect_box(box)
                if sample.is_empty():
                    continue
                traces.extend(
                    trace_packet(self.model, sample.sample(), src)
                )
            return traces
        # Invariants: trace each offending EC from a device feeding it.
        for ec, analysis in sorted(self._analyses.items()):
            if not self.model.ecs.exists(ec):
                continue
            targets = set(analysis.loop_nodes) | set(analysis.blackholes)
            if not targets:
                continue
            feeders = [
                node
                for node, nexts in analysis.edges.items()
                if any(succ in targets for succ in nexts)
            ] or sorted(targets)
            traces.extend(
                trace_packet(
                    self.model,
                    self.model.ecs.predicate(ec).sample(),
                    sorted(feeders)[0],
                )
            )
        return traces

    def _evaluate(self, policy: Policy) -> PolicyStatus:
        if isinstance(policy, Reachability):
            return self._eval_reachability(policy)
        if isinstance(policy, Waypoint):
            return self._eval_waypoint(policy)
        if isinstance(policy, Multipath):
            return self._eval_multipath(policy)
        if isinstance(policy, LoopFree):
            return self._eval_loop_free(policy)
        if isinstance(policy, BlackholeFree):
            return self._eval_blackhole_free(policy)
        raise PolicyError(f"unknown policy type: {type(policy).__name__}")

    def _eval_reachability(self, policy: Reachability) -> PolicyStatus:
        ecs = self.model.ecs.ecs_in(policy.match)
        missing = []
        present = []
        for ec in sorted(ecs):
            analysis = self._analyses.get(ec)
            ok = analysis is not None and analysis.delivers(policy.src, policy.dst)
            (present if ok else missing).append(ec)
        if policy.expect_delivered:
            holds = not missing
            detail = "" if holds else f"ECs not delivered: {missing}"
        else:
            holds = not present
            detail = "" if holds else f"ECs leaking through: {present}"
        return PolicyStatus(policy, holds, detail)

    def _eval_waypoint(self, policy: Waypoint) -> PolicyStatus:
        ecs = self.model.ecs.ecs_in(policy.match)
        offenders = []
        for ec in sorted(ecs):
            analysis = self._analyses.get(ec)
            if analysis is None or not analysis.delivers(policy.src, policy.dst):
                continue
            # Delivered: does some path avoid the waypoint?  Check delivery
            # in the graph with the waypoint removed.
            edges = {
                node: tuple(n for n in nexts if n != policy.waypoint)
                for node, nexts in analysis.edges.items()
                if node != policy.waypoint
            }
            accepts = set(analysis.accepts) - {policy.waypoint}
            if policy.src == policy.waypoint:
                continue
            reach = _deliveries(edges, accepts)
            if policy.dst in reach.get(policy.src, frozenset()):
                offenders.append(ec)
        holds = not offenders
        detail = "" if holds else f"ECs bypassing {policy.waypoint}: {offenders}"
        return PolicyStatus(policy, holds, detail)

    def _eval_multipath(self, policy: Multipath) -> PolicyStatus:
        ecs = self.model.ecs.ecs_in(policy.match)
        weak = {}
        for ec in sorted(ecs):
            analysis = self._analyses.get(ec)
            if analysis is None or not analysis.delivers(policy.src, policy.dst):
                weak[ec] = 0
                continue
            width = _node_disjoint_paths(
                analysis.edges, policy.src, policy.dst
            )
            if width < policy.min_paths:
                weak[ec] = width
        holds = not weak
        detail = (
            ""
            if holds
            else "ECs below the width requirement: "
            + ", ".join(f"EC{ec}={width}" for ec, width in sorted(weak.items()))
        )
        return PolicyStatus(policy, holds, detail)

    def _eval_loop_free(self, policy: LoopFree) -> PolicyStatus:
        loops = {
            ec: sorted(analysis.loop_nodes)
            for ec, analysis in self._analyses.items()
            if analysis.loop_nodes and self.model.ecs.exists(ec)
        }
        holds = not loops
        detail = "" if holds else f"loops: {loops}"
        return PolicyStatus(policy, holds, detail)

    def _eval_blackhole_free(self, policy: BlackholeFree) -> PolicyStatus:
        holes = {
            ec: sorted(analysis.blackholes)
            for ec, analysis in self._analyses.items()
            if analysis.blackholes and self.model.ecs.exists(ec)
        }
        holds = not holes
        detail = "" if holds else f"blackholes: {holes}"
        return PolicyStatus(policy, holds, detail)
