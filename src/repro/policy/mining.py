"""Specification mining (Config2Spec's role, paper §2).

Given a network snapshot and a space of *conditions* (by default: every
single link failure), mine the specification — the set of policies that
hold under **all** conditions.  The expensive part is generating the data
plane per condition; :class:`SpecificationMiner` keeps one warm incremental
verifier and walks condition -> restore, so each condition costs only its
blast radius (the paper measures this as ~20x cheaper than per-condition
from-scratch generation).

Mined policy space (kept deliberately close to Config2Spec's core):

- pairwise reachability between endpoint devices, per originated prefix;
- the surviving *path width* (minimum number of node-disjoint paths across
  all conditions), i.e. how much redundancy the network actually provides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.changes import Change, ShutdownInterface, apply_changes
from repro.config.schema import Snapshot
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.model import NetworkModel
from repro.dataplane.rule import updates_from_fib
from repro.net.topologies import LabeledTopology
from repro.policy.checker import IncrementalChecker, _node_disjoint_paths
from repro.routing.program import ControlPlane

Pair = Tuple[str, str]


@dataclass(frozen=True)
class MinedSpec:
    """The mined specification."""

    #: pairs reachable under every condition
    always_reachable: frozenset
    #: pairs reachable in the base snapshot but lost under some condition
    fragile: frozenset
    #: pair -> minimum node-disjoint path width across all conditions
    min_width: Dict[Pair, int]
    conditions: int = 0
    elapsed_seconds: float = 0.0

    def is_fault_tolerant(self, src: str, dst: str) -> bool:
        return (src, dst) in self.always_reachable

    def summary(self) -> str:
        return (
            f"{len(self.always_reachable)} always-reachable pairs, "
            f"{len(self.fragile)} fragile pairs, over {self.conditions} "
            f"conditions in {self.elapsed_seconds:.2f} s"
        )


def single_link_failures(labeled: LabeledTopology) -> List[Change]:
    """The default condition space: each link failed in turn."""
    return [
        ShutdownInterface(link.a.node, link.a.name)
        for link in sorted(
            labeled.topology.links(), key=lambda l: (str(l.a), str(l.b))
        )
    ]


class SpecificationMiner:
    """Mines the specification with one warm incremental pipeline."""

    def __init__(
        self,
        labeled: LabeledTopology,
        snapshot: Snapshot,
        endpoints: Optional[Iterable[str]] = None,
    ) -> None:
        self.labeled = labeled
        self.snapshot = snapshot
        self.endpoints = sorted(
            endpoints if endpoints is not None else labeled.host_prefixes
        )
        self._control_plane = ControlPlane()
        fib = self._control_plane.update_to(snapshot)
        self._model = NetworkModel(labeled.topology)
        self._updater = BatchUpdater(self._model)
        self._updater.apply(updates_from_fib(fib.inserted, fib.deleted))
        self._checker = IncrementalChecker(self._model, self.endpoints)

    # -- observations ---------------------------------------------------------

    def _reachable_pairs(self) -> frozenset:
        return frozenset(
            pair
            for pair, ecs in self._checker.delivered_pair_map().items()
            if ecs
        )

    def _pair_widths(self, pairs: Iterable[Pair]) -> Dict[Pair, int]:
        widths: Dict[Pair, int] = {}
        for src, dst in pairs:
            best = 0
            for ec in self._checker.delivered_ecs(src, dst):
                analysis = self._checker.analysis(ec)
                best = max(
                    best, _node_disjoint_paths(analysis.edges, src, dst)
                )
            widths[(src, dst)] = best
        return widths

    def _apply(self, snapshot: Snapshot) -> None:
        delta = self._control_plane.update_to(snapshot)
        batch = self._updater.apply(
            updates_from_fib(delta.inserted, delta.deleted)
        )
        self._checker.check_batch(batch)

    # -- mining ------------------------------------------------------------------

    def mine(
        self,
        conditions: Optional[Sequence[Change]] = None,
        with_widths: bool = True,
    ) -> MinedSpec:
        if conditions is None:
            conditions = single_link_failures(self.labeled)
        started = time.perf_counter()

        base_pairs = self._reachable_pairs()
        always = set(base_pairs)
        min_width = (
            self._pair_widths(base_pairs) if with_widths else {}
        )

        count = 0
        for condition in conditions:
            failed, _ = apply_changes(self.snapshot, [condition])
            self._apply(failed)
            surviving = self._reachable_pairs()
            always &= surviving
            if with_widths:
                for pair, width in self._pair_widths(
                    pair for pair in base_pairs if pair in surviving
                ).items():
                    min_width[pair] = min(min_width.get(pair, width), width)
                for pair in base_pairs - surviving:
                    min_width[pair] = 0
            self._apply(self.snapshot)  # restore
            count += 1

        return MinedSpec(
            always_reachable=frozenset(always),
            fragile=frozenset(base_pairs - always),
            min_width=min_width,
            conditions=count,
            elapsed_seconds=time.perf_counter() - started,
        )
