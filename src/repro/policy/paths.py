"""Per-EC forwarding graph analysis.

For one equivalence class, the data plane model induces a directed graph
over devices (each device forwards the EC out of zero or more interfaces,
filtered by ACLs).  :func:`analyze_ec` computes everything the policy
checker needs from that graph:

- which destination devices each source can deliver the EC to,
- whether the graph contains a forwarding loop,
- which devices blackhole the EC (receive it from a neighbor, then drop).

The analysis is linear in the network size; the point of the incremental
checker is to run it only for *affected* ECs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.dataplane.ec import EcId
from repro.dataplane.model import NetworkModel
from repro.dataplane.ports import is_accept


@dataclass
class EcAnalysis:
    """The forwarding behaviour of one EC across the network."""

    ec: EcId
    #: device -> devices it forwards the EC to (deduplicated)
    edges: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: devices that deliver the EC locally
    accepts: FrozenSet[str] = frozenset()
    #: device -> set of accepting devices it can deliver the EC to
    delivered: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: devices on a directed forwarding cycle
    loop_nodes: FrozenSet[str] = frozenset()
    #: devices that receive the EC from a neighbor and drop it
    blackholes: FrozenSet[str] = frozenset()

    def has_loop(self) -> bool:
        return bool(self.loop_nodes)

    def delivers(self, src: str, dst: str) -> bool:
        return dst in self.delivered.get(src, frozenset())

    def delivered_pairs(self) -> Set[Tuple[str, str]]:
        return {
            (src, dst)
            for src, dsts in self.delivered.items()
            for dst in dsts
            if src != dst
        }


def analyze_ec(model: NetworkModel, ec: EcId) -> EcAnalysis:
    """Build and analyze the EC's forwarding graph."""
    analysis = EcAnalysis(ec)
    edges: Dict[str, Tuple[str, ...]] = {}
    accepts: Set[str] = set()
    blackholes: Set[str] = set()

    for node in model.device_names():
        port = model.port_of(node, ec)
        if is_accept(port):
            accepts.add(node)
        hops = model.next_devices(node, ec)
        if hops:
            edges[node] = tuple(sorted({next_node for _, next_node, _ in hops}))

    incoming: Set[str] = set()
    for node, nexts in edges.items():
        incoming.update(nexts)
    for node in incoming:
        if not edges.get(node) and node not in accepts:
            blackholes.add(node)

    analysis.edges = edges
    analysis.accepts = frozenset(accepts)
    analysis.blackholes = frozenset(blackholes)
    analysis.loop_nodes = frozenset(_cycle_nodes(edges))
    analysis.delivered = _deliveries(edges, accepts)
    return analysis


def _cycle_nodes(edges: Dict[str, Tuple[str, ...]]) -> Set[str]:
    """Devices on a directed cycle (iterative three-color DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    on_cycle: Set[str] = set()
    for root in edges:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        path: List[str] = []
        color[root] = GRAY
        path.append(root)
        while stack:
            node, idx = stack[-1]
            nexts = edges.get(node, ())
            if idx < len(nexts):
                stack[-1] = (node, idx + 1)
                succ = nexts[idx]
                succ_color = color.get(succ, WHITE)
                if succ_color == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    stack.append((succ, 0))
                elif succ_color == GRAY:
                    # Back edge: everything from succ to the top of the
                    # current path is on a cycle.
                    start = path.index(succ)
                    on_cycle.update(path[start:])
            else:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return on_cycle


def _deliveries(
    edges: Dict[str, Tuple[str, ...]], accepts: Set[str]
) -> Dict[str, FrozenSet[str]]:
    """For every device: the accepting devices it can reach.

    One reverse BFS per accepting device — an EC typically terminates at
    very few devices (its destination prefix's owners), so this is nearly
    linear in the EC's graph size.
    """
    reverse: Dict[str, List[str]] = {}
    for node, nexts in edges.items():
        for succ in nexts:
            reverse.setdefault(succ, []).append(node)
    reach: Dict[str, Set[str]] = {}
    for dst in accepts:
        frontier = [dst]
        seen = {dst}
        while frontier:
            node = frontier.pop()
            reach.setdefault(node, set()).add(dst)
            for pred in reverse.get(node, ()):
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
    return {node: frozenset(dsts) for node, dsts in reach.items()}
