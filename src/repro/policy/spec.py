"""Policy specifications.

The paper's checker handles "both network invariants, e.g., loop-freedom,
blackhole-freedom, and operator intent, e.g., reachability, waypoint"
(§4.2).  Policies are immutable values; the checker evaluates them against
its per-EC analysis and reports *changes* in satisfaction.

Intent policies carry a match box ("only HTTP traffic...") — the box is
registered with the EC manager when the policy is added, so equivalence
classes are atoms of policy matches too and a policy's EC set is an exact
index lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.net.headerspace import HeaderBox


@dataclass(frozen=True)
class Policy:
    """Base class; ``name`` identifies the policy in reports."""

    name: str

    def match_box(self) -> Optional[HeaderBox]:
        """The packet set the policy registers on (None for invariants)."""
        return None

    def pair(self) -> Optional[Tuple[str, str]]:
        """The (src, dst) pair the policy registers on, if any."""
        return None


@dataclass(frozen=True)
class Reachability(Policy):
    """Traffic in ``match`` sent from ``src`` must reach (be delivered at)
    ``dst`` — or must NOT, when ``expect_delivered`` is False (isolation)."""

    src: str = ""
    dst: str = ""
    match: HeaderBox = field(default_factory=HeaderBox.everything)
    expect_delivered: bool = True

    def match_box(self) -> Optional[HeaderBox]:
        return self.match

    def pair(self) -> Optional[Tuple[str, str]]:
        return (self.src, self.dst)


def isolation(name: str, src: str, dst: str, match: HeaderBox) -> Reachability:
    """Convenience constructor for the isolation form of reachability."""
    return Reachability(name, src, dst, match, expect_delivered=False)


@dataclass(frozen=True)
class Waypoint(Policy):
    """Traffic in ``match`` delivered from ``src`` to ``dst`` must traverse
    ``waypoint`` on every forwarding path."""

    src: str = ""
    dst: str = ""
    waypoint: str = ""
    match: HeaderBox = field(default_factory=HeaderBox.everything)

    def match_box(self) -> Optional[HeaderBox]:
        return self.match

    def pair(self) -> Optional[Tuple[str, str]]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class Multipath(Policy):
    """Load-balance intent (the paper's §4.2 policy list): traffic in
    ``match`` delivered from ``src`` to ``dst`` must have at least
    ``min_paths`` node-disjoint forwarding paths (so any
    ``min_paths - 1`` transit devices may fail without losing delivery)."""

    src: str = ""
    dst: str = ""
    min_paths: int = 2
    match: HeaderBox = field(default_factory=HeaderBox.everything)

    def match_box(self) -> Optional[HeaderBox]:
        return self.match

    def pair(self) -> Optional[Tuple[str, str]]:
        return (self.src, self.dst)


@dataclass(frozen=True)
class LoopFree(Policy):
    """No EC's forwarding graph may contain a directed cycle."""


@dataclass(frozen=True)
class BlackholeFree(Policy):
    """No EC may be forwarded to a device that then drops it.

    The unavoidable default-drop of address space nobody owns does not
    count: only packets *sent onward* by some device and dropped at the next
    hop are blackholes.
    """


@dataclass(frozen=True)
class PolicyStatus:
    """One policy's current evaluation."""

    policy: Policy
    holds: bool
    detail: str = ""

    def __str__(self) -> str:
        state = "holds" if self.holds else "VIOLATED"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.policy.name}: {state}{suffix}"
