"""Packet tracing.

The paper argues that "explicitly generating data planes allows a diverse
set of debugging functionalities like dumping the full packet traces (what
rules they match, which path they take, etc.)" (§4).  This module provides
that: given a concrete packet header and an injection point,
:func:`trace_packet` walks the data plane model hop by hop and records, at
each device, the equivalence class, the matched forwarding behaviour (the
logical port), any ACL verdicts, and the final disposition.

ECMP is followed on every branch, producing a trace *tree* flattened into
one :class:`Trace` per root-to-leaf path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.dataplane.ec import EcId
from repro.dataplane.model import NetworkModel
from repro.dataplane.ports import Port, is_accept, is_drop, port_interfaces
from repro.net.headerspace import Header
from repro.net.topology import InterfaceId


@dataclass(frozen=True)
class Hop:
    """One device visit in a trace."""

    device: str
    ec: EcId
    port: Port
    #: interface the packet left through (None on terminal hops)
    out_interface: Optional[str] = None
    #: why the walk stopped or continued
    note: str = ""

    def __str__(self) -> str:
        action = self.out_interface or self.note or str(self.port)
        return f"{self.device}[{action}]"


#: Final packet disposition of one trace.
DELIVERED = "delivered"
DROPPED = "dropped"
DENIED_EGRESS = "denied by egress ACL"
DENIED_INGRESS = "denied by ingress ACL"
LOOPED = "forwarding loop"
DISCONNECTED = "interface not connected"


@dataclass
class Trace:
    """One root-to-leaf forwarding path of a packet."""

    header: Header
    hops: List[Hop] = field(default_factory=list)
    disposition: str = DROPPED

    @property
    def path(self) -> List[str]:
        return [hop.device for hop in self.hops]

    def delivered(self) -> bool:
        return self.disposition == DELIVERED

    def __str__(self) -> str:
        chain = " -> ".join(str(hop) for hop in self.hops)
        return f"{chain} :: {self.disposition}"


def trace_packet(
    model: NetworkModel, header: Header, source: str, max_hops: int = 64
) -> List[Trace]:
    """All forwarding paths of ``header`` injected at ``source``.

    Every ECMP branch is explored; each returned trace ends in a terminal
    disposition (delivered, dropped, ACL-denied, looped, or disconnected).
    """
    ec = model.ecs.classify(header)
    traces: List[Trace] = []
    _walk(model, header, ec, source, [], set(), traces, max_hops)
    return traces


def _walk(
    model: NetworkModel,
    header: Header,
    ec: EcId,
    device: str,
    hops: List[Hop],
    visited: Set[str],
    traces: List[Trace],
    budget: int,
) -> None:
    port = model.port_of(device, ec)

    if device in visited:
        trace = Trace(header, hops + [Hop(device, ec, port, note="revisited")])
        trace.disposition = LOOPED
        traces.append(trace)
        return
    if budget <= 0:
        trace = Trace(header, hops + [Hop(device, ec, port, note="hop budget")])
        trace.disposition = LOOPED
        traces.append(trace)
        return

    if is_accept(port):
        trace = Trace(header, hops + [Hop(device, ec, port, note="accept")])
        trace.disposition = DELIVERED
        traces.append(trace)
        return
    if is_drop(port):
        trace = Trace(header, hops + [Hop(device, ec, port, note="no route")])
        trace.disposition = DROPPED
        traces.append(trace)
        return

    visited = visited | {device}
    for iface in port_interfaces(port):
        hop = Hop(device, ec, port, out_interface=iface)
        if not model.filter_permits(device, iface, "out", ec):
            trace = Trace(header, hops + [hop])
            trace.disposition = DENIED_EGRESS
            traces.append(trace)
            continue
        peer = model.topology.neighbor_of(InterfaceId(device, iface))
        if peer is None:
            trace = Trace(header, hops + [hop])
            trace.disposition = DISCONNECTED
            traces.append(trace)
            continue
        if not model.filter_permits(peer.node, peer.name, "in", ec):
            trace = Trace(header, hops + [hop])
            trace.disposition = DENIED_INGRESS
            traces.append(trace)
            continue
        _walk(
            model,
            header,
            ec,
            peer.node,
            hops + [hop],
            visited,
            traces,
            budget - 1,
        )


def format_traces(traces: List[Trace]) -> str:
    """Human-readable multi-line rendering of a trace set."""
    if not traces:
        return "(no traces)"
    lines = [f"packet {traces[0].header}: {len(traces)} path(s)"]
    for index, trace in enumerate(traces):
        lines.append(f"  [{index}] {trace}")
    return "\n".join(lines)
