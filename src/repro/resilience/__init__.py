"""repro.resilience — transactional verification, checkpoints, and drift audit.

Layers (ROADMAP "robustness" tentpole):

- :mod:`repro.resilience.faults` — the test-only fault-injection hooks the
  pipeline calls at stage boundaries (imported eagerly: stdlib-only, no
  cycles);
- :mod:`repro.resilience.checkpoint` — serialize / restore a full verifier
  (loaded lazily: it imports :mod:`repro.core.realconfig`);
- :mod:`repro.resilience.audit` — recompute the FIB and EC model from
  scratch and diff them against the incremental state (lazy for the same
  reason).
"""

from __future__ import annotations

from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_point,
    get_fault_plan,
    inject,
    set_fault_plan,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "get_fault_plan",
    "inject",
    "set_fault_plan",
    "CheckpointCorruptError",
    "CheckpointError",
    "ResolvedCheckpoint",
    "RestoredCheckpoint",
    "checkpoint_payload_bytes",
    "read_checkpoint",
    "resolve_checkpoint",
    "restore_checkpoint",
    "write_checkpoint",
    "DriftReport",
    "PolicyDrift",
    "PortDrift",
    "audit",
    "recover",
]

_LAZY = {
    "CheckpointCorruptError": "repro.resilience.checkpoint",
    "CheckpointError": "repro.resilience.checkpoint",
    "ResolvedCheckpoint": "repro.resilience.checkpoint",
    "RestoredCheckpoint": "repro.resilience.checkpoint",
    "checkpoint_payload_bytes": "repro.resilience.checkpoint",
    "read_checkpoint": "repro.resilience.checkpoint",
    "resolve_checkpoint": "repro.resilience.checkpoint",
    "restore_checkpoint": "repro.resilience.checkpoint",
    "write_checkpoint": "repro.resilience.checkpoint",
    "DriftReport": "repro.resilience.audit",
    "PolicyDrift": "repro.resilience.audit",
    "PortDrift": "repro.resilience.audit",
    "audit": "repro.resilience.audit",
    "recover": "repro.resilience.audit",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
