"""Drift audit: incremental state vs. a from-scratch recomputation.

The incremental pipeline is fast because it never recomputes; the price is
that a bug (or an injected fault that slipped past the transaction) can
leave its state silently diverged from what the configuration actually
implies.  The auditor recomputes ground truth with independent algorithms
and diffs:

- **FIB** — :func:`repro.baseline.simulate` (the from-scratch iterative
  simulator, sharing no code with the differential engine) vs. the
  engine's current FIB;
- **EC model and policies** — a fresh :class:`NetworkModel` /
  :class:`IncrementalChecker` built in one shot from the baseline FIB and
  the snapshot's filter rules, compared port-by-port by sampling concrete
  headers from both partitions and classifying them in the other model.

Port/policy comparison runs only in ``ecmp`` mode: in ``priority`` mode
the port an EC lands on depends on rule insertion order, so a freshly
built model can differ legitimately from an incrementally maintained one.
The FIB layer is always compared.

:func:`recover` degrades gracefully: on drift it rebuilds the verifier
from the current snapshot (:meth:`RealConfig.rebuild`) and re-audits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.baseline.simulator import simulate
from repro.core.generator import extract_filter_rules
from repro.dataplane.batch import BatchUpdater
from repro.dataplane.ec import EcError
from repro.dataplane.model import NetworkModel
from repro.dataplane.ports import Port
from repro.dataplane.rule import RuleUpdate, updates_from_fib
from repro.net.headerspace import Header
from repro.policy.checker import IncrementalChecker
from repro.routing.types import FibEntry
from repro.telemetry import get_metrics, names, span

#: Placeholder "port" reported when a header cannot be classified at all
#: (the live partition no longer covers the header space).
UNCLASSIFIABLE: Port = ("unclassifiable",)


@dataclass(frozen=True)
class PortDrift:
    """On ``device``, packets matching ``header`` should take ``expected``
    but the incremental model has them on ``actual``."""

    device: str
    header: Header
    expected: Port
    actual: Port

    def __str__(self) -> str:
        return (
            f"{self.device}: header {self.header} expected port "
            f"{self.expected}, model has {self.actual}"
        )


@dataclass(frozen=True)
class PolicyDrift:
    """Policy ``name`` verdict disagrees with the from-scratch checker."""

    name: str
    expected_holds: bool
    actual_holds: bool

    def __str__(self) -> str:
        return (
            f"policy {self.name!r}: from-scratch says "
            f"holds={self.expected_holds}, incremental says "
            f"holds={self.actual_holds}"
        )


@dataclass
class DriftReport:
    """What the audit found."""

    fib_missing: List[FibEntry] = field(default_factory=list)
    fib_extra: List[FibEntry] = field(default_factory=list)
    port_drift: List[PortDrift] = field(default_factory=list)
    policy_drift: List[PolicyDrift] = field(default_factory=list)
    #: Whether the port/policy layers were compared (ecmp mode only).
    checked_model: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not (
            self.fib_missing
            or self.fib_extra
            or self.port_drift
            or self.policy_drift
        )

    def summary(self) -> str:
        if self.ok:
            layers = "fib+model+policies" if self.checked_model else "fib"
            return (
                f"audit clean ({layers}, "
                f"{self.elapsed_seconds * 1000:.1f} ms)"
            )
        return (
            f"DRIFT: {len(self.fib_missing)} FIB entries missing, "
            f"{len(self.fib_extra)} extra, {len(self.port_drift)} port "
            f"mismatches, {len(self.policy_drift)} policy mismatches "
            f"({self.elapsed_seconds * 1000:.1f} ms)"
        )


def audit(verifier) -> DriftReport:
    """Recompute everything from scratch off ``verifier.snapshot`` and
    diff it against the verifier's incremental state."""
    report = DriftReport()
    started = time.perf_counter()
    with span(names.SPAN_AUDIT) as sp:
        baseline_fib: Set[FibEntry] = set(simulate(verifier.snapshot).fib)
        live_fib: Set[FibEntry] = set(verifier.generator.control_plane.fib())
        report.fib_missing = sorted(baseline_fib - live_fib)
        report.fib_extra = sorted(live_fib - baseline_fib)

        options = verifier._options
        if options["model_mode"] == "ecmp":
            report.checked_model = True
            fresh_model = NetworkModel(
                verifier.snapshot.topology,
                merge_on_unregister=options["merge_ecs"],
                mode=options["model_mode"],
            )
            updates = updates_from_fib(sorted(baseline_fib), [])
            updates.extend(
                RuleUpdate(1, rule)
                for rule in sorted(extract_filter_rules(verifier.snapshot))
            )
            BatchUpdater(fresh_model, order=options["update_order"]).apply(
                updates
            )
            fresh_checker = IncrementalChecker(
                fresh_model,
                verifier.checker.endpoints,
                verifier.checker.policies(),
            )
            report.port_drift = _compare_ports(verifier.model, fresh_model)
            report.policy_drift = _compare_policies(
                verifier.checker, fresh_checker
            )

        report.elapsed_seconds = time.perf_counter() - started
        sp.set("ok", report.ok)
        sp.set("checked_model", report.checked_model)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(names.AUDITS).inc()
        if not report.ok:
            metrics.counter(names.AUDIT_DRIFT).inc()
    return report


def _compare_ports(
    live: NetworkModel, fresh: NetworkModel
) -> List[PortDrift]:
    """Sample one header per EC of *each* partition and require both models
    to forward it identically on every device.  Sampling both directions
    catches ECs the live model lost as well as ones it invented."""
    drift: List[PortDrift] = []
    seen: Set[Tuple] = set()

    def check(device: str, header: Header, expected: Port, actual: Port) -> None:
        if expected == actual:
            return
        key = (device, repr(header), expected, actual)
        if key in seen:
            return
        seen.add(key)
        drift.append(PortDrift(device, header, expected, actual))

    live_samples = [
        live.ecs.predicate(ec).sample() for ec in live.ecs.ec_ids()
    ]
    fresh_samples = [
        fresh.ecs.predicate(ec).sample() for ec in fresh.ecs.ec_ids()
    ]
    for name in live.device_names():
        live_ports = live.device(name).ports
        fresh_ports = fresh.device(name).ports
        for header in live_samples + fresh_samples:
            expected = fresh_ports.get(fresh.ecs.classify(header))
            try:
                actual = live_ports.get(live.ecs.classify(header))
            except EcError:
                actual = UNCLASSIFIABLE
            check(name, header, expected, actual)
    return drift


def _compare_policies(
    live: IncrementalChecker, fresh: IncrementalChecker
) -> List[PolicyDrift]:
    expected = {
        status.policy.name: status.holds for status in fresh.statuses()
    }
    actual = {status.policy.name: status.holds for status in live.statuses()}
    drift: List[PolicyDrift] = []
    for policy_name in sorted(set(expected) | set(actual)):
        want = expected.get(policy_name)
        have = actual.get(policy_name)
        if want != have:
            drift.append(
                PolicyDrift(policy_name, bool(want), bool(have))
            )
    return drift


def recover(verifier) -> Tuple[DriftReport, Optional[DriftReport]]:
    """Audit; on drift, rebuild the verifier from its current snapshot and
    audit again.  Returns ``(first_report, post_recovery_report_or_None)``."""
    report = audit(verifier)
    if report.ok:
        return report, None
    verifier.rebuild()
    return report, audit(verifier)
