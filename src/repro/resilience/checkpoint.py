"""Verifier checkpoints.

A checkpoint is a single pickle of plain data: the current snapshot, the
construction options, and the captured state of every pipeline component
(differential engine operator histories, EC partition, port maps, policy
analyses).  Nothing executable is serialized — the compiled dataflow graph
holds closures, so on restore the graph is recompiled deterministically
from the rule program and each operator's history is restored by position,
with name/count sanity checks (see :meth:`repro.ddlog.engine.Engine.restore_state`).

A restored verifier resumes incremental verification immediately: no
control plane re-convergence, no policy re-check.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.config.schema import ConfigError
from repro.ddlog.convergence import ConvergenceMonitor
from repro.resilience.faults import fault_point
from repro.telemetry import get_metrics, names, span

FORMAT = "repro-checkpoint"
VERSION = 1
#: Schema version of the ``extras`` envelope (the caller-owned side-car:
#: stream cursors, tenant lineage, ...).  Bumped whenever the shape of
#: what writers put in ``extras`` changes incompatibly; readers refuse
#: envelopes from a *newer* writer with :class:`CheckpointError` (the
#: CLI's exit-2 contract) instead of mis-parsing them into a stack trace.
EXTRAS_VERSION = 1


class CheckpointError(ConfigError):
    """Raised for unreadable, corrupt, or incompatible checkpoint files."""


def write_checkpoint(
    verifier,
    path: Union[str, Path],
    extras: Optional[Dict[str, Any]] = None,
) -> None:
    """Serialize ``verifier`` (a :class:`~repro.core.realconfig.RealConfig`)
    to ``path``.

    The write is crash-safe: the pickle lands in a temporary file in the
    same directory and is renamed over ``path`` with :func:`os.replace`, so
    a crash mid-write (power loss, OOM kill, injected fault) can never
    leave a truncated checkpoint — ``path`` either still holds the previous
    checkpoint or already holds the complete new one.

    ``extras`` is an optional dict of plain data stored alongside the
    verifier state (e.g. the serving daemon's stream cursor); readers that
    do not know about it ignore it, :func:`read_checkpoint_extras` returns
    it without restoring the verifier.
    """
    with span(names.SPAN_CHECKPOINT, path=str(path)) as sp:
        payload: Dict[str, Any] = {
            "format": FORMAT,
            "version": VERSION,
            "snapshot": verifier.snapshot,
            "options": dict(verifier._options),
            "generator": verifier.generator.capture_state(),
            "model": verifier.model.capture_state(),
            "checker": verifier.checker.capture_state(),
            "lint_result": verifier._lint_result,
            "initial": verifier.initial,
            "extras": dict(extras) if extras else {},
            "extras_version": EXTRAS_VERSION,
        }
        path = Path(path)
        tmp_name = None
        try:
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            # Fault hook between the temp write and the rename: a fault
            # firing here models a crash mid-checkpoint, and the atomicity
            # test asserts the previous checkpoint survives it intact.
            fault_point("checkpoint_write", tmp_name)
            os.replace(tmp_name, path)
            tmp_name = None
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {error}"
            ) from error
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        sp.set("bytes", len(data))
    metrics = get_metrics()
    if metrics.enabled:
        metrics.gauge(names.CHECKPOINT_BYTES).set(len(data))


def _load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise CheckpointError(
            f"corrupt checkpoint {path}: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a {FORMAT} file")
    if payload.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    # Pre-versioning checkpoints carry no marker; they were written by
    # an older (compatible) writer, so treat them as version 1.
    extras_version = payload.get("extras_version", 1)
    if not isinstance(extras_version, int) or extras_version > EXTRAS_VERSION:
        raise CheckpointError(
            f"checkpoint {path} extras envelope is version "
            f"{extras_version!r} (this build reads <= {EXTRAS_VERSION}); "
            "upgrade repro to restore it"
        )
    return payload


def read_checkpoint(
    path: Union[str, Path], monitor: Optional[ConvergenceMonitor] = None
):
    """Rebuild a :class:`~repro.core.realconfig.RealConfig` from a
    checkpoint file."""
    from repro.core.realconfig import RealConfig

    payload = _load_payload(path)
    try:
        return RealConfig._from_checkpoint(payload, monitor)
    except CheckpointError:
        raise
    except Exception as error:
        # A well-formed envelope whose inner state cannot be restored
        # (truncated histories, schema drift) is still a corrupt
        # checkpoint, not a crash — the CLI's exit-2 contract depends on
        # seeing CheckpointError here rather than a bare traceback.
        raise CheckpointError(
            f"corrupt checkpoint {path}: cannot restore verifier state: "
            f"{error}"
        ) from error


def read_checkpoint_extras(path: Union[str, Path]) -> Dict[str, Any]:
    """Return the ``extras`` dict stored in a checkpoint (empty for
    checkpoints written without one) without restoring the verifier."""
    extras = _load_payload(path).get("extras") or {}
    if not isinstance(extras, dict):
        raise CheckpointError(f"corrupt checkpoint {path}: bad extras block")
    return extras
