"""Verifier checkpoints.

A checkpoint is a single pickle of plain data: the current snapshot, the
construction options, and the captured state of every pipeline component
(differential engine operator histories, EC partition, port maps, policy
analyses).  Nothing executable is serialized — the compiled dataflow graph
holds closures, so on restore the graph is recompiled deterministically
from the rule program and each operator's history is restored by position,
with name/count sanity checks (see :meth:`repro.ddlog.engine.Engine.restore_state`).

A restored verifier resumes incremental verification immediately: no
control plane re-convergence, no policy re-check.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.config.schema import ConfigError
from repro.ddlog.convergence import ConvergenceMonitor
from repro.telemetry import get_metrics, names, span

FORMAT = "repro-checkpoint"
VERSION = 1


class CheckpointError(ConfigError):
    """Raised for unreadable, corrupt, or incompatible checkpoint files."""


def write_checkpoint(verifier, path: Union[str, Path]) -> None:
    """Serialize ``verifier`` (a :class:`~repro.core.realconfig.RealConfig`)
    to ``path``."""
    with span(names.SPAN_CHECKPOINT, path=str(path)) as sp:
        payload: Dict[str, Any] = {
            "format": FORMAT,
            "version": VERSION,
            "snapshot": verifier.snapshot,
            "options": dict(verifier._options),
            "generator": verifier.generator.capture_state(),
            "model": verifier.model.capture_state(),
            "checker": verifier.checker.capture_state(),
            "lint_result": verifier._lint_result,
            "initial": verifier.initial,
        }
        try:
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            Path(path).write_bytes(data)
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {error}"
            ) from error
        sp.set("bytes", len(data))
    metrics = get_metrics()
    if metrics.enabled:
        metrics.gauge(names.CHECKPOINT_BYTES).set(len(data))


def read_checkpoint(
    path: Union[str, Path], monitor: Optional[ConvergenceMonitor] = None
):
    """Rebuild a :class:`~repro.core.realconfig.RealConfig` from a
    checkpoint file."""
    from repro.core.realconfig import RealConfig

    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise CheckpointError(
            f"corrupt checkpoint {path}: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a {FORMAT} file")
    if payload.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    return RealConfig._from_checkpoint(payload, monitor)
