"""Verifier checkpoints: checksummed envelope + generation ring.

A checkpoint is a single pickle of plain data: the current snapshot, the
construction options, and the captured state of every pipeline component
(differential engine operator histories, EC partition, port maps, policy
analyses).  Nothing executable is serialized — the compiled dataflow graph
holds closures, so on restore the graph is recompiled deterministically
from the rule program and each operator's history is restored by position,
with name/count sanity checks (see :meth:`repro.ddlog.engine.Engine.restore_state`).

A restored verifier resumes incremental verification immediately: no
control plane re-convergence, no policy re-check.

On disk a checkpoint is a *checksummed envelope*::

    repro-ckpt-envelope 2\\n
    {"algo": "sha256", "digest": "<hex>", "payload_bytes": N}\\n
    <N bytes of pickle payload>

The digest is verified on every read; damaged bytes raise the typed
:class:`CheckpointCorruptError` — never a raw unpickle of corrupt data.
Files without the magic first line are pre-envelope checkpoints and are
read as raw pickles for compatibility.

``write_checkpoint`` additionally keeps a *generation ring*: before the
new checkpoint is renamed into place, the previous one is preserved as
``<path>.1`` (older generations shift to ``.2``, ``.3``, …, the oldest
beyond ``keep`` is dropped), and an advisory ``<path>.manifest.json``
lists each generation with its digest.  ``resolve_checkpoint`` falls back
to the newest generation whose digest verifies, so a single corrupt file
no longer kills ``--resume-from``, tenant rehydration, or replay —
corruption costs one checkpoint interval of history, not the service.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.chaos.points import crash_point
from repro.config.schema import ConfigError
from repro.ddlog.convergence import ConvergenceMonitor
from repro.resilience.faults import fault_point
from repro.telemetry import get_metrics, names, span

FORMAT = "repro-checkpoint"
VERSION = 1
#: Schema version of the ``extras`` envelope (the caller-owned side-car:
#: stream cursors, tenant lineage, ...).  Bumped whenever the shape of
#: what writers put in ``extras`` changes incompatibly; readers refuse
#: envelopes from a *newer* writer with :class:`CheckpointError` (the
#: CLI's exit-2 contract) instead of mis-parsing them into a stack trace.
EXTRAS_VERSION = 1

#: First line of every checksummed checkpoint file.  The trailing integer
#: is the on-disk envelope version; files whose first line lacks this
#: prefix are pre-envelope raw pickles.
MAGIC_PREFIX = b"repro-ckpt-envelope "
ENVELOPE_VERSION = 2

#: Generations kept by default: the live checkpoint plus two fallbacks.
DEFAULT_GENERATIONS = 3
#: Hard ceiling on the fallback scan, so a directory full of stale
#: ``.N`` files from an older, larger ``keep`` cannot stall a resolve.
MAX_GENERATION_SCAN = 32

MANIFEST_SUFFIX = ".manifest.json"
MANIFEST_FORMAT = "repro-checkpoint-manifest"


class CheckpointError(ConfigError):
    """Raised for unreadable, corrupt, or incompatible checkpoint files."""


class CheckpointCorruptError(CheckpointError):
    """The file's bytes are damaged: digest mismatch, truncated payload,
    unparseable envelope or pickle.  This — and only this — is what the
    generation ring may transparently fall back across; incompatibility
    errors (future version, newer extras schema) always surface."""


def generation_path(path: Union[str, Path], generation: int) -> Path:
    """``generation`` 0 is the live checkpoint, 1 the previous, ..."""
    path = Path(path)
    if generation <= 0:
        return path
    return path.with_name(f"{path.name}.{generation}")


def manifest_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    return path.with_name(path.name + MANIFEST_SUFFIX)


# -- envelope ----------------------------------------------------------------


def _encode_envelope(payload: bytes) -> bytes:
    header = json.dumps(
        {
            "algo": "sha256",
            "digest": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        },
        sort_keys=True,
    ).encode("ascii")
    magic = MAGIC_PREFIX + str(ENVELOPE_VERSION).encode("ascii")
    return magic + b"\n" + header + b"\n" + payload


def _split_envelope(data: bytes, path: Union[str, Path]) -> bytes:
    """Verify an enveloped checkpoint and return its payload bytes.

    The caller has already established ``data`` starts with MAGIC_PREFIX.
    """
    magic_end = data.find(b"\n")
    if magic_end < 0:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: truncated envelope magic"
        )
    version_bytes = data[len(MAGIC_PREFIX) : magic_end]
    try:
        envelope_version = int(version_bytes)
    except ValueError as error:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: unreadable envelope version "
            f"{version_bytes!r}"
        ) from error
    if envelope_version != ENVELOPE_VERSION:
        raise CheckpointError(
            f"checkpoint {path} uses envelope version {envelope_version} "
            f"(this build reads version {ENVELOPE_VERSION}); "
            "upgrade repro to restore it"
        )
    header_end = data.find(b"\n", magic_end + 1)
    if header_end < 0:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: truncated envelope header"
        )
    try:
        header = json.loads(data[magic_end + 1 : header_end])
    except ValueError as error:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: unreadable envelope header: {error}"
        ) from error
    if not isinstance(header, dict):
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: envelope header is not an object"
        )
    payload = data[header_end + 1 :]
    expected_bytes = header.get("payload_bytes")
    if (
        not isinstance(expected_bytes, int)
        or len(payload) != expected_bytes
    ):
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: payload is {len(payload)} bytes, "
            f"envelope says {expected_bytes!r}"
        )
    algo = header.get("algo")
    if algo != "sha256":
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: unknown digest algorithm {algo!r}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("digest"):
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: content digest mismatch "
            f"(file is damaged)"
        )
    return payload


def checkpoint_payload_bytes(path: Union[str, Path]) -> bytes:
    """The verified pickle payload of ``path`` (the raw bytes for a
    pre-envelope checkpoint).  Digest failures raise
    :class:`CheckpointCorruptError`."""
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    if data.startswith(MAGIC_PREFIX):
        return _split_envelope(data, path)
    return data


def _peek_header(path: Path) -> Optional[Dict[str, Any]]:
    """The envelope header of ``path``, or None if missing/legacy/torn.
    Reads two lines — never the payload — so manifests stay cheap."""
    try:
        with open(path, "rb") as handle:
            magic = handle.readline(256)
            if not magic.startswith(MAGIC_PREFIX):
                return None
            header_line = handle.readline(4096)
    except OSError:
        return None
    try:
        header = json.loads(header_line)
    except ValueError:
        return None
    return header if isinstance(header, dict) else None


# -- payload checks ----------------------------------------------------------


def _parse_payload(data: bytes, path: Union[str, Path]) -> Dict[str, Any]:
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise CheckpointCorruptError(
            f"corrupt checkpoint {path}: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a {FORMAT} file")
    if payload.get("version") != VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    # Pre-versioning checkpoints carry no marker; they were written by
    # an older (compatible) writer, so treat them as version 1.
    extras_version = payload.get("extras_version", 1)
    if not isinstance(extras_version, int) or extras_version > EXTRAS_VERSION:
        raise CheckpointError(
            f"checkpoint {path} extras envelope is version "
            f"{extras_version!r} (this build reads <= {EXTRAS_VERSION}); "
            "upgrade repro to restore it"
        )
    return payload


def _load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    return _parse_payload(checkpoint_payload_bytes(path), path)


# -- write path --------------------------------------------------------------


def _rotate_generations(path: Path, keep: int) -> None:
    """Shift ``path`` into the ``.1 .. .keep-1`` ring before it is
    overwritten.  ``path`` itself stays valid at every instant — the
    current checkpoint is *hardlinked* aside, never moved — so a crash
    anywhere in the rotation still leaves a restorable newest generation.
    The ring is best-effort: rotation I/O errors never fail the write."""
    if keep <= 1 or not path.exists():
        return
    try:
        os.unlink(generation_path(path, keep - 1))
    except OSError:
        pass
    for i in range(keep - 2, 0, -1):
        source = generation_path(path, i)
        if not source.exists():
            continue
        try:
            os.replace(source, generation_path(path, i + 1))
        except OSError:
            pass
    aside = path.with_name(path.name + ".gen.tmp")
    try:
        try:
            os.unlink(aside)
        except OSError:
            pass
        try:
            os.link(path, aside)
        except OSError:
            aside.write_bytes(path.read_bytes())
        os.replace(aside, generation_path(path, 1))
    except OSError:
        try:
            os.unlink(aside)
        except OSError:
            pass


def _write_manifest(path: Path, keep: int) -> int:
    """Advisory sidecar listing the ring's generations and digests, for
    operators and the chaos harness; resolution never requires it.
    Returns the number of generations present."""
    entries = []
    for i in range(max(keep, 1)):
        candidate = generation_path(path, i)
        try:
            size = candidate.stat().st_size
        except OSError:
            if i == 0:
                continue
            break
        header = _peek_header(candidate) or {}
        entries.append(
            {
                "generation": i,
                "file": candidate.name,
                "bytes": size,
                "algo": header.get("algo"),
                "digest": header.get("digest"),
                "payload_bytes": header.get("payload_bytes"),
            }
        )
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": 1,
        "keep": keep,
        "generations": entries,
    }
    target = manifest_path(path)
    tmp_name = None
    try:
        fd, tmp_name = tempfile.mkstemp(
            prefix=target.name + ".", suffix=".tmp", dir=path.parent or "."
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, target)
        tmp_name = None
    except OSError:
        pass
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
    return len(entries)


def write_checkpoint(
    verifier,
    path: Union[str, Path],
    extras: Optional[Dict[str, Any]] = None,
    keep: int = DEFAULT_GENERATIONS,
) -> None:
    """Serialize ``verifier`` (a :class:`~repro.core.realconfig.RealConfig`)
    to ``path``, keeping the last ``keep`` generations.

    The write is crash-safe: the envelope lands in a temporary file in the
    same directory and is renamed over ``path`` with :func:`os.replace`, so
    a crash mid-write (power loss, OOM kill, injected fault) can never
    leave a truncated checkpoint — ``path`` either still holds the previous
    checkpoint or already holds the complete new one.  The previous
    checkpoint survives as ``<path>.1`` (and so on up to ``keep - 1``).

    ``extras`` is an optional dict of plain data stored alongside the
    verifier state (e.g. the serving daemon's stream cursor); readers that
    do not know about it ignore it, :func:`read_checkpoint_extras` returns
    it without restoring the verifier.
    """
    with span(names.SPAN_CHECKPOINT, path=str(path)) as sp:
        payload: Dict[str, Any] = {
            "format": FORMAT,
            "version": VERSION,
            "snapshot": verifier.snapshot,
            "options": dict(verifier._options),
            "generator": verifier.generator.capture_state(),
            "model": verifier.model.capture_state(),
            "checker": verifier.checker.capture_state(),
            "lint_result": verifier._lint_result,
            "initial": verifier.initial,
            "extras": dict(extras) if extras else {},
            "extras_version": EXTRAS_VERSION,
        }
        path = Path(path)
        tmp_name = None
        try:
            data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            envelope = _encode_envelope(data)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
            )
            with os.fdopen(fd, "wb") as handle:
                handle.write(envelope)
                handle.flush()
                crash_point("checkpoint.tmp")
                os.fsync(handle.fileno())
            crash_point("checkpoint.fsync")
            # Fault hook between the temp write and the rename: a fault
            # firing here models a crash mid-checkpoint, and the atomicity
            # test asserts the previous checkpoint survives it intact —
            # including that no generation has rotated yet.
            fault_point("checkpoint_write", tmp_name)
            _rotate_generations(path, keep)
            crash_point("checkpoint.rotate")
            os.replace(tmp_name, path)
            tmp_name = None
            crash_point("checkpoint.replace")
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {error}"
            ) from error
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        generations = _write_manifest(path, keep)
        crash_point("checkpoint.manifest")
        sp.set("bytes", len(data))
        sp.set("generations", generations)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.gauge(names.CHECKPOINT_BYTES).set(len(data))
        metrics.gauge(names.CHECKPOINT_GENERATIONS).set(generations)


# -- read path ---------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedCheckpoint:
    """A parsed checkpoint payload plus where in the ring it came from."""

    payload: Dict[str, Any]
    path: Path
    requested: Path
    generation: int
    #: (candidate path, error) for every newer generation skipped over —
    #: empty when the live checkpoint itself verified.
    skipped: Tuple[Tuple[Path, CheckpointError], ...] = ()

    @property
    def fell_back(self) -> bool:
        return self.generation > 0


@dataclass(frozen=True)
class RestoredCheckpoint:
    """A restored verifier plus its extras and ring provenance."""

    verifier: Any
    extras: Dict[str, Any]
    path: Path
    requested: Path
    generation: int
    skipped: Tuple[Tuple[Path, CheckpointError], ...] = ()

    @property
    def fell_back(self) -> bool:
        return self.generation > 0


def resolve_checkpoint(path: Union[str, Path]) -> ResolvedCheckpoint:
    """Load the newest generation of ``path`` whose digest verifies.

    Only *corruption* (damaged bytes) and a missing file are skipped
    over; incompatibility — a future checkpoint version or newer extras
    schema — raises immediately, because silently restoring older state
    when the operator needs a software upgrade would mask the real
    problem.  If no generation verifies, the primary (generation-0)
    error is raised.
    """
    requested = Path(path)
    skipped: list = []
    for i in range(MAX_GENERATION_SCAN):
        candidate = generation_path(requested, i)
        if not candidate.exists():
            if i == 0:
                skipped.append(
                    (
                        candidate,
                        CheckpointError(
                            f"cannot read checkpoint {candidate}: "
                            "no such file"
                        ),
                    )
                )
                continue
            break
        try:
            payload = _load_payload(candidate)
        except CheckpointCorruptError as error:
            skipped.append((candidate, error))
            continue
        if skipped:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(names.CHECKPOINT_FALLBACKS).inc()
        return ResolvedCheckpoint(
            payload=payload,
            path=candidate,
            requested=requested,
            generation=i,
            skipped=tuple(skipped),
        )
    raise skipped[0][1] if skipped else CheckpointError(
        f"cannot read checkpoint {requested}: no such file"
    )


def _extract_extras(
    payload: Dict[str, Any], path: Union[str, Path]
) -> Dict[str, Any]:
    extras = payload.get("extras") or {}
    if not isinstance(extras, dict):
        raise CheckpointError(f"corrupt checkpoint {path}: bad extras block")
    return extras


def _restore_verifier(
    payload: Dict[str, Any],
    path: Union[str, Path],
    monitor: Optional[ConvergenceMonitor],
):
    from repro.core.realconfig import RealConfig

    try:
        return RealConfig._from_checkpoint(payload, monitor)
    except CheckpointError:
        raise
    except Exception as error:
        # A well-formed envelope whose inner state cannot be restored
        # (truncated histories, schema drift) is still a corrupt
        # checkpoint, not a crash — the CLI's exit-2 contract depends on
        # seeing CheckpointError here rather than a bare traceback.
        raise CheckpointError(
            f"corrupt checkpoint {path}: cannot restore verifier state: "
            f"{error}"
        ) from error


def restore_checkpoint(
    path: Union[str, Path], monitor: Optional[ConvergenceMonitor] = None
) -> RestoredCheckpoint:
    """Resolve the newest verifiable generation of ``path`` and restore
    the verifier *and* extras from that single resolution — callers that
    need both never see two different generations."""
    resolved = resolve_checkpoint(path)
    verifier = _restore_verifier(resolved.payload, resolved.path, monitor)
    extras = _extract_extras(resolved.payload, resolved.path)
    return RestoredCheckpoint(
        verifier=verifier,
        extras=extras,
        path=resolved.path,
        requested=resolved.requested,
        generation=resolved.generation,
        skipped=resolved.skipped,
    )


def read_checkpoint(
    path: Union[str, Path], monitor: Optional[ConvergenceMonitor] = None
):
    """Rebuild a :class:`~repro.core.realconfig.RealConfig` from a
    checkpoint file (falling back across the generation ring)."""
    return restore_checkpoint(path, monitor).verifier


def read_checkpoint_extras(path: Union[str, Path]) -> Dict[str, Any]:
    """Return the ``extras`` dict stored in a checkpoint (empty for
    checkpoints written without one) without restoring the verifier."""
    resolved = resolve_checkpoint(path)
    return _extract_extras(resolved.payload, resolved.path)
