"""Fault injection for resilience testing.

The pipeline calls :func:`fault_point` at its stage boundaries (data plane
generation, each model rule update, policy check, lint gate, commit).  In
production no plan is active and the call is a no-op dict lookup.  Tests
activate a :class:`FaultPlan` via :func:`inject` to make a specific stage
fail on a specific call — raising, corrupting the stage payload in place,
or stalling — and then assert that the transactional wrapper restores the
verifier to its pre-change state.

This module is intentionally dependency-free (stdlib only) so every layer
of the pipeline can import it without cycles.
"""

from __future__ import annotations

import errno as _errno
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Actions a fault spec may take when it fires.
ACTIONS = ("raise", "corrupt", "delay", "errno")


class FaultInjected(RuntimeError):
    """The default exception raised by a firing ``raise`` fault."""


@dataclass
class FaultSpec:
    """Fail stage ``stage`` on its ``call``-th invocation (1-based).

    - ``action="raise"`` raises ``exception`` (default :class:`FaultInjected`);
    - ``action="corrupt"`` calls ``mutate(payload)`` to damage the stage's
      in-flight payload, then lets the stage proceed;
    - ``action="delay"`` sleeps ``delay_seconds`` then proceeds;
    - ``action="errno"`` raises ``OSError(err, strerror)`` — a *storage*
      fault (``err`` defaults to ENOSPC) exactly as the OS would surface
      a full disk or failing device, so the degradation paths that catch
      ``OSError`` are exercised rather than the generic fault exception.

    ``repeat`` widens the spec to a run of consecutive calls: it fires on
    calls ``call .. call + repeat - 1`` (``repeat=0`` means every call from
    ``call`` onward).  The serving tests use this to make one batch fail
    across its entire retry budget — a *poison* batch rather than a
    transient hiccup.
    """

    stage: str
    call: int = 1
    action: str = "raise"
    mutate: Optional[Callable[[Any], None]] = None
    delay_seconds: float = 0.0
    exception: Optional[BaseException] = None
    repeat: int = 1
    err: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (expected one of {ACTIONS})"
            )
        if self.action == "corrupt" and self.mutate is None:
            raise ValueError("a 'corrupt' fault needs a mutate callable")
        if self.action == "errno" and self.err == 0:
            self.err = _errno.ENOSPC
        if self.call < 1:
            raise ValueError("call numbers are 1-based")
        if self.repeat < 0:
            raise ValueError("repeat must be >= 0 (0 = fire forever)")

    def matches(self, count: int) -> bool:
        if count < self.call:
            return False
        return self.repeat == 0 or count < self.call + self.repeat


@dataclass
class FaultPlan:
    """A set of fault specs plus the record of what fired."""

    specs: Tuple[FaultSpec, ...]
    calls: Dict[str, int] = field(default_factory=dict)
    fired: List[Tuple[str, int, str]] = field(default_factory=list)

    def __init__(self, *specs: FaultSpec) -> None:
        self.specs = tuple(specs)
        self.calls = {}
        self.fired = []

    def record(self, stage: str, payload: Any) -> None:
        """Count one invocation of ``stage``; fire any matching spec."""
        count = self.calls.get(stage, 0) + 1
        self.calls[stage] = count
        for spec in self.specs:
            if spec.stage != stage or not spec.matches(count):
                continue
            self.fired.append((stage, count, spec.action))
            if spec.action == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.action == "corrupt":
                assert spec.mutate is not None
                spec.mutate(payload)
            elif spec.action == "errno":
                raise OSError(spec.err, os.strerror(spec.err))
            else:
                raise spec.exception or FaultInjected(
                    f"injected fault at stage {stage!r} (call {count})"
                )


_active: Optional[FaultPlan] = None


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    global _active
    _active = plan


def get_fault_plan() -> Optional[FaultPlan]:
    return _active


def fault_point(stage: str, payload: Any = None) -> None:
    """Pipeline hook: a no-op unless a fault plan is active."""
    if _active is not None:
        _active.record(stage, payload)


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block."""
    set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(None)
