"""Control plane semantics on top of the differential engine."""

from repro.routing.types import ACCEPT, AdminDistance, FibEntry, RibEntry
from repro.routing.policies import (
    DEFAULT_LOCAL_PREF,
    PERMIT_ALL,
    apply_policy,
    encode_route_map,
    permits,
)
from repro.routing.facts import INPUT_RELATIONS, diff_facts, extract_facts
from repro.routing.model import (
    Relations,
    build_control_plane_program,
    compile_control_plane,
)
from repro.routing.program import ControlPlane, FibDelta
from repro.routing.bgp import LOCAL

__all__ = [
    "ACCEPT",
    "AdminDistance",
    "FibEntry",
    "RibEntry",
    "DEFAULT_LOCAL_PREF",
    "PERMIT_ALL",
    "apply_policy",
    "encode_route_map",
    "permits",
    "INPUT_RELATIONS",
    "diff_facts",
    "extract_facts",
    "Relations",
    "build_control_plane_program",
    "compile_control_plane",
    "ControlPlane",
    "FibDelta",
    "LOCAL",
]
