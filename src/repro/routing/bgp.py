"""eBGP as incremental Datalog.

The model follows the stable-paths view of BGP (one AS per router, sessions
over direct links, the paper's evaluation setup):

- ``bgp_sess(u, u_if, v, v_if)`` — an established session: the link is
  live, both ends configure each other with the correct remote AS.
- ``bgp_cand(u, network, plen, lp, path, recv_if)`` — a usable route at
  ``u``: locally originated (empty AS path, ``recv_if`` = ``@local``) or
  imported from a neighbor's advertised best route, after the neighbor's
  outbound policy and our inbound policy, with AS-path loop prevention.
- ``bgp_best(u, network, plen, lp, path)`` — the advertised best route
  (highest local preference, then shortest AS path, then a deterministic
  tie-break), one per (router, prefix).
- ``bgp_nexthop(u, network, plen, recv_if)`` — every receiving interface
  whose route ties the best on (local pref, path length): equal-cost
  multipath across peers, the multipath-relax behaviour large fabrics use.

Local preference changes (the paper's LP change) are plain replacements of
``bgp_policy_in`` facts; the engine re-derives exactly the affected routes.
A configuration with no stable path assignment (a "bad gadget") makes the
fixpoint oscillate, which the convergence monitor reports (paper §6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.ddlog.dsl import Program, const
from repro.routing.model import Relations
from repro.routing.policies import DEFAULT_LOCAL_PREF, apply_policy, permits
from repro.routing.types import AdminDistance

#: Pseudo-interface marking locally originated routes.
LOCAL = "@local"


def _strictly_contains(anet: int, aplen: int, net: int, plen: int) -> bool:
    """Whether (anet/aplen) strictly contains (net/plen)."""
    if plen <= aplen:
        return False
    from repro.net.addr import IPV4_BITS, IPV4_MAX

    mask = (IPV4_MAX << (IPV4_BITS - aplen)) & IPV4_MAX if aplen else 0
    return (net & mask) == anet


def _preference(record: Tuple) -> Tuple:
    """Sort key of a ``bgp_cand`` record: higher is better."""
    lp, path = record[3], record[4]
    return (lp, -len(path))


def _best_route(group: Tuple, counts: Dict[Tuple, int]) -> Iterable[Tuple]:
    """(u, network, plen) group -> the single advertised best route."""
    best = max(_preference(record) for record in counts)
    winners = sorted(
        (record for record in counts if _preference(record) == best),
        key=lambda record: (record[4], record[5]),
    )
    record = winners[0]
    yield (group[0], group[1], group[2], record[3], record[4])


def _nexthops(group: Tuple, counts: Dict[Tuple, int]) -> Iterable[Tuple]:
    """(u, network, plen) group -> one fact per multipath interface."""
    best = max(_preference(record) for record in counts)
    interfaces = {
        record[5]
        for record in counts
        if _preference(record) == best and record[5] != LOCAL
    }
    for iface in sorted(interfaces):
        yield (group[0], group[1], group[2], iface)


def add_bgp_rules(prog: Program, r: Relations) -> None:
    """Sessions, route candidates, best-route selection, multipath."""
    r.bgp_sess = prog.relation("bgp_sess", ("u", "u_if", "v", "v_if"))
    prog.rule(
        r.bgp_sess,
        [
            r.live_link("u", "uif", "v", "vif"),
            r.bgp_neigh("u", "uif", "ras_u"),
            r.bgp_node("v", "ras_u"),
            r.bgp_neigh("v", "vif", "ras_v"),
            r.bgp_node("u", "ras_v"),
        ],
        head_terms=("u", "uif", "v", "vif"),
    )

    r.bgp_cand = prog.relation(
        "bgp_cand", ("u", "network", "plen", "lp", "path", "recv_if")
    )
    # Locally originated prefixes.
    prog.rule(
        r.bgp_cand,
        [r.bgp_net("u", "net", "plen")],
        head_terms=("u", "net", "plen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
    )

    r.bgp_best = prog.aggregate(
        "bgp_best",
        ("u", "network", "plen", "lp", "path"),
        r.bgp_cand,
        key=lambda record: (record[0], record[1], record[2]),
        agg=_best_route,
    )

    # Import from a neighbor's best route: export policy of the sender,
    # import policy of the receiver, AS-path loop prevention.
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_sess("u", "uif", "v", "vif"),
            r.bgp_best("v", "net", "plen", "lp", "path"),
            r.bgp_node("v", "asv"),
            r.bgp_node("u", "asu"),
            r.bgp_policy_out("v", "vif", "outp"),
            r.bgp_policy_in("u", "uif", "inp"),
        ],
        head_terms=("u", "net", "plen", "lp2", "path2", "uif"),
        lets=[
            ("path2", lambda env: (env["asv"],) + env["path"]),
            (
                "lp2",
                lambda env: apply_policy(
                    env["inp"], env["net"], env["plen"], DEFAULT_LOCAL_PREF
                ),
            ),
        ],
        where=lambda env: (
            env["asu"] not in env["path2"]
            and env["lp2"] is not None
            and permits(env["outp"], env["net"], env["plen"])
        ),
    )

    # Route aggregation: an aggregate-address is originated while some
    # strictly more specific route is selected in the BGP table (the
    # recursive dependency on bgp_best makes this self-maintaining under
    # withdrawals of the last contributor).
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_agg("u", "anet", "aplen"),
            r.bgp_best("u", "net", "plen", "lp", "path"),
        ],
        head_terms=("u", "anet", "aplen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
        where=lambda env: _strictly_contains(
            env["anet"], env["aplen"], env["net"], env["plen"]
        ),
    )

    r.bgp_nexthop = prog.aggregate(
        "bgp_nexthop",
        ("u", "network", "plen", "recv_if"),
        r.bgp_cand,
        key=lambda record: (record[0], record[1], record[2]),
        agg=_nexthops,
    )


def add_bgp_routes(prog: Program, r: Relations) -> None:
    """RIB candidates: one per multipath next hop, metric = AS-path length."""
    prog.rule(
        r.rib_cand,
        [
            r.bgp_nexthop("u", "net", "plen", "uif"),
            r.bgp_best("u", "net", "plen", "lp", "path"),
        ],
        head_terms=(
            "u",
            "net",
            "plen",
            int(AdminDistance.EBGP),
            "metric",
            "uif",
        ),
        lets=[("metric", lambda env: len(env["path"]))],
    )
