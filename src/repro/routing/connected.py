"""Connected routes.

A subnet configured on an enabled interface is reachable at administrative
distance 0; packets for it are delivered locally (the :data:`ACCEPT`
action), which is how forwarding paths terminate at their destination
router.
"""

from __future__ import annotations

from repro.ddlog.dsl import Program, const
from repro.routing.model import Relations
from repro.routing.types import ACCEPT, AdminDistance


def add_connected_routes(prog: Program, r: Relations) -> None:
    prog.rule(
        r.rib_cand,
        [r.connected("n", "net", "plen", "i")],
        head_terms=(
            "n",
            "net",
            "plen",
            int(AdminDistance.CONNECTED),
            0,
            const(ACCEPT),
        ),
    )
