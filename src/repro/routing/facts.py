"""Extraction of engine input facts from a configuration snapshot.

This is the boundary between the configuration world and the Datalog world:
a snapshot maps to a set of facts per input relation, and a configuration
change maps to the *set difference* of the extractions — insertions and
deletions of facts, mirroring the paper's insertions and deletions of
configuration lines.  Extraction is linear in configuration size and cheap
compared to control plane evaluation.

ACL contents are deliberately *not* extracted here: packet filtering rules
are explicit in the configuration, so RealConfig extracts filtering rule
changes directly (paper §4.2); see
:meth:`repro.core.generator.IncrementalDataPlaneGenerator`.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.config.schema import Snapshot
from repro.routing.policies import encode_route_map

Fact = Tuple
FactSet = Set[Fact]

#: Names of every engine input relation.
INPUT_RELATIONS = (
    "link",
    "up",
    "iface_addr",
    "ospf_iface",
    "ospf_redist",
    "bgp_node",
    "bgp_neigh",
    "bgp_net",
    "bgp_agg",
    "bgp_redist",
    "bgp_policy_in",
    "bgp_policy_out",
    "static_rt",
    "static_ip",
)


def extract_facts(snapshot: Snapshot) -> Dict[str, FactSet]:
    """Map a snapshot to its input facts, keyed by relation name."""
    facts: Dict[str, FactSet] = {name: set() for name in INPUT_RELATIONS}

    for link in snapshot.topology.links():
        a, b = link.endpoints()
        facts["link"].add((a.node, a.name, b.node, b.name))
        facts["link"].add((b.node, b.name, a.node, a.name))

    for device in snapshot.iter_devices():
        node = device.hostname
        for iface in device.interfaces.values():
            if iface.is_up():
                facts["up"].add((node, iface.name))
            if iface.prefix is not None:
                facts["iface_addr"].add(
                    (node, iface.name, iface.prefix.network, iface.prefix.length)
                )
            if iface.ospf_enabled and device.ospf is not None:
                facts["ospf_iface"].add((node, iface.name, iface.ospf_cost))

        if device.ospf is not None:
            for redist in device.ospf.redistribute:
                facts["ospf_redist"].add((node, redist.source, redist.metric))

        if device.bgp is not None:
            bgp = device.bgp
            facts["bgp_node"].add((node, bgp.asn))
            for prefix in bgp.networks:
                facts["bgp_net"].add((node, prefix.network, prefix.length))
            for prefix in bgp.aggregates:
                facts["bgp_agg"].add((node, prefix.network, prefix.length))
            for neighbor in bgp.neighbors.values():
                facts["bgp_neigh"].add((node, neighbor.interface, neighbor.remote_as))
                rm_in = (
                    device.route_maps.get(neighbor.route_map_in)
                    if neighbor.route_map_in
                    else None
                )
                rm_out = (
                    device.route_maps.get(neighbor.route_map_out)
                    if neighbor.route_map_out
                    else None
                )
                facts["bgp_policy_in"].add(
                    (node, neighbor.interface, encode_route_map(rm_in))
                )
                facts["bgp_policy_out"].add(
                    (node, neighbor.interface, encode_route_map(rm_out))
                )
            for redist in bgp.redistribute:
                facts["bgp_redist"].add((node, redist.source, redist.metric))

        for route in device.static_routes:
            if route.next_hop_interface is not None:
                facts["static_rt"].add(
                    (
                        node,
                        route.prefix.network,
                        route.prefix.length,
                        route.next_hop_interface,
                        route.admin_distance,
                    )
                )
            else:
                facts["static_ip"].add(
                    (
                        node,
                        route.prefix.network,
                        route.prefix.length,
                        route.next_hop_ip,
                        route.admin_distance,
                    )
                )

    return facts


def diff_facts(
    old: Dict[str, FactSet], new: Dict[str, FactSet]
) -> Dict[str, Tuple[FactSet, FactSet]]:
    """Per relation: (inserted facts, deleted facts)."""
    out: Dict[str, Tuple[FactSet, FactSet]] = {}
    for name in INPUT_RELATIONS:
        old_set = old.get(name, set())
        new_set = new.get(name, set())
        inserted = new_set - old_set
        deleted = old_set - new_set
        if inserted or deleted:
            out[name] = (inserted, deleted)
    return out
