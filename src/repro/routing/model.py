"""The control-plane-as-Datalog model.

This module assembles the full Datalog program RealConfig evaluates: input
relations extracted from configurations, per-protocol derivation rules
(:mod:`repro.routing.ospf`, :mod:`repro.routing.bgp`, ...), and the final
RIB merge producing the ``fib`` relation (:mod:`repro.routing.rib`).

Input relations (all facts are plain tuples):

====================  =======================================================
``link``              ``(u, u_if, v, v_if)`` physical adjacency, both
                      directions (from the topology; static across epochs)
``up``                ``(node, iface)`` administratively enabled interfaces
``iface_addr``        ``(node, iface, network, plen)`` connected subnets
``ospf_iface``        ``(node, iface, cost)`` OSPF-enabled interfaces
``ospf_redist``       ``(node, source, metric)``
``bgp_node``          ``(node, asn)``
``bgp_neigh``         ``(node, iface, remote_as)``
``bgp_net``           ``(node, network, plen)`` originated prefixes
``bgp_redist``        ``(node, source, metric)``
``bgp_policy_in``     ``(node, iface, policy)`` encoded inbound route map
                      (always present for a configured neighbor; ``()`` is
                      permit-all)
``bgp_policy_out``    ``(node, iface, policy)``
``static_rt``         ``(node, network, plen, out_iface, admin_distance)``
====================  =======================================================

The output relation is ``fib(node, network, plen, out_iface)`` — one fact
per (destination, next hop), i.e. ECMP produces multiple facts.
"""

from __future__ import annotations

from typing import Optional

from repro.ddlog.convergence import ConvergenceMonitor
from repro.ddlog.dsl import CompiledProgram, Program, Relation


class Relations:
    """Namespace of the control plane program's relations."""

    # inputs
    link: Relation
    up: Relation
    iface_addr: Relation
    ospf_iface: Relation
    ospf_redist: Relation
    bgp_node: Relation
    bgp_neigh: Relation
    bgp_net: Relation
    bgp_agg: Relation
    bgp_redist: Relation
    bgp_policy_in: Relation
    bgp_policy_out: Relation
    static_rt: Relation
    static_ip: Relation
    # derived, shared
    live_link: Relation
    connected: Relation
    rib_cand: Relation
    fib: Relation
    # OSPF
    ospf_link: Relation
    ospf_cand: Relation
    ospf_dist: Relation
    ospf_nexthop: Relation
    ospf_dest: Relation
    ospf_ext: Relation
    # BGP
    bgp_sess: Relation
    bgp_cand: Relation
    bgp_best: Relation
    bgp_nexthop: Relation


def declare_inputs(prog: Program) -> Relations:
    r = Relations()
    r.link = prog.input("link", ("u", "u_if", "v", "v_if"))
    r.up = prog.input("up", ("node", "iface"))
    r.iface_addr = prog.input("iface_addr", ("node", "iface", "network", "plen"))
    r.ospf_iface = prog.input("ospf_iface", ("node", "iface", "cost"))
    r.ospf_redist = prog.input("ospf_redist", ("node", "source", "metric"))
    r.bgp_node = prog.input("bgp_node", ("node", "asn"))
    r.bgp_neigh = prog.input("bgp_neigh", ("node", "iface", "remote_as"))
    r.bgp_net = prog.input("bgp_net", ("node", "network", "plen"))
    r.bgp_agg = prog.input("bgp_agg", ("node", "network", "plen"))
    r.bgp_redist = prog.input("bgp_redist", ("node", "source", "metric"))
    r.bgp_policy_in = prog.input("bgp_policy_in", ("node", "iface", "policy"))
    r.bgp_policy_out = prog.input("bgp_policy_out", ("node", "iface", "policy"))
    r.static_rt = prog.input(
        "static_rt", ("node", "network", "plen", "out_iface", "ad")
    )
    r.static_ip = prog.input(
        "static_ip", ("node", "network", "plen", "next_hop", "ad")
    )
    return r


def add_shared_rules(prog: Program, r: Relations) -> None:
    """Rules every protocol builds on: live links and connected subnets."""
    r.live_link = prog.relation("live_link", ("u", "u_if", "v", "v_if"))
    prog.rule(
        r.live_link,
        [r.link("u", "uif", "v", "vif"), r.up("u", "uif"), r.up("v", "vif")],
        head_terms=("u", "uif", "v", "vif"),
    )
    r.connected = prog.relation("connected", ("node", "network", "plen", "iface"))
    prog.rule(
        r.connected,
        [r.iface_addr("n", "i", "net", "plen"), r.up("n", "i")],
        head_terms=("n", "net", "plen", "i"),
    )


def build_control_plane_program(
    name: str = "control-plane",
) -> "tuple[Program, Relations]":
    """Declare the full program (inputs + all protocol rules + RIB merge)."""
    from repro.routing import bgp, connected, ospf, redistribution, rib, static_routes

    prog = Program(name)
    relations = declare_inputs(prog)
    add_shared_rules(prog, relations)
    ospf.add_ospf_rules(prog, relations)
    bgp.add_bgp_rules(prog, relations)
    rib.declare_rib(prog, relations)
    connected.add_connected_routes(prog, relations)
    static_routes.add_static_routes(prog, relations)
    ospf.add_ospf_routes(prog, relations)
    bgp.add_bgp_routes(prog, relations)
    redistribution.add_redistribution_rules(prog, relations)
    rib.add_fib_selection(prog, relations)
    prog.probe(relations.fib)
    return prog, relations


def compile_control_plane(
    monitor: Optional[ConvergenceMonitor] = None,
) -> "tuple[CompiledProgram, Relations]":
    prog, relations = build_control_plane_program()
    return prog.compile(monitor=monitor), relations
