"""OSPF as incremental Datalog.

Link-state routing reduces to all-pairs shortest paths over the OSPF
adjacency graph.  Expressed declaratively:

- ``ospf_link(u, u_if, v, v_if, cost)`` — a live link whose two ends both
  run OSPF; ``cost`` is the *sending* side's interface cost.
- ``ospf_cand(u, v, cost, u_if)`` — a candidate distance from router ``u``
  to router ``v`` leaving through ``u_if``: either a direct adjacency or one
  hop through a neighbor plus the neighbor's best distance (the recursive
  rule).
- ``ospf_dist(u, v, cost)`` — the shortest distance (min-aggregation; this
  is the relation the recursion closes over).
- ``ospf_nexthop(u, v, u_if)`` — *every* interface achieving the minimum
  (equal-cost multipath).
- ``ospf_dest(v, network, plen, metric)`` — prefixes router ``v`` injects
  (connected subnets of OSPF-enabled interfaces).

The incremental engine gives the protocol's re-convergence for free: an LC
change (paper §5) perturbs one ``ospf_link`` fact and only the affected
``ospf_dist`` groups are recomputed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.ddlog.dsl import Program
from repro.routing.model import Relations
from repro.routing.types import AdminDistance


def _min_distance(group: Tuple, counts: Dict[Tuple, int]) -> Iterable[Tuple]:
    """(u, v) group of ``ospf_cand`` records -> the single min-cost fact."""
    best = min(record[2] for record in counts)
    yield (group[0], group[1], best)


def _argmin_interfaces(group: Tuple, counts: Dict[Tuple, int]) -> Iterable[Tuple]:
    """(u, v) group of ``ospf_cand`` records -> one fact per ECMP interface."""
    best = min(record[2] for record in counts)
    interfaces = {record[3] for record in counts if record[2] == best}
    for iface in sorted(interfaces):
        yield (group[0], group[1], iface)


def add_ospf_rules(prog: Program, r: Relations) -> None:
    """Adjacencies, shortest distances, and ECMP next hops."""
    r.ospf_link = prog.relation("ospf_link", ("u", "u_if", "v", "v_if", "cost"))
    prog.rule(
        r.ospf_link,
        [
            r.live_link("u", "uif", "v", "vif"),
            r.ospf_iface("u", "uif", "c"),
            r.ospf_iface("v", "vif", "c2"),
        ],
        head_terms=("u", "uif", "v", "vif", "c"),
    )

    r.ospf_cand = prog.relation("ospf_cand", ("u", "v", "cost", "u_if"))
    # Direct adjacency.
    prog.rule(
        r.ospf_cand,
        [r.ospf_link("u", "uif", "v", "vif", "c")],
        head_terms=("u", "v", "c", "uif"),
    )

    r.ospf_dist = prog.aggregate(
        "ospf_dist",
        ("u", "v", "cost"),
        r.ospf_cand,
        key=lambda record: (record[0], record[1]),
        agg=_min_distance,
    )

    # One hop through a neighbor plus the neighbor's best distance.
    prog.rule(
        r.ospf_cand,
        [
            r.ospf_link("u", "uif", "w", "wif", "c1"),
            r.ospf_dist("w", "v", "c2"),
        ],
        head_terms=("u", "v", "cost", "uif"),
        lets=[("cost", lambda env: env["c1"] + env["c2"])],
        where=lambda env: env["u"] != env["v"],
    )

    r.ospf_nexthop = prog.aggregate(
        "ospf_nexthop",
        ("u", "v", "u_if"),
        r.ospf_cand,
        key=lambda record: (record[0], record[1]),
        agg=_argmin_interfaces,
    )

    # Prefixes each router injects into OSPF (stub networks).
    r.ospf_dest = prog.relation("ospf_dest", ("v", "network", "plen", "metric"))
    prog.rule(
        r.ospf_dest,
        [
            r.iface_addr("v", "i", "net", "plen"),
            r.ospf_iface("v", "i", "c"),
            r.up("v", "i"),
        ],
        head_terms=("v", "net", "plen", 0),
    )


def add_ospf_routes(prog: Program, r: Relations) -> None:
    """RIB candidates: shortest path to the router injecting the prefix."""
    prog.rule(
        r.rib_cand,
        [
            r.ospf_nexthop("u", "v", "uif"),
            r.ospf_dist("u", "v", "c"),
            r.ospf_dest("v", "net", "plen", "m"),
        ],
        head_terms=(
            "u",
            "net",
            "plen",
            int(AdminDistance.OSPF),
            "metric",
            "uif",
        ),
        lets=[("metric", lambda env: env["c"] + env["m"])],
    )
