"""Route-map evaluation for the BGP model.

Route maps are carried through the Datalog model as hashable *clause
tuples*, so that editing a route map is an ordinary fact replacement and the
engine can incrementally recompute exactly the routes whose import/export
decision changes (the paper's LP change is implemented this way).

Encoding: a policy is a tuple of clauses; each clause is

    (seq, action, match_network, match_plen, set_local_pref, set_metric)

with ``match_network``/``match_plen`` of ``None`` matching every route.  The
empty tuple is the *default policy*: permit everything unchanged (no route
map bound).  A non-empty policy uses first-match semantics with an implicit
deny at the end, mirroring vendor behaviour.

Limitation: ``set_metric`` is parsed, preserved, and round-tripped by the
configuration dialect, but the BGP model does not implement MED-based
tie-breaking (best-path selection uses local preference then AS-path
length, the attributes the paper's evaluation exercises), so the attribute
does not influence route selection.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.addr import Prefix
from repro.config.schema import RouteMap

#: One encoded clause; see module docstring.
Clause = Tuple[int, str, Optional[int], Optional[int], Optional[int], Optional[int]]

#: An encoded policy: () is permit-all.
Policy = Tuple[Clause, ...]

PERMIT_ALL: Policy = ()

#: Default BGP local preference.
DEFAULT_LOCAL_PREF = 100


def encode_route_map(route_map: Optional[RouteMap]) -> Policy:
    """Encode a configured route map (or ``None``) as a policy tuple."""
    if route_map is None:
        return PERMIT_ALL
    clauses = []
    for clause in route_map.sorted_clauses():
        if clause.match_prefix is None:
            match_network, match_plen = None, None
        else:
            match_network = clause.match_prefix.network
            match_plen = clause.match_prefix.length
        clauses.append(
            (
                clause.seq,
                clause.action,
                match_network,
                match_plen,
                clause.set_local_pref,
                clause.set_metric,
            )
        )
    return tuple(clauses)


def _matches(clause: Clause, network: int, plen: int) -> bool:
    match_network, match_plen = clause[2], clause[3]
    if match_network is None or match_plen is None:
        return True
    prefix = Prefix(match_network, match_plen)
    return prefix.contains(Prefix(network, plen))


def apply_policy(
    policy: Policy, network: int, plen: int, local_pref: int
) -> Optional[int]:
    """Run a route through a policy.

    Returns the (possibly updated) local preference when the route is
    permitted, or ``None`` when it is denied.
    """
    if policy == PERMIT_ALL:
        return local_pref
    for clause in policy:
        if _matches(clause, network, plen):
            if clause[1] == "deny":
                return None
            set_lp = clause[4]
            return set_lp if set_lp is not None else local_pref
    return None  # implicit deny


def permits(policy: Policy, network: int, plen: int) -> bool:
    """Whether the policy permits a route at all (export-side check)."""
    return apply_policy(policy, network, plen, DEFAULT_LOCAL_PREF) is not None
