"""The incremental control plane: snapshot in, FIB deltas out.

:class:`ControlPlane` owns a compiled control-plane Datalog program and the
fact set of the currently loaded snapshot.  ``update_to(new_snapshot)``
diffs fact extractions, feeds the insertions/deletions to the engine, runs
one epoch, and exposes the resulting forwarding changes as typed
:class:`~repro.routing.types.FibEntry` updates — the paper's "data plane
changes" handed to the model updater.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.schema import Snapshot
from repro.ddlog.convergence import ConvergenceMonitor
from repro.ddlog.engine import EpochStats
from repro.routing.facts import FactSet, diff_facts, extract_facts
from repro.routing.model import compile_control_plane
from repro.routing.types import FibEntry, fib_entry_from_fact


@dataclass
class FibDelta:
    """Forwarding rule changes produced by one control plane epoch."""

    inserted: List[FibEntry] = field(default_factory=list)
    deleted: List[FibEntry] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def size(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def summary(self) -> str:
        return f"+{len(self.inserted)}/-{len(self.deleted)} forwarding rules"


class ControlPlane:
    """Incremental control plane evaluation over configuration snapshots."""

    def __init__(self, monitor: Optional[ConvergenceMonitor] = None) -> None:
        self.compiled, self.relations = compile_control_plane(monitor)
        self._facts: Dict[str, FactSet] = {}
        self._loaded = False
        self.last_stats: Optional[EpochStats] = None
        self.last_fact_changes = 0

    def update_to(self, snapshot: Snapshot) -> FibDelta:
        """Move the engine to ``snapshot`` (initial load or incremental)."""
        new_facts = extract_facts(snapshot)
        changes = diff_facts(self._facts, new_facts)
        fact_count = 0
        for relation, (inserted, deleted) in changes.items():
            for fact in inserted:
                self.compiled.insert(relation, fact)
            for fact in deleted:
                self.compiled.remove(relation, fact)
            fact_count += len(inserted) + len(deleted)
        self._facts = new_facts
        self.last_fact_changes = fact_count
        self.last_stats = self.compiled.commit()
        self._loaded = True
        return self.take_fib_delta()

    def load(self, snapshot: Snapshot) -> FibDelta:
        """Alias of :meth:`update_to` for the initial snapshot."""
        return self.update_to(snapshot)

    def take_fib_delta(self) -> FibDelta:
        """Drain the forwarding changes of the last epoch(s)."""
        delta = FibDelta()
        for fact, weight in self.compiled.take_delta("fib").items():
            entry = fib_entry_from_fact(fact)
            if weight > 0:
                delta.inserted.extend([entry] * weight)
            else:
                delta.deleted.extend([entry] * (-weight))
        return delta

    def fib(self) -> List[FibEntry]:
        """The complete current FIB."""
        entries = []
        for fact, weight in self.compiled.collection("fib").items():
            if weight > 0:
                entries.append(fib_entry_from_fact(fact))
        entries.sort()
        return entries

    def state_size(self) -> int:
        return self.compiled.engine.state_size()

    # -- state capture / restore ---------------------------------------------

    def capture_state(self) -> Dict:
        """Picklable snapshot of the control plane's incremental state.
        The compiled program itself is deterministic (rebuilt identically
        by ``compile_control_plane``), so only fact sets and the engine's
        operator histories need to travel."""
        return {
            "facts": {rel: set(facts) for rel, facts in self._facts.items()},
            "loaded": self._loaded,
            "last_fact_changes": self.last_fact_changes,
            "last_stats": self.last_stats,
            "engine": self.compiled.engine.capture_state(),
        }

    def restore_state(self, state: Dict) -> None:
        self._facts = {
            rel: set(facts) for rel, facts in state["facts"].items()
        }
        self._loaded = state["loaded"]
        self.last_fact_changes = state["last_fact_changes"]
        self.last_stats = state["last_stats"]
        self.compiled.engine.restore_state(state["engine"])
