"""Route redistribution between protocols.

The paper lists route redistribution among the configuration features
RealConfig models.  Redistribution turns routes known to one process into
originations of another:

- into OSPF: redistributed prefixes become *external* destinations
  (``ospf_ext``), advertised by the redistributing router and reached via
  the shortest path to it, at the external administrative distance;
- into BGP: redistributed prefixes become locally originated ``bgp_cand``
  facts (empty AS path), which then propagate through normal BGP export.

Sources supported: ``static``, ``connected``, ``bgp`` (into OSPF) and
``static``, ``connected``, ``ospf`` (into BGP).
"""

from __future__ import annotations

from repro.ddlog.dsl import Program, const
from repro.routing.model import Relations
from repro.routing.policies import DEFAULT_LOCAL_PREF
from repro.routing.static_routes import _covers
from repro.routing.types import AdminDistance

from repro.routing.bgp import LOCAL


def add_redistribution_rules(prog: Program, r: Relations) -> None:
    _add_into_ospf(prog, r)
    _add_into_bgp(prog, r)


def _add_into_ospf(prog: Program, r: Relations) -> None:
    r.ospf_ext = prog.relation("ospf_ext", ("v", "network", "plen", "metric"))
    prog.rule(
        r.ospf_ext,
        [
            r.ospf_redist("v", const("static"), "m"),
            r.static_rt("v", "net", "plen", "oif", "ad"),
            r.up("v", "oif"),
        ],
        head_terms=("v", "net", "plen", "m"),
    )
    prog.rule(
        r.ospf_ext,
        [
            r.ospf_redist("v", const("static"), "m"),
            r.static_ip("v", "net", "plen", "nh", "ad"),
            r.connected("v", "cnet", "cplen", "i"),
        ],
        head_terms=("v", "net", "plen", "m"),
        where=lambda env: _covers(env["cnet"], env["cplen"], env["nh"]),
    )
    prog.rule(
        r.ospf_ext,
        [
            r.ospf_redist("v", const("connected"), "m"),
            r.connected("v", "net", "plen", "i"),
        ],
        head_terms=("v", "net", "plen", "m"),
    )
    prog.rule(
        r.ospf_ext,
        [
            r.ospf_redist("v", const("bgp"), "m"),
            r.bgp_best("v", "net", "plen", "lp", "path"),
        ],
        head_terms=("v", "net", "plen", "m"),
    )
    # External destinations are reached via the shortest path to the
    # advertising router, at the external administrative distance.
    prog.rule(
        r.rib_cand,
        [
            r.ospf_nexthop("u", "v", "uif"),
            r.ospf_dist("u", "v", "c"),
            r.ospf_ext("v", "net", "plen", "m"),
        ],
        head_terms=(
            "u",
            "net",
            "plen",
            int(AdminDistance.OSPF_EXTERNAL),
            "metric",
            "uif",
        ),
        lets=[("metric", lambda env: env["c"] + env["m"])],
    )


def _add_into_bgp(prog: Program, r: Relations) -> None:
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_redist("u", const("static"), "m"),
            r.static_rt("u", "net", "plen", "oif", "ad"),
            r.up("u", "oif"),
        ],
        head_terms=("u", "net", "plen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
    )
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_redist("u", const("static"), "m"),
            r.static_ip("u", "net", "plen", "nh", "ad"),
            r.connected("u", "cnet", "cplen", "i"),
        ],
        head_terms=("u", "net", "plen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
        where=lambda env: _covers(env["cnet"], env["cplen"], env["nh"]),
    )
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_redist("u", const("connected"), "m"),
            r.connected("u", "net", "plen", "i"),
        ],
        head_terms=("u", "net", "plen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
    )
    prog.rule(
        r.bgp_cand,
        [
            r.bgp_redist("u", const("ospf"), "m"),
            r.ospf_dist("u", "v", "c"),
            r.ospf_dest("v", "net", "plen", "dm"),
        ],
        head_terms=("u", "net", "plen", DEFAULT_LOCAL_PREF, (), const(LOCAL)),
    )
