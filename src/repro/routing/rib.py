"""RIB merge and FIB selection.

Every protocol contributes ``rib_cand(node, network, plen, ad, metric,
out_iface)`` facts; the FIB keeps, per (node, prefix), the candidates with
the lowest (administrative distance, metric) — all of them, to preserve
equal-cost multipath.  The resulting ``fib(node, network, plen, out_iface)``
relation is the program's probed output: its per-epoch delta is the batch of
forwarding rule updates handed to the data plane model updater.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.ddlog.dsl import Program
from repro.routing.model import Relations


def declare_rib(prog: Program, r: Relations) -> None:
    r.rib_cand = prog.relation(
        "rib_cand", ("node", "network", "plen", "ad", "metric", "out_iface")
    )


def _select_best(group: Tuple, counts: Dict[Tuple, int]) -> Iterable[Tuple]:
    """(node, network, plen) group -> one fact per best next hop."""
    best = min((record[3], record[4]) for record in counts)
    interfaces = {
        record[5] for record in counts if (record[3], record[4]) == best
    }
    for iface in sorted(interfaces):
        yield (group[0], group[1], group[2], iface)


def add_fib_selection(prog: Program, r: Relations) -> None:
    r.fib = prog.aggregate(
        "fib",
        ("node", "network", "plen", "out_iface"),
        r.rib_cand,
        key=lambda record: (record[0], record[1], record[2]),
        agg=_select_best,
    )
