"""Static routes.

Two next-hop forms, as in vendor configuration:

- via interface: usable while the interface is administratively up;
- via next-hop IP: resolved against the router's connected subnets — the
  route is active exactly when some up interface's subnet covers the
  next-hop address, and it forwards out that interface.

The administrative distance comes from configuration (default 1, preferred
over any dynamic protocol).
"""

from __future__ import annotations

from repro.net.addr import IPV4_BITS, IPV4_MAX
from repro.ddlog.dsl import Program
from repro.routing.model import Relations


def _covers(network: int, plen: int, address: int) -> bool:
    if plen == 0:
        return True
    mask = (IPV4_MAX << (IPV4_BITS - plen)) & IPV4_MAX
    return (address & mask) == network


def add_static_routes(prog: Program, r: Relations) -> None:
    prog.rule(
        r.rib_cand,
        [
            r.static_rt("n", "net", "plen", "oif", "ad"),
            r.up("n", "oif"),
        ],
        head_terms=("n", "net", "plen", "ad", 0, "oif"),
    )
    # Recursive (IP next hop) form: resolve through connected subnets.
    prog.rule(
        r.rib_cand,
        [
            r.static_ip("n", "net", "plen", "nh", "ad"),
            r.connected("n", "cnet", "cplen", "i"),
        ],
        head_terms=("n", "net", "plen", "ad", 0, "i"),
        where=lambda env: _covers(env["cnet"], env["cplen"], env["nh"]),
    )
