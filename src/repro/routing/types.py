"""Shared routing-layer types.

These are the value types flowing between the control plane model and the
data plane: RIB/FIB entries and administrative distances.  The Datalog
relations use plain tuples internally; these classes are the typed public
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

from repro.net.addr import Prefix


class AdminDistance(IntEnum):
    """Route preference between protocols (lower wins), Cisco-style."""

    CONNECTED = 0
    STATIC = 1
    EBGP = 20
    OSPF = 110
    OSPF_EXTERNAL = 115


#: Special "interface" of FIB entries whose action is local delivery.
ACCEPT = "@accept"


@dataclass(frozen=True, order=True)
class FibEntry:
    """One forwarding entry: on ``node``, packets to ``prefix`` leave via
    ``out_interface`` (or are delivered locally when it is :data:`ACCEPT`).

    A destination with multiple equal-cost next hops has one entry per
    next hop — the granularity at which the paper counts rule changes
    (Table 3).
    """

    node: str
    prefix: Prefix
    out_interface: str

    def is_accept(self) -> bool:
        return self.out_interface == ACCEPT

    def __str__(self) -> str:
        return f"{self.node}: {self.prefix} -> {self.out_interface}"


@dataclass(frozen=True, order=True)
class RibEntry:
    """One candidate route before best-route selection."""

    node: str
    prefix: Prefix
    admin_distance: int
    metric: int
    out_interface: str
    protocol: str

    def __str__(self) -> str:
        return (
            f"{self.node}: {self.prefix} [{self.admin_distance}/{self.metric}] "
            f"via {self.out_interface} ({self.protocol})"
        )


def fib_entry_from_fact(fact: Tuple) -> FibEntry:
    """Convert a ``fib(node, network, plen, out_if)`` engine fact."""
    node, network, plen, out_interface = fact
    return FibEntry(node, Prefix(network, plen), out_interface)
