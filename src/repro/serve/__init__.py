"""repro.serve — the fault-tolerant change-stream serving layer.

See :mod:`repro.serve.daemon` for the serving loop,
:mod:`repro.serve.stream` for the batch stream format,
:mod:`repro.serve.policy` for deadlines/retries,
:mod:`repro.serve.breaker` for the incremental/rebuild circuit breaker,
and :mod:`repro.serve.deadletter` for the poison-batch quarantine.
"""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.daemon import (
    ServeDaemon,
    ServeOptions,
    ServeStats,
    resume_cursor_from,
)
from repro.serve.deadletter import DeadLetterBox
from repro.serve.engine import BatchEngine
from repro.serve.policy import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    classify_failure,
)
from repro.serve.stream import (
    ChangeBatch,
    StreamError,
    decode_batch,
    decode_change,
    encode_batch,
    encode_change,
    fib_fingerprint,
    read_stream,
    watch_stream,
    write_batch_file,
    write_stream,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "ServeDaemon",
    "ServeOptions",
    "ServeStats",
    "resume_cursor_from",
    "BatchEngine",
    "DeadLetterBox",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "classify_failure",
    "ChangeBatch",
    "StreamError",
    "decode_batch",
    "decode_change",
    "encode_batch",
    "encode_change",
    "fib_fingerprint",
    "read_stream",
    "watch_stream",
    "write_batch_file",
    "write_stream",
]
