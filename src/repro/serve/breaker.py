"""The incremental/full-rebuild circuit breaker.

Incremental verification is the fast path, but a systematic problem (a
drifting engine, a fault storm, a pathological change pattern) can make it
fail batch after batch.  Plankton-style from-scratch checking is the
robust fallback: rebuild the verifier per batch and keep serving, slower
but correct.  The breaker is the standard three-state machine deciding
which mode each batch uses:

- **closed** — serve incrementally; ``failure_threshold`` *consecutive*
  incremental failures open it;
- **open** — serve in full-rebuild mode; after ``cooldown_seconds`` the
  next batch probes incremental mode (half-open);
- **half-open** — one probe in flight: success closes the breaker,
  failure re-opens it and restarts the cooldown.

The clock is injectable so tests drive the cooldown deterministically.

Transitions are guarded by a re-entrant lock: in the multi-tenant
service a half-open probe outcome and a concurrent quarantine (e.g. the
watchdog thread, or an introspection snapshot racing the serve loop) may
report against the same breaker, and the state machine must never
observe a torn transition (a probe failure and a quarantine failure
arriving together must produce exactly one re-open, not two).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding (telemetry names.SERVE_BREAKER_STATE).
STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Tracks consecutive incremental failures and gates the serving mode."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.opens = 0

    # -- mode selection ------------------------------------------------------

    def allows_incremental(self) -> bool:
        """Decide the mode for the next batch.  Transitions open ->
        half-open when the cooldown has elapsed (the probe)."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self._clock() - self.opened_at >= self.cooldown_seconds:
                    self.state = HALF_OPEN
                    return True
                return False
            # Half-open: a probe is already the next batch.
            return True

    # -- outcome reporting ---------------------------------------------------

    def record_success(self) -> None:
        """An incremental batch committed: close from any state."""
        with self._lock:
            self.consecutive_failures = 0
            self.state = CLOSED

    def record_failure(self) -> None:
        """An incremental batch failed (after its retry budget)."""
        with self._lock:
            self.consecutive_failures += 1
            if self.state == HALF_OPEN:
                self._open()
            elif (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        # Caller holds the lock (record_failure); kept private so every
        # transition into OPEN is serialized.
        self.state = OPEN
        self.opened_at = self._clock()
        self.opens += 1

    def snapshot(self) -> dict:
        """A consistent (state, failures, opens) view — what health
        payloads and checkpoint extras should store, instead of reading
        the three fields racily one by one."""
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opens": self.opens,
            }

    def gauge_value(self) -> int:
        return STATE_GAUGE[self.state]

    def describe(self) -> str:
        with self._lock:
            if self.state == OPEN:
                remaining = max(
                    0.0,
                    self.cooldown_seconds - (self._clock() - self.opened_at),
                )
                return f"open (probe in {remaining:.1f}s)"
            if self.state == HALF_OPEN:
                return "half-open (probing)"
            return (
                f"closed ({self.consecutive_failures} consecutive failure(s))"
            )
