"""The change-stream serving loop.

``ServeDaemon`` keeps a :class:`~repro.core.realconfig.RealConfig` alive
across an arbitrarily long stream of change batches:

- a **bounded prefetch queue** applies backpressure to the stream source
  (never more than ``queue_capacity`` batches in memory);
- each batch runs under a wall-clock **deadline** (cooperative abort at
  the verifier's stage boundaries) and a **retry policy** (exponential
  backoff + jitter for transient failures);
- a batch that exhausts its budget is **quarantined** to the dead-letter
  directory — payload, exception, pre-batch state fingerprint — and the
  stream continues;
- a **circuit breaker** counts consecutive incremental failures and
  degrades to full-rebuild mode (from-scratch verification per batch),
  probing incremental mode again after a cooldown;
- a **watchdog** audits the incremental state against a from-scratch
  recomputation every N batches, and a ``--health-file`` JSON heartbeat
  reports liveness/readiness;
- **graceful shutdown** (SIGINT/SIGTERM or :meth:`request_stop`) finishes
  the in-flight batch, then writes a checkpoint whose ``extras`` carry the
  stream cursor, so a later daemon resumes with no batch lost or applied
  twice.

Every verification is transactional (PR 3), which is what makes retries
and quarantine safe: a failed attempt always leaves the verifier at the
pre-batch state.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Union

from repro.config.changes import apply_changes
from repro.core.realconfig import LintGateError, RealConfig
from repro.resilience.checkpoint import read_checkpoint_extras, write_checkpoint
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.deadletter import DeadLetterBox
from repro.serve.policy import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    classify_failure,
)
from repro.serve.stream import ChangeBatch, StreamError, fib_fingerprint
from repro.telemetry import get_metrics, names, span


@dataclass
class ServeOptions:
    """Knobs of the serving loop (all come straight from the CLI)."""

    deadline_seconds: float = 0.0  # 0 = no deadline
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    retry_seed: int = 0
    breaker_threshold: int = 3  # 0 = breaker disabled
    breaker_cooldown: float = 5.0
    queue_capacity: int = 16
    poll_interval: float = 0.5  # sleep when a watch source is idle
    audit_every: int = 0  # watchdog self-check cadence (batches)
    checkpoint_every: int = 0  # periodic checkpoint cadence (batches)
    health_file: Optional[Union[str, Path]] = None
    checkpoint_file: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


@dataclass
class ServeStats:
    """What happened over one daemon run."""

    batches_seen: int = 0
    batches_ok: int = 0
    retries: int = 0
    quarantined: int = 0
    deadline_exceeded: int = 0
    rebuild_batches: int = 0
    breaker_opens: int = 0
    audits: int = 0
    audit_rebuilds: int = 0
    new_violations: int = 0
    lint_rejected: int = 0
    lint_new_errors: int = 0
    max_queue_depth: int = 0
    skipped_on_resume: int = 0
    stopped_early: bool = False
    quarantined_ids: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.quarantined == 0 and self.new_violations == 0

    def summary(self) -> str:
        parts = [
            f"{self.batches_ok}/{self.batches_seen} batches ok",
            f"{self.retries} retries",
            f"{self.quarantined} quarantined",
        ]
        if self.rebuild_batches:
            parts.append(f"{self.rebuild_batches} in rebuild mode")
        if self.breaker_opens:
            parts.append(f"breaker opened {self.breaker_opens}x")
        if self.deadline_exceeded:
            parts.append(f"{self.deadline_exceeded} deadline aborts")
        if self.new_violations:
            parts.append(f"{self.new_violations} new policy violations")
        if self.lint_rejected:
            parts.append(f"{self.lint_rejected} lint-rejected")
        if self.lint_new_errors:
            parts.append(f"{self.lint_new_errors} new lint errors")
        if self.skipped_on_resume:
            parts.append(f"resumed past {self.skipped_on_resume}")
        if self.stopped_early:
            parts.append("stopped early")
        return ", ".join(parts)


class ServeDaemon:
    """Drive a verifier over a stream of change batches, fault-tolerantly.

    ``source`` yields :class:`ChangeBatch` objects; it may also yield
    ``None`` to signal "nothing available right now" (the watch source
    does), in which case the daemon sleeps ``poll_interval`` and polls
    again.  ``clock``/``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        verifier: RealConfig,
        source: Iterable[Optional[ChangeBatch]],
        dead_letter: DeadLetterBox,
        options: Optional[ServeOptions] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        resume_cursor: int = 0,
        on_batch_done: Optional[
            Callable[["ServeDaemon", ChangeBatch, bool], None]
        ] = None,
    ) -> None:
        self.verifier = verifier
        self.options = options or ServeOptions()
        self.dead_letter = dead_letter
        self.stats = ServeStats()
        self._source: Iterator[Optional[ChangeBatch]] = iter(source)
        self._queue: Deque[ChangeBatch] = deque()
        self._exhausted = False
        self._idle = False
        self._clock = clock
        self._sleep = sleep
        self._stop_requested = False
        self._installed_handlers: List = []
        self._on_batch_done = on_batch_done
        self.retry_policy = RetryPolicy(
            max_retries=self.options.max_retries,
            backoff_base=self.options.backoff_base,
            backoff_cap=self.options.backoff_cap,
            jitter=self.options.jitter,
            seed=self.options.retry_seed,
        )
        self.breaker: Optional[CircuitBreaker] = None
        if self.options.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=self.options.breaker_threshold,
                cooldown_seconds=self.options.breaker_cooldown,
                clock=clock,
            )
        #: Stream entries fully disposed of (committed or quarantined) —
        #: the resume cursor persisted in checkpoint extras.
        self.cursor = resume_cursor
        self._to_skip = resume_cursor
        self._batches_since_audit = 0
        self._batches_since_checkpoint = 0
        # Warn-mode lint accounting: error fingerprints already present at
        # daemon start (or at the last rebuild) — anything beyond these is
        # a *new* lint error introduced by the stream.
        self._lint_errors_seen: Optional[set] = None
        baseline = verifier.lint_result
        if baseline is not None:
            self._lint_errors_seen = {
                diag.fingerprint() for diag in baseline.errors()
            }

    # -- control -------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight batch, checkpoint, and exit the loop."""
        self._stop_requested = True

    @property
    def stopping(self) -> bool:
        return self._stop_requested

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM to :meth:`request_stop` (graceful drain)."""
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(
                signum, lambda _signum, _frame: self.request_stop()
            )
            self._installed_handlers.append((signum, previous))

    def _restore_signal_handlers(self) -> None:
        while self._installed_handlers:
            signum, previous = self._installed_handlers.pop()
            signal.signal(signum, previous)

    # -- the queue ------------------------------------------------------------

    def _refill(self) -> None:
        """Pull from the source up to capacity — the backpressure bound:
        the daemon never materializes more than ``queue_capacity`` batches
        ahead of the verifier."""
        self._idle = False
        while (
            not self._exhausted
            and len(self._queue) < self.options.queue_capacity
        ):
            try:
                batch = next(self._source)
            except StopIteration:
                self._exhausted = True
                break
            if batch is None:  # watch source: nothing available right now
                self._idle = True
                break
            if self._to_skip > 0:
                self._to_skip -= 1
                self.stats.skipped_on_resume += 1
                continue
            self._queue.append(batch)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(names.SERVE_QUEUE_DEPTH).set(len(self._queue))
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )

    # -- the loop -------------------------------------------------------------

    def run(self, handle_signals: bool = False) -> ServeStats:
        if handle_signals:
            self.install_signal_handlers()
        self._write_health("serving")
        self._set_gauge(names.SERVE_HEALTHY, 1)
        try:
            while not self._stop_requested:
                if not self._queue:
                    self._refill()
                if not self._queue:
                    if self._exhausted:
                        break
                    # Watch source with nothing to do: heartbeat and wait.
                    self._write_health("serving")
                    self._sleep(self.options.poll_interval)
                    continue
                batch = self._queue.popleft()
                ok = self._process_batch(batch)
                self.cursor += 1
                self._after_batch(batch, ok)
        finally:
            self._finalize(handle_signals)
        return self.stats

    def _after_batch(self, batch: ChangeBatch, ok: bool) -> None:
        self._batches_since_checkpoint += 1
        if (
            self.options.checkpoint_every > 0
            and self.options.checkpoint_file is not None
            and self._batches_since_checkpoint >= self.options.checkpoint_every
        ):
            self._batches_since_checkpoint = 0
            self.write_checkpoint()
        self._watchdog()
        self._write_health("serving", last_batch=batch.batch_id)
        if self._on_batch_done is not None:
            self._on_batch_done(self, batch, ok)

    def _finalize(self, handle_signals: bool) -> None:
        if self.options.checkpoint_file is not None:
            self.write_checkpoint()
        self.verifier.close()  # release the worker pool, if any
        self.stats.stopped_early = self._stop_requested
        self._write_health("stopped")
        self._set_gauge(names.SERVE_HEALTHY, 0)
        if handle_signals:
            self._restore_signal_handlers()

    # -- one batch -------------------------------------------------------------

    def _process_batch(self, batch: ChangeBatch) -> bool:
        self.stats.batches_seen += 1
        self._count(names.SERVE_BATCHES)
        with span(names.SPAN_SERVE_BATCH, batch=batch.batch_id) as sp:
            if batch.decode_error is not None:
                self._quarantine(
                    batch,
                    StreamError(batch.decode_error),
                    attempts=0,
                    failure_class="permanent",
                )
                sp.set("outcome", "malformed")
                return False
            incremental = (
                self.breaker.allows_incremental() if self.breaker else True
            )
            self._set_gauge(
                names.SERVE_BREAKER_STATE,
                self.breaker.gauge_value() if self.breaker else 0,
            )
            if not incremental:
                ok = self._serve_rebuild(batch)
                sp.set("outcome", "rebuild" if ok else "quarantined")
                return ok
            ok = self._serve_incremental(batch)
            sp.set("outcome", "ok" if ok else "failed-incremental")
            return ok

    def _serve_incremental(self, batch: ChangeBatch) -> bool:
        attempt = 0
        while True:
            attempt += 1
            error: Optional[Exception] = None
            with span(
                names.SPAN_SERVE_ATTEMPT,
                batch=batch.batch_id,
                attempt=attempt,
            ):
                try:
                    delta = self._attempt(batch)
                except Exception as caught:  # noqa: BLE001 - rolled back
                    error = caught
            if error is None:
                if self.breaker:
                    self.breaker.record_success()
                self.stats.batches_ok += 1
                self._count(names.SERVE_BATCHES_OK)
                self.stats.new_violations += len(delta.newly_violated)
                if delta.lint is not None:
                    self._track_lint_errors(delta.lint)
                return True
            if isinstance(error, DeadlineExceeded):
                self.stats.deadline_exceeded += 1
                self._count(names.SERVE_DEADLINE_EXCEEDED)
            if self.retry_policy.should_retry(attempt, error):
                self.stats.retries += 1
                self._count(names.SERVE_RETRIES)
                self._sleep(self.retry_policy.backoff_seconds(attempt))
                continue
            # Retry budget spent (or the failure is permanent).
            if self.breaker:
                opens_before = self.breaker.opens
                self.breaker.record_failure()
                self._set_gauge(
                    names.SERVE_BREAKER_STATE, self.breaker.gauge_value()
                )
                if self.breaker.opens > opens_before:
                    self.stats.breaker_opens += 1
                    self._count(names.SERVE_BREAKER_OPENS)
                if self.breaker.state == OPEN:
                    # The incremental path just proved systematically bad:
                    # give this batch the robust from-scratch path before
                    # writing it off as poison.
                    return self._serve_rebuild(batch, prior_attempts=attempt)
            self._quarantine(
                batch, error, attempt, self._failure_class(error)
            )
            return False

    def _attempt(self, batch: ChangeBatch):
        """One incremental verification under the deadline."""
        deadline = None
        if self.options.deadline_seconds > 0:
            deadline = Deadline(
                self.options.deadline_seconds, clock=self._clock
            ).start()
            self.verifier.abort_check = deadline.check
        try:
            return self.verifier.apply_changes(batch.changes)
        finally:
            self.verifier.abort_check = None

    def _serve_rebuild(self, batch: ChangeBatch, prior_attempts: int = 0) -> bool:
        """Degraded mode: apply the batch to the snapshot and re-verify the
        result from scratch (Plankton-style), bypassing the incremental
        pipeline entirely.  No deadline — the from-scratch path is the
        fallback of last resort and must be allowed to finish."""
        self.stats.rebuild_batches += 1
        self._count(names.SERVE_REBUILD_BATCHES)
        options = self.verifier._options
        try:
            with span(names.SPAN_REBUILD, batch=batch.batch_id):
                new_snapshot, _ = apply_changes(
                    self.verifier.snapshot, batch.changes
                )
                before = {
                    status.policy.name: status.holds
                    for status in self.verifier.checker.statuses()
                }
                fresh = RealConfig(
                    new_snapshot,
                    endpoints=options["endpoints"],
                    policies=self.verifier.checker.policies(),
                    update_order=options["update_order"],
                    merge_ecs=options["merge_ecs"],
                    model_mode=options["model_mode"],
                    lint_mode=options["lint_mode"],
                    lint_suppressions=options["lint_suppressions"],
                    transactional=options["transactional"],
                    audit_every=options["audit_every"],
                    workers=options.get("workers", 1),
                    parallel_backend=options.get("parallel_backend", "auto"),
                )
        except Exception as error:  # noqa: BLE001 - old verifier untouched
            self._quarantine(
                batch,
                error,
                prior_attempts + 1,
                self._failure_class(error),
            )
            return False
        self.verifier.close()  # release the replaced verifier's worker pool
        self.verifier = fresh
        if fresh.lint_result is not None:
            self._track_lint_errors(fresh.lint_result)
        self.stats.batches_ok += 1
        self._count(names.SERVE_BATCHES_OK)
        after = {
            status.policy.name: status.holds
            for status in fresh.checker.statuses()
        }
        self.stats.new_violations += sum(
            1
            for policy_name, holds in after.items()
            if not holds and before.get(policy_name, True)
        )
        return True

    @staticmethod
    def _failure_class(error: BaseException) -> str:
        """Dead-letter taxonomy: lint-gate refusals get their own class so
        operators can triage "your change is malformed text" apart from
        "the verifier choked"."""
        if isinstance(error, LintGateError):
            return "lint-rejected"
        return classify_failure(error)

    def _track_lint_errors(self, lint_result) -> None:
        """Warn-mode accounting: count lint errors never seen before.

        Under ``--lint enforce`` the gate quarantines offending batches, so
        this stays zero; under ``--lint warn`` accepted batches may carry
        new errors, and this is how many distinct ones the stream added."""
        current = {diag.fingerprint() for diag in lint_result.errors()}
        if self._lint_errors_seen is None:
            self._lint_errors_seen = current
            return
        fresh = current - self._lint_errors_seen
        if fresh:
            self.stats.lint_new_errors += len(fresh)
            self._lint_errors_seen |= fresh

    def _quarantine(
        self,
        batch: ChangeBatch,
        error: BaseException,
        attempts: int,
        failure_class: str,
    ) -> None:
        if failure_class == "lint-rejected":
            self.stats.lint_rejected += 1
            self._count(names.SERVE_LINT_REJECTED)
        # The transaction rolled back, so the verifier is at the pre-batch
        # state — exactly what the fingerprint must describe.
        self.dead_letter.quarantine(
            batch,
            error,
            attempts=attempts,
            failure_class=failure_class,
            fingerprint=fib_fingerprint(self.verifier),
        )
        self.stats.quarantined += 1
        self.stats.quarantined_ids.append(batch.batch_id)
        self._count(names.SERVE_QUARANTINED)

    # -- watchdog / health / checkpoint ---------------------------------------

    def _watchdog(self) -> None:
        if self.options.audit_every <= 0:
            return
        self._batches_since_audit += 1
        if self._batches_since_audit < self.options.audit_every:
            return
        self._batches_since_audit = 0
        from repro.resilience.audit import audit

        report = audit(self.verifier)
        self.stats.audits += 1
        if not report.ok:
            self.verifier.rebuild()
            self.stats.audit_rebuilds += 1

    def write_checkpoint(self) -> None:
        assert self.options.checkpoint_file is not None
        write_checkpoint(
            self.verifier,
            self.options.checkpoint_file,
            extras={
                "serve": {
                    "cursor": self.cursor,
                    "quarantined_ids": list(self.stats.quarantined_ids),
                }
            },
        )

    def _write_health(
        self, status: str, last_batch: Optional[str] = None
    ) -> None:
        if self.options.health_file is None:
            return
        payload = {
            "status": status,
            "pid": os.getpid(),
            "updated_unix": time.time(),
            "cursor": self.cursor,
            "mode": (
                "rebuild"
                if self.breaker and self.breaker.state == OPEN
                else "incremental"
            ),
            "breaker": (
                {
                    "state": self.breaker.state,
                    "consecutive_failures": self.breaker.consecutive_failures,
                    "opens": self.breaker.opens,
                }
                if self.breaker
                else None
            ),
            "queue_depth": len(self._queue),
            "batches_seen": self.stats.batches_seen,
            "batches_ok": self.stats.batches_ok,
            "retries": self.stats.retries,
            "quarantined": self.stats.quarantined,
            "new_violations": self.stats.new_violations,
            "lint_rejected": self.stats.lint_rejected,
            "lint_new_errors": self.stats.lint_new_errors,
        }
        if last_batch is not None:
            payload["last_batch"] = last_batch
        path = Path(self.options.health_file)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2))
        os.replace(tmp, path)

    # -- telemetry shims -------------------------------------------------------

    @staticmethod
    def _count(metric_name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(metric_name).inc()

    @staticmethod
    def _set_gauge(metric_name: str, value: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(metric_name).set(value)


def resume_cursor_from(checkpoint_path: Union[str, Path]) -> int:
    """The stream cursor stored by a daemon's shutdown checkpoint (0 for
    checkpoints written outside a serve run)."""
    extras = read_checkpoint_extras(checkpoint_path)
    serve_extras = extras.get("serve") or {}
    return int(serve_extras.get("cursor", 0))
