"""The change-stream serving loop.

``ServeDaemon`` keeps a :class:`~repro.core.realconfig.RealConfig` alive
across an arbitrarily long stream of change batches:

- a **bounded prefetch queue** applies backpressure to the stream source
  (never more than ``queue_capacity`` batches in memory);
- each batch runs under a wall-clock **deadline** (cooperative abort at
  the verifier's stage boundaries) and a **retry policy** (exponential
  backoff + jitter for transient failures);
- a batch that exhausts its budget is **quarantined** to the dead-letter
  directory — payload, exception, pre-batch state fingerprint — and the
  stream continues;
- a **circuit breaker** counts consecutive incremental failures and
  degrades to full-rebuild mode (from-scratch verification per batch),
  probing incremental mode again after a cooldown;
- a **watchdog** audits the incremental state against a from-scratch
  recomputation every N batches, and a ``--health-file`` JSON heartbeat
  reports liveness/readiness;
- **graceful shutdown** (SIGINT/SIGTERM or :meth:`request_stop`) finishes
  the in-flight batch, then writes a checkpoint whose ``extras`` carry the
  stream cursor, so a later daemon resumes with no batch lost or applied
  twice.

The batch-level machinery (retry, quarantine, breaker, rebuild) lives in
:class:`~repro.serve.engine.BatchEngine`; the daemon composes exactly one
engine and adds the loop around it — queueing, signals, watchdog, health,
checkpoints, and the introspection server.  The multi-tenant service
(:mod:`repro.tenants`) composes one engine per tenant instead.

Every verification is transactional (PR 3), which is what makes retries
and quarantine safe: a failed attempt always leaves the verifier at the
pre-batch state.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Union

from repro.chaos.points import crash_point
from repro.core.realconfig import RealConfig
from repro.obs import (
    EVENT_AUDIT,
    EVENT_CHECKPOINT,
    EVENT_CHECKPOINT_FAILED,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_START,
    EVENT_STOP,
    EventJournal,
    FlightRecorder,
    IntrospectionServer,
    ObsState,
)
from repro.resilience.checkpoint import (
    CheckpointError,
    read_checkpoint_extras,
    write_checkpoint,
)
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.deadletter import DeadLetterBox
from repro.serve.engine import BatchEngine, ServeOptions, ServeStats
from repro.serve.policy import RetryPolicy
from repro.serve.stream import ChangeBatch
from repro.telemetry import atomic_write_text, get_metrics, names

__all__ = [
    "ServeDaemon",
    "ServeOptions",
    "ServeStats",
    "resume_cursor_from",
]


class ServeDaemon:
    """Drive a verifier over a stream of change batches, fault-tolerantly.

    ``source`` yields :class:`ChangeBatch` objects; it may also yield
    ``None`` to signal "nothing available right now" (the watch source
    does), in which case the daemon sleeps ``poll_interval`` and polls
    again.  ``clock``/``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        verifier: RealConfig,
        source: Iterable[Optional[ChangeBatch]],
        dead_letter: DeadLetterBox,
        options: Optional[ServeOptions] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        resume_cursor: int = 0,
        on_batch_done: Optional[
            Callable[["ServeDaemon", ChangeBatch, bool], None]
        ] = None,
        resume_fallback: Optional[dict] = None,
    ) -> None:
        self.options = options or ServeOptions()
        self._source: Iterator[Optional[ChangeBatch]] = iter(source)
        self._queue: Deque[ChangeBatch] = deque()
        self._exhausted = False
        self._idle = False
        self._clock = clock
        self._sleep = sleep
        self._stop_requested = False
        self._installed_handlers: List = []
        self._on_batch_done = on_batch_done
        #: Stream entries fully disposed of (committed or quarantined) —
        #: the resume cursor persisted in checkpoint extras.
        self.cursor = resume_cursor
        self._to_skip = resume_cursor
        #: Set when the resume checkpoint was served by an older ring
        #: generation (the newest was corrupt) — journaled after start.
        self._resume_fallback = resume_fallback
        self._batches_since_audit = 0
        self._batches_since_checkpoint = 0
        self._status = "starting"
        self._last_batch: Optional[str] = None
        #: The event journal (file-backed when --journal is set, in-memory
        #: otherwise) and the flight recorder tapping it.
        self.journal = EventJournal(self.options.journal_file)
        self.recorder = FlightRecorder()
        self.journal.subscribe(self.recorder.record_event)
        #: The per-batch fault domain: retry, quarantine, breaker, rebuild.
        self.engine = BatchEngine(
            verifier,
            dead_letter,
            options=self.options,
            journal=self.journal,
            recorder=self.recorder,
            clock=clock,
            sleep=sleep,
        )
        #: Started eagerly (not in run()) so callers can read the bound
        #: port / print the URL before the blocking loop begins.
        self.obs_server: Optional[IntrospectionServer] = None
        if self.options.obs_port is not None:
            state = ObsState(
                health=self.health_payload,
                stats=self.stats_payload,
                events_since=self._events_since,
            )
            self.obs_server = IntrospectionServer(
                state, host=self.options.obs_host, port=self.options.obs_port
            ).start()

    # -- the engine's surface, re-exposed --------------------------------------

    @property
    def verifier(self) -> RealConfig:
        return self.engine.verifier

    @verifier.setter
    def verifier(self, value: RealConfig) -> None:
        self.engine.verifier = value

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self.engine.breaker

    @breaker.setter
    def breaker(self, value: Optional[CircuitBreaker]) -> None:
        self.engine.breaker = value

    @property
    def stats(self) -> ServeStats:
        return self.engine.stats

    @property
    def retry_policy(self) -> RetryPolicy:
        return self.engine.retry_policy

    @property
    def dead_letter(self) -> DeadLetterBox:
        return self.engine.dead_letter

    def _process_batch(self, batch: ChangeBatch) -> bool:
        return self.engine.process_batch(batch)

    # -- control -------------------------------------------------------------

    def request_stop(self) -> None:
        """Finish the in-flight batch, checkpoint, and exit the loop."""
        self._stop_requested = True

    @property
    def stopping(self) -> bool:
        return self._stop_requested

    def install_signal_handlers(self) -> None:
        """Route SIGINT/SIGTERM to :meth:`request_stop` (graceful drain)."""
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(
                signum, lambda _signum, _frame: self.request_stop()
            )
            self._installed_handlers.append((signum, previous))

    def _restore_signal_handlers(self) -> None:
        while self._installed_handlers:
            signum, previous = self._installed_handlers.pop()
            signal.signal(signum, previous)

    # -- the queue ------------------------------------------------------------

    def _refill(self) -> None:
        """Pull from the source up to capacity — the backpressure bound:
        the daemon never materializes more than ``queue_capacity`` batches
        ahead of the verifier."""
        self._idle = False
        while (
            not self._exhausted
            and len(self._queue) < self.options.queue_capacity
        ):
            try:
                batch = next(self._source)
            except StopIteration:
                self._exhausted = True
                break
            if batch is None:  # watch source: nothing available right now
                self._idle = True
                break
            if self._to_skip > 0:
                self._to_skip -= 1
                self.stats.skipped_on_resume += 1
                continue
            self._queue.append(batch)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(names.SERVE_QUEUE_DEPTH).set(len(self._queue))
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(self._queue)
        )

    # -- the loop -------------------------------------------------------------

    def run(self, handle_signals: bool = False) -> ServeStats:
        if handle_signals:
            self.install_signal_handlers()
        self._status = "serving"
        self.journal.emit(
            EVENT_START, cursor=self.cursor, pid=os.getpid()
        )
        if self._resume_fallback is not None:
            self.journal.emit(
                EVENT_CHECKPOINT_FALLBACK, **self._resume_fallback
            )
        self._write_health("serving")
        self._set_gauge(names.SERVE_HEALTHY, 1)
        try:
            while not self._stop_requested:
                if not self._queue:
                    self._refill()
                if not self._queue:
                    if self._exhausted:
                        break
                    # Watch source with nothing to do: heartbeat and wait.
                    self._write_health("serving")
                    self._sleep(self.options.poll_interval)
                    continue
                batch = self._queue.popleft()
                ok = self._process_batch(batch)
                self.cursor += 1
                crash_point("cursor.commit")
                self._after_batch(batch, ok)
        finally:
            self._finalize(handle_signals)
        return self.stats

    def _after_batch(self, batch: ChangeBatch, ok: bool) -> None:
        self._batches_since_checkpoint += 1
        if (
            self.options.checkpoint_every > 0
            and self.options.checkpoint_file is not None
            and self._batches_since_checkpoint >= self.options.checkpoint_every
        ):
            self._batches_since_checkpoint = 0
            self.write_checkpoint()
        self._watchdog()
        self._write_health("serving", last_batch=batch.batch_id)
        if self._on_batch_done is not None:
            self._on_batch_done(self, batch, ok)

    def _finalize(self, handle_signals: bool) -> None:
        if self.options.checkpoint_file is not None:
            self.write_checkpoint()
        self.verifier.close()  # release the worker pool, if any
        self.stats.stopped_early = self._stop_requested
        self._status = "stopped"
        self.journal.emit(
            EVENT_STOP,
            cursor=self.cursor,
            stopped_early=self._stop_requested,
            batches_ok=self.stats.batches_ok,
            batches_seen=self.stats.batches_seen,
            quarantined=self.stats.quarantined,
        )
        self._write_health("stopped")
        self._set_gauge(names.SERVE_HEALTHY, 0)
        # Health/journal before teardown: a last scrape during shutdown
        # still sees the final state; then the server and journal go away.
        if self.obs_server is not None:
            self.obs_server.stop()
        self.journal.close()
        if handle_signals:
            self._restore_signal_handlers()

    # -- watchdog / health / checkpoint ---------------------------------------

    def _watchdog(self) -> None:
        if self.options.audit_every <= 0:
            return
        self._batches_since_audit += 1
        if self._batches_since_audit < self.options.audit_every:
            return
        self._batches_since_audit = 0
        from repro.resilience.audit import audit

        report = audit(self.verifier)
        self.stats.audits += 1
        if not report.ok:
            self.verifier.rebuild()
            self.stats.audit_rebuilds += 1
        self.journal.emit(EVENT_AUDIT, ok=report.ok, cursor=self.cursor)

    def write_checkpoint(self) -> bool:
        """Checkpoint the verifier + cursor; a storage fault (disk full,
        dying device) degrades — counted, journaled, kept serving —
        instead of killing the daemon: the stream keeps draining and the
        next cadence retries the write."""
        assert self.options.checkpoint_file is not None
        try:
            write_checkpoint(
                self.verifier,
                self.options.checkpoint_file,
                extras={
                    "serve": {
                        "cursor": self.cursor,
                        "quarantined_ids": list(self.stats.quarantined_ids),
                    }
                },
                keep=self.options.checkpoint_generations,
            )
        except CheckpointError as error:
            self.stats.checkpoint_failures += 1
            self._count(names.CHECKPOINT_WRITE_FAILURES)
            self.journal.emit(
                EVENT_CHECKPOINT_FAILED, cursor=self.cursor, error=str(error)
            )
            return False
        self.journal.emit(EVENT_CHECKPOINT, cursor=self.cursor)
        return True

    # -- the introspection surface ---------------------------------------------

    def health_payload(
        self, status: Optional[str] = None, last_batch: Optional[str] = None
    ) -> dict:
        """The liveness/readiness JSON — one shape for both the
        ``--health-file`` heartbeat and ``GET /health``."""
        payload = {
            "status": status or self._status,
            "pid": os.getpid(),
            "updated_unix": time.time(),
            "cursor": self.cursor,
            "mode": (
                "rebuild"
                if self.breaker and self.breaker.state == OPEN
                else "incremental"
            ),
            "breaker": (
                self.breaker.snapshot() if self.breaker else None
            ),
            "queue_depth": len(self._queue),
            "batches_seen": self.stats.batches_seen,
            "batches_ok": self.stats.batches_ok,
            "retries": self.stats.retries,
            "quarantined": self.stats.quarantined,
            "new_violations": self.stats.new_violations,
            "lint_rejected": self.stats.lint_rejected,
            "lint_new_errors": self.stats.lint_new_errors,
            "checkpoint_failures": self.stats.checkpoint_failures,
            "journal_degraded": self.journal.degraded,
        }
        if last_batch is not None:
            self._last_batch = last_batch
        if self._last_batch is not None:
            payload["last_batch"] = self._last_batch
        return payload

    def stats_payload(self) -> dict:
        """``GET /stats``: serving counters + journal position + the
        flight recorder's per-stage latency summaries."""
        return {
            "stats": dict(vars(self.stats)),
            "cursor": self.cursor,
            "queue_depth": len(self._queue),
            "breaker_state": self.breaker.state if self.breaker else None,
            "journal_seq": self.journal.seq,
            "journal_file": (
                str(self.journal.path) if self.journal.path else None
            ),
            "flight_dumps": self.recorder.dumps_written,
            "histograms": self.recorder.histograms(),
        }

    def _events_since(self, since: int) -> list:
        """``GET /events``: durable journal replay when a file is
        configured, the flight recorder's in-memory ring otherwise —
        including after the journal degraded on a write error (the file
        is frozen mid-stream; the ring has everything since)."""
        if self.journal.path is not None and not self.journal.degraded:
            return self.journal.events_since(since)
        return self.recorder.events(since)

    def _write_health(
        self, status: str, last_batch: Optional[str] = None
    ) -> None:
        if self.options.health_file is None:
            return
        payload = self.health_payload(status, last_batch)
        atomic_write_text(
            Path(self.options.health_file),
            json.dumps(payload, sort_keys=True, indent=2),
        )

    # -- telemetry shims -------------------------------------------------------

    @staticmethod
    def _count(metric_name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(metric_name).inc()

    @staticmethod
    def _set_gauge(metric_name: str, value: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(metric_name).set(value)


def resume_cursor_from(checkpoint_path: Union[str, Path]) -> int:
    """The stream cursor stored by a daemon's shutdown checkpoint (0 for
    checkpoints written outside a serve run)."""
    extras = read_checkpoint_extras(checkpoint_path)
    serve_extras = extras.get("serve") or {}
    return int(serve_extras.get("cursor", 0))
