"""Poison-batch quarantine: the dead-letter directory.

A batch that exhausts its retry budget (or is malformed or permanently
rejected) must not stall the stream behind it.  The daemon writes it here
and moves on.  Each quarantined batch gets its own subdirectory::

    deadletter/
      000007/
        batch.json   the raw batch payload (replayable as a stream file)
        error.txt    the exception type, message, and traceback
        meta.json    attempts made, failure class, pre-batch FIB
                     fingerprint, quarantine timestamp
        flight.json  the daemon's flight-recorder dump at quarantine
                     time: recent journal events + per-stage latency
                     histograms (written by the daemon, not this class)

``batch.json`` is the same tagged-JSON format the stream uses, so the
runbook for draining the directory is just: fix the root cause, then
``repro serve SNAPSHOT --stream DEADLETTER_DIR`` (or :func:`replay`).
"""

from __future__ import annotations

import json
import time
import traceback
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.chaos.points import crash_point
from repro.serve.stream import ChangeBatch, decode_batch
from repro.telemetry import span
from repro.telemetry import names as telemetry_names


class DeadLetterBox:
    """Filesystem-backed quarantine for poison batches."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def quarantine(
        self,
        batch: ChangeBatch,
        error: BaseException,
        attempts: int,
        failure_class: str,
        fingerprint: Optional[str] = None,
    ) -> Path:
        """Write one poison batch; returns its quarantine directory."""
        with span(
            telemetry_names.SPAN_SERVE_QUARANTINE, batch=batch.batch_id
        ):
            entry = self.directory / batch.batch_id
            entry.mkdir(parents=True, exist_ok=True)
            payload = batch.payload
            if payload is None:
                from repro.serve.stream import encode_batch

                payload = encode_batch(batch.batch_id, batch.changes)
            (entry / "batch.json").write_text(
                json.dumps(payload, sort_keys=True, indent=2)
            )
            (entry / "error.txt").write_text(
                "".join(
                    traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
            )
            # Crash boundary: the payload is durable but meta.json is
            # not — recovery must treat a metaless entry as still
            # quarantined (batch_ids() keys off batch.json alone).
            crash_point("deadletter.dump")
            (entry / "meta.json").write_text(
                json.dumps(
                    {
                        "batch_id": batch.batch_id,
                        "attempts": attempts,
                        "failure_class": failure_class,
                        "error_type": type(error).__name__,
                        "error": str(error),
                        "pre_batch_fingerprint": fingerprint,
                        "quarantined_unix": time.time(),
                    },
                    sort_keys=True,
                    indent=2,
                )
            )
        return entry

    def batch_ids(self) -> List[str]:
        if not self.directory.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.directory.iterdir()
            if entry.is_dir() and (entry / "batch.json").exists()
        )

    def __len__(self) -> int:
        return len(self.batch_ids())

    def load(self, batch_id: str) -> ChangeBatch:
        path = self.directory / batch_id / "batch.json"
        payload = json.loads(path.read_text())
        return decode_batch(payload, batch_id)

    def meta(self, batch_id: str) -> dict:
        path = self.directory / batch_id / "meta.json"
        return json.loads(path.read_text())

    def flight(self, batch_id: str) -> Optional[dict]:
        """The flight-recorder dump quarantined alongside the batch (None
        when the daemon ran without one, e.g. direct quarantine calls)."""
        from repro.obs.recorder import load_flight_dump

        return load_flight_dump(self.directory / batch_id / "flight.json")

    def replay(self) -> Iterator[ChangeBatch]:
        """The quarantined batches as a stream, in quarantine order —
        feed this back into a daemon (or apply directly) after the root
        cause is fixed."""
        for batch_id in self.batch_ids():
            yield self.load(batch_id)
