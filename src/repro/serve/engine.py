"""The per-batch fault domain: one verifier, one breaker, one dead-letter box.

``BatchEngine`` is the unit of isolation extracted from the original
single-tenant ``ServeDaemon``: everything that decides the fate of one
change batch — retry with backoff, deadline aborts, poison-batch
quarantine, breaker-gated degradation to full rebuild, lint accounting —
lives here, with **no** knowledge of queues, sources, signals, health
files, or HTTP.  The daemon composes exactly one engine; the
multi-tenant service (:mod:`repro.tenants`) composes one engine *per
tenant*, which is what makes a tenant a fault domain: a poison batch,
an open breaker, or a crash-looping verifier is confined to the engine
it happened in.

The journal handed in may be a plain :class:`~repro.obs.EventJournal`
or a :class:`~repro.obs.TenantJournal` tagging view — the engine calls
only ``emit``, so per-tenant attribution is the journal's concern, not
the engine's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.config.changes import apply_changes
from repro.core.realconfig import LintGateError, RealConfig
from repro.obs import (
    EVENT_BREAKER,
    EVENT_COMMITTED,
    EVENT_DEADLINE,
    EVENT_FINDING,
    EVENT_LINT_REJECTED,
    EVENT_MALFORMED,
    EVENT_QUARANTINED,
    EVENT_REBUILD,
    EVENT_RETRIED,
    EVENT_STAGE,
    FlightRecorder,
)
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.deadletter import DeadLetterBox
from repro.serve.policy import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    classify_failure,
)
from repro.serve.stream import ChangeBatch, StreamError, fib_fingerprint
from repro.telemetry import get_metrics, names, span


@dataclass
class ServeOptions:
    """Knobs of the serving loop (all come straight from the CLI)."""

    deadline_seconds: float = 0.0  # 0 = no deadline
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    retry_seed: int = 0
    breaker_threshold: int = 3  # 0 = breaker disabled
    breaker_cooldown: float = 5.0
    queue_capacity: int = 16
    poll_interval: float = 0.5  # sleep when a watch source is idle
    audit_every: int = 0  # watchdog self-check cadence (batches)
    checkpoint_every: int = 0  # periodic checkpoint cadence (batches)
    #: Checkpoint generations kept on disk (the live file plus ``N - 1``
    #: numbered fallbacks a corrupt newest generation falls back to).
    checkpoint_generations: int = 3
    health_file: Optional[Union[str, Path]] = None
    checkpoint_file: Optional[Union[str, Path]] = None
    #: JSONL event-journal file (None = in-memory seqs only, events are
    #: still fed to the flight recorder and the introspection server).
    journal_file: Optional[Union[str, Path]] = None
    #: Port for the live introspection server (None = no server, 0 = pick
    #: an ephemeral port, published via ``ServeDaemon.obs_server.port``).
    obs_port: Optional[int] = None
    obs_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.checkpoint_generations < 1:
            raise ValueError("checkpoint_generations must be >= 1")


@dataclass
class ServeStats:
    """What happened over one daemon run (or one tenant's lifetime)."""

    batches_seen: int = 0
    batches_ok: int = 0
    retries: int = 0
    quarantined: int = 0
    deadline_exceeded: int = 0
    rebuild_batches: int = 0
    breaker_opens: int = 0
    audits: int = 0
    audit_rebuilds: int = 0
    new_violations: int = 0
    lint_rejected: int = 0
    lint_new_errors: int = 0
    max_queue_depth: int = 0
    skipped_on_resume: int = 0
    checkpoint_failures: int = 0
    stopped_early: bool = False
    quarantined_ids: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.quarantined == 0 and self.new_violations == 0

    def summary(self) -> str:
        parts = [
            f"{self.batches_ok}/{self.batches_seen} batches ok",
            f"{self.retries} retries",
            f"{self.quarantined} quarantined",
        ]
        if self.rebuild_batches:
            parts.append(f"{self.rebuild_batches} in rebuild mode")
        if self.breaker_opens:
            parts.append(f"breaker opened {self.breaker_opens}x")
        if self.deadline_exceeded:
            parts.append(f"{self.deadline_exceeded} deadline aborts")
        if self.new_violations:
            parts.append(f"{self.new_violations} new policy violations")
        if self.lint_rejected:
            parts.append(f"{self.lint_rejected} lint-rejected")
        if self.lint_new_errors:
            parts.append(f"{self.lint_new_errors} new lint errors")
        if self.skipped_on_resume:
            parts.append(f"resumed past {self.skipped_on_resume}")
        if self.checkpoint_failures:
            parts.append(f"{self.checkpoint_failures} checkpoint failures")
        if self.stopped_early:
            parts.append("stopped early")
        return ", ".join(parts)


class BatchEngine:
    """Apply change batches to one verifier with the full robustness
    stack: retry + backoff, deadline, quarantine, breaker degradation.

    ``journal`` is anything with an ``emit(event, **fields)`` method
    (an :class:`~repro.obs.EventJournal` or a per-tenant
    :class:`~repro.obs.TenantJournal` view); ``recorder`` is the flight
    recorder fed by that journal.  ``clock``/``sleep`` are injectable
    for deterministic tests.
    """

    def __init__(
        self,
        verifier: RealConfig,
        dead_letter: DeadLetterBox,
        options: Optional[ServeOptions] = None,
        journal=None,
        recorder: Optional[FlightRecorder] = None,
        stats: Optional[ServeStats] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        from repro.obs import EventJournal

        self.verifier = verifier
        self.dead_letter = dead_letter
        self.options = options or ServeOptions()
        self.journal = journal if journal is not None else EventJournal(None)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.stats = stats if stats is not None else ServeStats()
        self._clock = clock
        self._sleep = sleep
        self.retry_policy = RetryPolicy(
            max_retries=self.options.max_retries,
            backoff_base=self.options.backoff_base,
            backoff_cap=self.options.backoff_cap,
            jitter=self.options.jitter,
            seed=self.options.retry_seed,
        )
        #: A caller-provided breaker survives engine teardown — the
        #: multi-tenant registry keeps it in the tenant's resident state
        #: so an evict/hydrate cycle cannot reset a tripping tenant.
        self.breaker: Optional[CircuitBreaker] = breaker
        if self.breaker is None and self.options.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=self.options.breaker_threshold,
                cooldown_seconds=self.options.breaker_cooldown,
                clock=clock,
            )
        # Warn-mode lint accounting: error fingerprints already present at
        # engine start (or at the last rebuild) — anything beyond these is
        # a *new* lint error introduced by the stream.
        self._lint_errors_seen: Optional[set] = None
        baseline = verifier.lint_result
        if baseline is not None:
            self._lint_errors_seen = {
                diag.fingerprint() for diag in baseline.errors()
            }

    # -- one batch -------------------------------------------------------------

    def process_batch(self, batch: ChangeBatch) -> bool:
        self.stats.batches_seen += 1
        self._count(names.SERVE_BATCHES)
        started = time.perf_counter()
        try:
            with span(names.SPAN_SERVE_BATCH, batch=batch.batch_id) as sp:
                if batch.decode_error is not None:
                    self.journal.emit(
                        EVENT_MALFORMED,
                        batch=batch.batch_id,
                        error=batch.decode_error,
                    )
                    self._quarantine(
                        batch,
                        StreamError(batch.decode_error),
                        attempts=0,
                        failure_class="permanent",
                    )
                    sp.set("outcome", "malformed")
                    return False
                incremental = (
                    self.breaker.allows_incremental() if self.breaker else True
                )
                self._set_gauge(
                    names.SERVE_BREAKER_STATE,
                    self.breaker.gauge_value() if self.breaker else 0,
                )
                if not incremental:
                    ok = self._serve_rebuild(batch)
                    sp.set("outcome", "rebuild" if ok else "quarantined")
                    return ok
                ok = self._serve_incremental(batch)
                sp.set("outcome", "ok" if ok else "failed-incremental")
                return ok
        finally:
            self.recorder.observe_stage(
                "batch", time.perf_counter() - started
            )

    def _serve_incremental(self, batch: ChangeBatch) -> bool:
        attempt = 0
        while True:
            attempt += 1
            error: Optional[Exception] = None
            with span(
                names.SPAN_SERVE_ATTEMPT,
                batch=batch.batch_id,
                attempt=attempt,
            ):
                try:
                    delta = self._attempt(batch)
                except Exception as caught:  # noqa: BLE001 - rolled back
                    error = caught
            if error is None:
                if self.breaker:
                    self.breaker.record_success()
                self.stats.batches_ok += 1
                self._count(names.SERVE_BATCHES_OK)
                self.stats.new_violations += len(delta.newly_violated)
                if delta.lint is not None:
                    self._track_lint_errors(delta.lint)
                self._record_commit(batch, delta, attempt)
                return True
            if isinstance(error, DeadlineExceeded):
                self.stats.deadline_exceeded += 1
                self._count(names.SERVE_DEADLINE_EXCEEDED)
                self.journal.emit(
                    EVENT_DEADLINE,
                    batch=batch.batch_id,
                    attempt=attempt,
                    deadline_seconds=self.options.deadline_seconds,
                )
            if self.retry_policy.should_retry(attempt, error):
                self.stats.retries += 1
                self._count(names.SERVE_RETRIES)
                self.journal.emit(
                    EVENT_RETRIED,
                    batch=batch.batch_id,
                    attempt=attempt,
                    error_type=type(error).__name__,
                    error=str(error),
                )
                self._sleep(self.retry_policy.backoff_seconds(attempt))
                continue
            # Retry budget spent (or the failure is permanent).
            if self.breaker:
                opens_before = self.breaker.opens
                self.breaker.record_failure()
                self._set_gauge(
                    names.SERVE_BREAKER_STATE, self.breaker.gauge_value()
                )
                if self.breaker.opens > opens_before:
                    self.stats.breaker_opens += 1
                    self._count(names.SERVE_BREAKER_OPENS)
                    self.journal.emit(
                        EVENT_BREAKER,
                        batch=batch.batch_id,
                        state=self.breaker.state,
                        opens=self.breaker.opens,
                        consecutive_failures=(
                            self.breaker.consecutive_failures
                        ),
                    )
                    self._dump_flight(
                        self.dead_letter.directory
                        / f"flight-breaker-open-{self.breaker.opens:03d}.json"
                    )
                if self.breaker.state == OPEN:
                    # The incremental path just proved systematically bad:
                    # give this batch the robust from-scratch path before
                    # writing it off as poison.
                    return self._serve_rebuild(batch, prior_attempts=attempt)
            self._quarantine(
                batch, error, attempt, self._failure_class(error)
            )
            return False

    def _attempt(self, batch: ChangeBatch):
        """One incremental verification under the deadline."""
        deadline = None
        if self.options.deadline_seconds > 0:
            deadline = Deadline(
                self.options.deadline_seconds, clock=self._clock
            ).start()
            self.verifier.abort_check = deadline.check
        try:
            return self.verifier.apply_changes(batch.changes)
        finally:
            self.verifier.abort_check = None

    #: delta.timings attribute -> the stage label used in journal events
    #: and the flight recorder's latency histograms.
    _STAGES = (
        ("config_diff", "diff"),
        ("lint", "lint"),
        ("generation", "generation"),
        ("model_update", "model"),
        ("policy_check", "policy"),
    )

    def _record_commit(self, batch: ChangeBatch, delta, attempts: int) -> None:
        """Journal one committed batch: per-stage latencies (also fed to
        the flight recorder), the commit itself, and one finding event per
        newly violated policy — the batch -> stage / batch -> finding legs
        of the correlation-id scheme."""
        timings = delta.timings
        for attr, stage_label in self._STAGES:
            seconds = getattr(timings, attr, 0.0)
            self.recorder.observe_stage(stage_label, seconds)
            self.journal.emit(
                EVENT_STAGE,
                batch=batch.batch_id,
                stage=stage_label,
                seconds=seconds,
            )
        self.journal.emit(
            EVENT_COMMITTED,
            batch=batch.batch_id,
            attempts=attempts,
            seconds=timings.total,
            new_violations=len(delta.newly_violated),
        )
        for status in delta.newly_violated:
            self.journal.emit(
                EVENT_FINDING,
                batch=batch.batch_id,
                finding=status.policy.name,
            )

    def _dump_flight(self, path: Path) -> None:
        """Best-effort atomic flight-recorder dump (observability must
        never take the serving loop down with it)."""
        try:
            self.recorder.dump_to(path)
        except OSError:
            pass

    def _serve_rebuild(self, batch: ChangeBatch, prior_attempts: int = 0) -> bool:
        """Degraded mode: apply the batch to the snapshot and re-verify the
        result from scratch (Plankton-style), bypassing the incremental
        pipeline entirely.  No deadline — the from-scratch path is the
        fallback of last resort and must be allowed to finish."""
        self.stats.rebuild_batches += 1
        self._count(names.SERVE_REBUILD_BATCHES)
        options = self.verifier._options
        try:
            with span(names.SPAN_REBUILD, batch=batch.batch_id):
                new_snapshot, _ = apply_changes(
                    self.verifier.snapshot, batch.changes
                )
                before = {
                    status.policy.name: status.holds
                    for status in self.verifier.checker.statuses()
                }
                fresh = RealConfig(
                    new_snapshot,
                    endpoints=options["endpoints"],
                    policies=self.verifier.checker.policies(),
                    update_order=options["update_order"],
                    merge_ecs=options["merge_ecs"],
                    model_mode=options["model_mode"],
                    lint_mode=options["lint_mode"],
                    lint_suppressions=options["lint_suppressions"],
                    transactional=options["transactional"],
                    audit_every=options["audit_every"],
                    workers=options.get("workers", 1),
                    parallel_backend=options.get("parallel_backend", "auto"),
                )
        except Exception as error:  # noqa: BLE001 - old verifier untouched
            self._quarantine(
                batch,
                error,
                prior_attempts + 1,
                self._failure_class(error),
            )
            return False
        self.verifier.close()  # release the replaced verifier's worker pool
        self.verifier = fresh
        if fresh.lint_result is not None:
            self._track_lint_errors(fresh.lint_result)
        self.stats.batches_ok += 1
        self._count(names.SERVE_BATCHES_OK)
        after = {
            status.policy.name: status.holds
            for status in fresh.checker.statuses()
        }
        newly_violated = sorted(
            policy_name
            for policy_name, holds in after.items()
            if not holds and before.get(policy_name, True)
        )
        self.stats.new_violations += len(newly_violated)
        self.journal.emit(
            EVENT_REBUILD,
            batch=batch.batch_id,
            attempts=prior_attempts + 1,
            new_violations=len(newly_violated),
        )
        for policy_name in newly_violated:
            self.journal.emit(
                EVENT_FINDING,
                batch=batch.batch_id,
                finding=policy_name,
                mode="rebuild",
            )
        return True

    @staticmethod
    def _failure_class(error: BaseException) -> str:
        """Dead-letter taxonomy: lint-gate refusals get their own class so
        operators can triage "your change is malformed text" apart from
        "the verifier choked"."""
        if isinstance(error, LintGateError):
            return "lint-rejected"
        return classify_failure(error)

    def _track_lint_errors(self, lint_result) -> None:
        """Warn-mode accounting: count lint errors never seen before.

        Under ``--lint enforce`` the gate quarantines offending batches, so
        this stays zero; under ``--lint warn`` accepted batches may carry
        new errors, and this is how many distinct ones the stream added."""
        current = {diag.fingerprint() for diag in lint_result.errors()}
        if self._lint_errors_seen is None:
            self._lint_errors_seen = current
            return
        fresh = current - self._lint_errors_seen
        if fresh:
            self.stats.lint_new_errors += len(fresh)
            self._lint_errors_seen |= fresh

    def _quarantine(
        self,
        batch: ChangeBatch,
        error: BaseException,
        attempts: int,
        failure_class: str,
    ) -> None:
        if failure_class == "lint-rejected":
            self.stats.lint_rejected += 1
            self._count(names.SERVE_LINT_REJECTED)
            self.journal.emit(
                EVENT_LINT_REJECTED, batch=batch.batch_id, error=str(error)
            )
        # The transaction rolled back, so the verifier is at the pre-batch
        # state — exactly what the fingerprint must describe.
        entry = self.dead_letter.quarantine(
            batch,
            error,
            attempts=attempts,
            failure_class=failure_class,
            fingerprint=fib_fingerprint(self.verifier),
        )
        self.stats.quarantined += 1
        self.stats.quarantined_ids.append(batch.batch_id)
        self._count(names.SERVE_QUARANTINED)
        self.journal.emit(
            EVENT_QUARANTINED,
            batch=batch.batch_id,
            attempts=attempts,
            failure_class=failure_class,
            error_type=type(error).__name__,
            error=str(error),
        )
        # The post-mortem dump rides next to batch.json / error.txt /
        # meta.json, with the quarantine event already in its ring.
        self._dump_flight(entry / "flight.json")

    def close(self) -> None:
        """Release the verifier's worker pool, if any."""
        self.verifier.close()

    # -- telemetry shims -------------------------------------------------------

    @staticmethod
    def _count(metric_name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(metric_name).inc()

    @staticmethod
    def _set_gauge(metric_name: str, value: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(metric_name).set(value)
