"""Per-batch failure policy: deadlines, retry classification, backoff.

The daemon wraps every verification attempt in a :class:`Deadline` (a
wall-clock budget checked cooperatively at the verifier's stage
boundaries via ``RealConfig.abort_check``) and, on failure, consults
:func:`classify_failure` and a :class:`RetryPolicy` to decide between
retrying with exponential backoff + jitter and quarantining the batch.

Jitter is deterministic given the policy's seed, so tests can assert the
exact sleep sequence; the cap keeps the worst-case stall bounded.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.config.schema import ConfigError
from repro.resilience.faults import FaultInjected


class DeadlineExceeded(RuntimeError):
    """A verification attempt ran past its wall-clock budget.  Raised from
    the verifier's cooperative abort hook, so the transactional wrapper
    rolls the pipeline back before the daemon sees it."""


@dataclass
class Deadline:
    """A wall-clock budget around one verification attempt."""

    budget_seconds: float
    clock: Callable[[], float] = time.monotonic
    started: Optional[float] = None

    def start(self) -> "Deadline":
        self.started = self.clock()
        return self

    def remaining(self) -> float:
        if self.started is None:
            return self.budget_seconds
        return self.budget_seconds - (self.clock() - self.started)

    def check(self) -> None:
        """The verifier-facing hook: raise when the budget is spent."""
        if self.budget_seconds > 0 and self.remaining() <= 0:
            raise DeadlineExceeded(
                f"verification exceeded its {self.budget_seconds:.3f}s deadline"
            )


#: Failure classes.
TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_failure(error: BaseException) -> str:
    """Decide whether retrying the same batch could possibly succeed.

    - Injected faults and deadline aborts are **transient**: the fault plan
      advances per call and a later attempt may be fast or fault-free.
    - :class:`ConfigError` (malformed batch, lint-gate refusal, topology
      change) is **permanent**: the verifier rolled back, so the identical
      input fails the identical way — straight to quarantine.
    - Everything else (engine invariant violations, OS errors) defaults to
      transient: a retry costs little and the rollback made it safe.
    """
    if isinstance(error, (FaultInjected, DeadlineExceeded)):
        return TRANSIENT
    if isinstance(error, ConfigError):
        return PERMANENT
    return TRANSIENT


@dataclass
class RetryPolicy:
    """Exponential backoff with full jitter and a per-batch attempt budget.

    Attempt ``n`` (1-based) that fails sleeps
    ``min(cap, base * 2**(n-1)) * uniform(1 - jitter, 1)`` before attempt
    ``n + 1``, up to ``max_retries`` retries (``max_retries + 1`` attempts
    total).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_seconds(self, attempt: int) -> float:
        """Sleep before the retry following failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        raw = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        if self.jitter == 0:
            return raw
        return raw * self._rng.uniform(1 - self.jitter, 1.0)

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """Whether failed attempt ``attempt`` (1-based) earns another try."""
        if classify_failure(error) == PERMANENT:
            return False
        return attempt < self.max_attempts

    def sleep_plan(self, attempts: int) -> List[float]:
        """The backoff sequence for ``attempts`` consecutive failures —
        used by tests and the benchmark to bound total stall time."""
        return [self.backoff_seconds(n) for n in range(1, attempts + 1)]
