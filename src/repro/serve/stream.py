"""Change-batch streams: the wire format of the serving daemon.

A *stream* is an ordered sequence of change batches.  On disk it is either

- a **JSONL file** — one batch per line, ``{"id": ..., "changes": [...]}``;
- a **directory** of ``*.json`` batch files, consumed in sorted filename
  order (the format ``repro watch`` polls: producers drop a file per
  batch, the daemon picks them up).

Each change is encoded as a tagged JSON object (``{"kind": "SetOspfCost",
"device": ..., ...}``).  The codec is derived from the dataclass fields of
every :class:`~repro.config.changes.Change` subclass, so new change types
serialize without touching this module; the only special values are
prefixes (``{"$prefix": "10.0.0.0/8"}``), ACL entries
(``{"$acl_entry": {...}}``), and nested changes (composites).

Decode failures do not raise out of the stream iterator: the malformed
batch is yielded with ``decode_error`` set, and the daemon quarantines it
like any other poison batch — one corrupt line must not kill the stream.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Type, Union

from repro.config.changes import Change
from repro.config.schema import AclEntry, ConfigError
from repro.net.addr import Prefix, format_ipv4


class StreamError(ConfigError):
    """Raised for unreadable stream files or malformed batch payloads."""


@dataclasses.dataclass
class ChangeBatch:
    """One unit of work pulled off a stream.

    ``payload`` is the raw jsonable form (what the dead-letter directory
    stores and what replay re-decodes); ``decode_error`` is set instead of
    ``changes`` when the payload could not be decoded.
    """

    batch_id: str
    changes: List[Change] = dataclasses.field(default_factory=list)
    payload: Optional[Dict[str, Any]] = None
    decode_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.decode_error is None

    def describe(self) -> str:
        if self.decode_error is not None:
            return f"batch {self.batch_id}: malformed ({self.decode_error})"
        return f"batch {self.batch_id}: {len(self.changes)} change(s)"


# -- the change codec ---------------------------------------------------------


def _change_registry() -> Dict[str, Type[Change]]:
    registry: Dict[str, Type[Change]] = {}
    pending = list(Change.__subclasses__())
    while pending:
        cls = pending.pop()
        registry[cls.__name__] = cls
        pending.extend(cls.__subclasses__())
    return registry


def _encode_value(value: Any) -> Any:
    if isinstance(value, Change):
        return encode_change(value)
    if isinstance(value, Prefix):
        return {"$prefix": f"{format_ipv4(value.network)}/{value.length}"}
    if isinstance(value, AclEntry):
        fields = {
            f.name: _encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"$acl_entry": fields}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise StreamError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$prefix" in value:
            return Prefix.parse(value["$prefix"])
        if "$acl_entry" in value:
            fields = {
                k: _decode_value(v) for k, v in value["$acl_entry"].items()
            }
            if fields.get("dst_port") is not None:
                fields["dst_port"] = tuple(fields["dst_port"])
            return AclEntry(**fields)
        if "kind" in value:
            return decode_change(value)
        raise StreamError(f"unrecognized tagged value: {sorted(value)}")
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_change(change: Change) -> Dict[str, Any]:
    """The tagged-JSON form of one change."""
    out: Dict[str, Any] = {"kind": type(change).__name__}
    for f in dataclasses.fields(change):
        out[f.name] = _encode_value(getattr(change, f.name))
    return out


def decode_change(payload: Dict[str, Any]) -> Change:
    """Rebuild a change from its tagged-JSON form."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise StreamError("change payload is not a tagged object")
    kind = payload["kind"]
    cls = _change_registry().get(kind)
    if cls is None:
        raise StreamError(f"unknown change kind {kind!r}")
    kwargs = {}
    field_names = {f.name for f in dataclasses.fields(cls)}
    for key, value in payload.items():
        if key == "kind":
            continue
        if key not in field_names:
            raise StreamError(f"{kind} has no field {key!r}")
        kwargs[key] = _decode_value(value)
    try:
        return cls(**kwargs)
    except (TypeError, ConfigError) as error:
        raise StreamError(f"cannot build {kind}: {error}") from error


def encode_batch(batch_id: str, changes: Iterable[Change]) -> Dict[str, Any]:
    return {
        "id": str(batch_id),
        "changes": [encode_change(change) for change in changes],
    }


def decode_batch(payload: Any, default_id: str) -> ChangeBatch:
    """Decode one raw batch payload; malformed input becomes a batch with
    ``decode_error`` set rather than an exception."""
    if not isinstance(payload, dict):
        return ChangeBatch(
            batch_id=default_id,
            payload={"raw": payload},
            decode_error="batch payload is not an object",
        )
    batch_id = str(payload.get("id", default_id))
    raw_changes = payload.get("changes")
    if not isinstance(raw_changes, list):
        return ChangeBatch(
            batch_id=batch_id,
            payload=payload,
            decode_error="batch has no 'changes' list",
        )
    try:
        decoded = [decode_change(entry) for entry in raw_changes]
    except StreamError as error:
        return ChangeBatch(
            batch_id=batch_id, payload=payload, decode_error=str(error)
        )
    return ChangeBatch(batch_id=batch_id, changes=decoded, payload=payload)


# -- stream files -------------------------------------------------------------


def write_stream(
    batches: Iterable[Iterable[Change]],
    path: Union[str, Path],
    start_id: int = 0,
) -> int:
    """Write batches to a JSONL stream file; returns the batch count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for index, batch in enumerate(batches, start=start_id):
            payload = encode_batch(f"{index:06d}", batch)
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            count += 1
    return count


def write_batch_file(
    batch_id: str, changes: Iterable[Change], directory: Union[str, Path]
) -> Path:
    """Drop one batch file into a watch directory (sorted-name order)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"batch-{batch_id}.json"
    path.write_text(json.dumps(encode_batch(batch_id, changes), sort_keys=True))
    return path


def _iter_jsonl(path: Path) -> Iterator[ChangeBatch]:
    try:
        handle = path.open("r")
    except OSError as error:
        raise StreamError(f"cannot read stream {path}: {error}") from error
    with handle:
        for number, line in enumerate(handle):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            default_id = f"{number:06d}"
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                yield ChangeBatch(
                    batch_id=default_id,
                    payload={"raw": line},
                    decode_error=f"bad JSON: {error}",
                )
                continue
            yield decode_batch(payload, default_id)


def _read_batch_file(path: Path) -> ChangeBatch:
    default_id = path.stem
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return ChangeBatch(
            batch_id=default_id,
            payload={"raw": str(path)},
            decode_error=f"bad batch file: {error}",
        )
    return decode_batch(payload, default_id)


def _iter_directory(path: Path) -> Iterator[ChangeBatch]:
    files = sorted(
        entry
        for entry in path.iterdir()
        if entry.is_file() and entry.suffix in (".json", ".jsonl")
    )
    for entry in files:
        if entry.suffix == ".jsonl":
            yield from _iter_jsonl(entry)
        else:
            yield _read_batch_file(entry)


def read_stream(path: Union[str, Path]) -> Iterator[ChangeBatch]:
    """Iterate the batches of a stream: a JSONL file or a batch directory."""
    path = Path(path)
    if path.is_dir():
        return _iter_directory(path)
    if not path.exists():
        raise StreamError(f"stream {path} does not exist")
    return _iter_jsonl(path)


def watch_stream(
    directory: Union[str, Path],
    idle_timeout: Optional[float] = None,
    should_stop=None,
    clock=None,
) -> Iterator[Optional[ChangeBatch]]:
    """Poll ``directory`` for new batch files and yield them in sorted-name
    order as they appear (the ``repro watch`` source).

    The generator never sleeps itself: a poll that finds nothing yields
    ``None``, and the consumer (the daemon) decides how long to wait before
    the next ``next()``.  It stops when ``should_stop()`` returns true or
    when no new file has appeared for ``idle_timeout`` seconds (``None`` =
    poll forever).
    """
    import time as _time

    directory = Path(directory)
    clock = clock or _time.monotonic
    seen = set()
    last_progress = clock()
    while True:
        if should_stop is not None and should_stop():
            return
        fresh = sorted(
            entry
            for entry in directory.iterdir()
            if entry.is_file()
            and entry.suffix == ".json"
            and entry.name not in seen
        ) if directory.is_dir() else []
        for entry in fresh:
            seen.add(entry.name)
            last_progress = clock()
            yield _read_batch_file(entry)
        if fresh:
            continue
        if idle_timeout is not None and clock() - last_progress >= idle_timeout:
            return
        yield None


# -- fingerprints -------------------------------------------------------------


def fib_fingerprint(verifier) -> str:
    """A stable hash of everything a batch can change: the converged FIB
    plus every policy verdict.  Quarantine records store the pre-batch
    fingerprint; the replay property test compares post-stream fingerprints
    against a direct application of the same batches."""
    digest = hashlib.sha256()
    for entry in sorted(str(e) for e in verifier.generator.control_plane.fib()):
        digest.update(entry.encode())
        digest.update(b"\n")
    for status in sorted(
        (status.policy.name, status.holds)
        for status in verifier.checker.statuses()
    ):
        digest.update(repr(status).encode())
        digest.update(b"\n")
    return digest.hexdigest()
