"""repro.telemetry — spans, counters, and exporters for the pipeline.

The observability layer every benchmark and perf PR reads from:

- :mod:`repro.telemetry.tracer` — nested spans over monotonic clocks,
  with a process-global no-op default (:func:`span` costs ~nothing when
  tracing is off);
- :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms behind the same global-with-no-op-default pattern;
- :mod:`repro.telemetry.names` — the span taxonomy and metric catalogue;
- :mod:`repro.telemetry.exporters` — Chrome trace-event JSON (Perfetto),
  Prometheus text exposition, and a human-readable summary tree.
"""

from repro.telemetry import names
from repro.telemetry.atomic import atomic_write_text
from repro.telemetry.exporters import (
    chrome_trace,
    chrome_trace_events,
    prometheus_text,
    summary_tree,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    set_metrics,
)
from repro.telemetry.tracer import (
    NullTracer,
    Span,
    Tracer,
    export_spans,
    get_tracer,
    graft_spans,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "names",
    "atomic_write_text",
    "chrome_trace",
    "chrome_trace_events",
    "prometheus_text",
    "summary_tree",
    "LATENCY_BUCKETS",
    "WORK_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "set_metrics",
    "NullTracer",
    "Span",
    "Tracer",
    "export_spans",
    "get_tracer",
    "graft_spans",
    "set_tracer",
    "span",
    "tracing_enabled",
]
