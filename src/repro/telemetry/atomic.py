"""Crash-safe whole-file writes for telemetry artifacts.

Every telemetry file the toolchain emits — Chrome traces, Prometheus
expositions, health heartbeats, flight-recorder dumps — goes through
:func:`atomic_write_text`: the bytes land in a temporary file in the same
directory, are fsynced, and are renamed over the destination with
:func:`os.replace`.  A process killed mid-export therefore never leaves a
truncated artifact: the destination either still holds the previous
complete file or already holds the new one.  This is the same discipline
checkpoints use (:mod:`repro.resilience.checkpoint`).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

from repro.chaos.points import crash_point


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp_name = None
    try:
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=str(path.parent or ".")
        )
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("telemetry.export")
        os.replace(tmp_name, path)
        tmp_name = None
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
