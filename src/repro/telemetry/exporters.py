"""Exporters: Chrome trace-event JSON, Prometheus text, summary tree.

All three are pure functions of a :class:`~repro.telemetry.tracer.Tracer`
or :class:`~repro.telemetry.metrics.MetricsRegistry` — they read recorded
state and never mutate it, so exporting twice yields identical output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.names import HELP
from repro.telemetry.tracer import Span, Tracer

# -- Chrome trace-event JSON -------------------------------------------------


#: tid of main-process spans; grafted worker spans go on worker + 2 so
#: every pool worker gets its own lane in the viewer.
MAIN_TID = 1


def _span_tid(span: Span) -> int:
    worker = span.attributes.get("worker")
    if isinstance(worker, int) and worker >= 0:
        return worker + MAIN_TID + 1
    return MAIN_TID


def chrome_trace_events(tracer: Tracer, pid: int = 1) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event *complete* events (``ph: "X"``).

    Timestamps are microseconds relative to the tracer's origin, which is
    what Perfetto and ``chrome://tracing`` expect; span attributes become
    the event's ``args``.  Nesting is reconstructed by the viewer from
    containment, so parent ids ride along in ``args`` only as a debugging
    aid.  Spans grafted from pool workers (they carry a ``worker``
    attribute) are placed on per-worker ``tid`` lanes — replica clocks are
    the same CLOCK_MONOTONIC domain as the parent's, so their intervals
    sit correctly under the dispatching span's wall-clock extent.
    """
    events: List[Dict[str, Any]] = []
    for span in sorted(tracer.finished, key=lambda s: (s.start, s.span_id)):
        if span.end is None:
            continue
        args = {k: _jsonable(v) for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start - tracer.origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": _span_tid(span),
                "args": args,
            }
        )
    return events


def chrome_trace(tracer: Tracer) -> str:
    """The JSON object format (``{"traceEvents": [...]}``), which Perfetto
    accepts directly."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    return json.dumps(payload, indent=1)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# -- Prometheus text exposition ----------------------------------------------


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """The Prometheus text exposition format (version 0.0.4).

    Instruments are emitted name-sorted; histograms expand to the
    conventional ``_bucket``/``_sum``/``_count`` series with cumulative
    ``le`` buckets and a final ``+Inf``.
    """
    lines: List[str] = []
    emitted_header = set()

    def header(name: str, kind: str) -> None:
        if name in emitted_header:
            return
        emitted_header.add(name)
        help_text = registry.help.get(name) or HELP.get(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        header(counter.name, "counter")
        lines.append(
            f"{counter.name}{_format_labels(counter.labels)} "
            f"{_format_value(counter.value)}"
        )
    for gauge in registry.gauges():
        header(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_format_labels(gauge.labels)} "
            f"{_format_value(gauge.value)}"
        )
    for histogram in registry.histograms():
        header(histogram.name, "histogram")
        cumulative = histogram.cumulative()
        for boundary, count in zip(histogram.boundaries, cumulative):
            le = f'le="{_format_value(boundary)}"'
            lines.append(
                f"{histogram.name}_bucket"
                f"{_format_labels(histogram.labels, le)} {count}"
            )
        inf = 'le="+Inf"'
        lines.append(
            f"{histogram.name}_bucket"
            f"{_format_labels(histogram.labels, inf)} {histogram.count}"
        )
        lines.append(
            f"{histogram.name}_sum{_format_labels(histogram.labels)} "
            f"{repr(float(histogram.total))}"
        )
        lines.append(
            f"{histogram.name}_count{_format_labels(histogram.labels)} "
            f"{histogram.count}"
        )
    return "\n".join(lines) + "\n"


# -- human-readable summary tree ---------------------------------------------


def summary_tree(tracer: Tracer, attributes: bool = True) -> str:
    """Indented per-span breakdown with durations and work attributes::

        realconfig.verify                         12.3 ms
          realconfig.config_diff                   0.4 ms
          realconfig.generation                    6.0 ms  [facts=12]
            ddlog.epoch                            5.7 ms  [records=240 ...]
    """
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        line = f"{label:<44s} {span.duration * 1000:9.2f} ms"
        if attributes and span.attributes:
            parts = " ".join(
                f"{k}={_jsonable(v)}" for k, v in sorted(span.attributes.items())
            )
            line += f"  [{parts}]"
        lines.append(line)
        for child in tracer.children_of(span):
            visit(child, depth + 1)

    for root in tracer.roots():
        visit(root, 0)
    return "\n".join(lines)
