"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Like the tracer, metrics dispatch through a process-global registry whose
default is a no-op: ``get_metrics().counter(...)`` returns a shared inert
instrument unless a real :class:`MetricsRegistry` has been installed, so
instrumented hot paths pay only a lookup when metrics are off.

Instruments are keyed by ``(name, sorted label items)``; histograms use
fixed bucket boundaries declared at creation, so two runs of the same
workload produce byte-identical Prometheus expositions (no wall clock, no
RNG).  The metric name catalogue lives in :mod:`repro.telemetry.names`.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram boundaries for stage latencies, in seconds.  Spaced
#: roughly 2.5x from 100µs to 30s — wide enough for both a one-link change
#: on a small fat-tree and a full initial convergence at paper scale.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default boundaries for work counts per verification (records, moves...).
WORK_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500,
    1000, 2000, 5000, 10000, 50000, 100000, 1000000,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative histogram over fixed, sorted bucket boundaries.

    ``counts[i]`` counts observations ``<= boundaries[i]``; observations
    above the last boundary only land in the implicit ``+Inf`` bucket
    (tracked by ``count``).
    """

    __slots__ = ("name", "labels", "boundaries", "counts", "count", "total")

    def __init__(
        self, name: str, labels: LabelKey, boundaries: Sequence[float]
    ) -> None:
        if not boundaries:
            raise ValueError(f"histogram {name} needs at least one bucket")
        ordered = list(boundaries)
        if ordered != sorted(ordered):
            raise ValueError(f"histogram {name} boundaries must be sorted")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"histogram {name} boundaries must be distinct")
        self.name = name
        self.labels = labels
        self.boundaries: List[float] = ordered
        #: non-cumulative per-bucket counts; exposition cumulates.
        self.counts: List[int] = [0] * len(ordered)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        index = bisect.bisect_left(self.boundaries, value)
        if index < len(self.counts):
            self.counts[index] += 1

    def cumulative(self) -> List[int]:
        """Per-boundary cumulative counts (the Prometheus ``le`` series)."""
        out: List[int] = []
        running = 0
        for bucket in self.counts:
            running += bucket
            out.append(running)
        return out


class _NullInstrument:
    """Absorbs every instrument operation; shared singleton."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The do-nothing default registry."""

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: str,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT


class MetricsRegistry:
    """Creates-or-returns instruments keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        #: name -> help text, registered via describe().
        self.help: Dict[str, str] = {}

    def describe(self, name: str, text: str) -> None:
        self.help[name] = text

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], buckets)
        elif list(buckets) != instrument.boundaries:
            raise ValueError(
                f"histogram {name} re-declared with different buckets"
            )
        return instrument

    # -- introspection -------------------------------------------------------

    def counters(self) -> List[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Current value of a counter or gauge (None when never touched)."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return float(self._counters[key].value)
        if key in self._gauges:
            return float(self._gauges[key].value)
        return None


#: The process-global registry instrumented code dispatches to.
_GLOBAL_METRICS: "NullMetrics | MetricsRegistry" = NullMetrics()


def get_metrics() -> "NullMetrics | MetricsRegistry":
    return _GLOBAL_METRICS


def set_metrics(
    registry: "NullMetrics | MetricsRegistry",
) -> "NullMetrics | MetricsRegistry":
    """Install the process-global registry; returns the previous one."""
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous
