"""The metric name catalogue.

One constant per metric, with units in the name suffix following
Prometheus conventions (``_total`` for counters, ``_seconds`` for time
histograms).  Instrumented modules import these constants instead of
spelling strings, and the exporters pull the help text from
:data:`HELP` — keeping the catalogue, the docs, and the exposition in
sync.  Span names used across the pipeline are collected here too
(:data:`SPAN_VERIFY` etc.) so tests and exporters don't hard-code them.
"""

from __future__ import annotations

# -- span taxonomy -----------------------------------------------------------
# realconfig.verify                    one verification (root)
#   realconfig.config_diff             change -> snapshot + line diff
#   realconfig.lint_gate               pre-flight static analysis
#   realconfig.generation              stage 1: config -> rule updates
#     ddlog.epoch                      one differential epoch
#   realconfig.model_update            stage 2: rules -> EC moves
#   realconfig.policy_check            stage 3: moves -> policy flips
#     lint.run / lint.incremental      (under lint_gate)

SPAN_VERIFY = "realconfig.verify"
SPAN_CONFIG_DIFF = "realconfig.config_diff"
SPAN_LINT_GATE = "realconfig.lint_gate"
SPAN_GENERATION = "realconfig.generation"
SPAN_MODEL_UPDATE = "realconfig.model_update"
SPAN_POLICY_CHECK = "realconfig.policy_check"
SPAN_DDLOG_EPOCH = "ddlog.epoch"
SPAN_LINT_RUN = "lint.run"
SPAN_LINT_INCREMENTAL = "lint.incremental"
#: Prefix of per-pass spans: ``lint.pass.<CODE>`` (one child per pass
#: under lint.run / lint.incremental, e.g. ``lint.pass.LNK``).
SPAN_LINT_PASS_PREFIX = "lint.pass."

# Resilience spans.  SPAN_TXN_ROLLBACK appears under the verify root only
# on the *failure* path (the success path keeps the exact STAGE_SPANS
# children the telemetry contract pins); audit/checkpoint/restore run
# outside any verification.
SPAN_TXN_ROLLBACK = "resilience.rollback"
SPAN_REBUILD = "resilience.rebuild"
SPAN_AUDIT = "resilience.audit"
SPAN_CHECKPOINT = "resilience.checkpoint"
SPAN_RESTORE = "resilience.restore"

# Serving spans.  serve.batch is the root of one stream batch; each retry
# attempt opens a serve.attempt child whose own child is the usual
# realconfig.verify tree (or resilience.rebuild in degraded mode).
SPAN_SERVE_BATCH = "serve.batch"
SPAN_SERVE_ATTEMPT = "serve.attempt"
SPAN_SERVE_QUARANTINE = "serve.quarantine"

# Multi-tenant service spans (repro.tenants).  tenants.hydrate covers one
# checkpoint-or-snapshot restore of a cold tenant (attr tenant=ID,
# source=checkpoint|snapshot); tenants.evict covers checkpointing a hot
# tenant out of the LRU (attr reason=budget|request|shutdown).
SPAN_TENANT_HYDRATE = "tenants.hydrate"
SPAN_TENANT_EVICT = "tenants.evict"

# Parallel-execution spans (workers > 1).  parallel.shard covers one
# fan-out/gather round against the worker pool (phase="model" for the
# staged batch replay, phase="policy" for per-EC analysis); parallel.merge
# covers the deferred commit on the main process (staged replay + merged
# move application).  The verify root keeps all five STAGE_SPANS children
# either way — parallel runs add these as extra children, never replace.
SPAN_PARALLEL_SHARD = "parallel.shard"
SPAN_PARALLEL_MERGE = "parallel.merge"
SPAN_PARALLEL_SEED = "parallel.seed"

# Worker-side spans (recorded inside pool workers and grafted under the
# dispatching parallel.shard/parallel.seed span by the executor, so one
# trace shows the whole cross-process round).  The parallel.worker root
# carries worker=IDX, phase, and queue_wait_seconds (dispatch-to-dequeue
# latency on the shared monotonic clock); its children break the round
# into replay (phase A), reclassify (phase B net moves for the shard),
# sync (merged-move application), and analyze (per-EC path analyses).
SPAN_WORKER = "parallel.worker"
SPAN_WORKER_REPLAY = "parallel.worker.replay"
SPAN_WORKER_RECLASSIFY = "parallel.worker.reclassify"
SPAN_WORKER_SYNC = "parallel.worker.sync"
SPAN_WORKER_ANALYZE = "parallel.worker.analyze"
SPAN_WORKER_SEED = "parallel.worker.seed"

#: The five stage children every root verification span carries.
STAGE_SPANS = (
    SPAN_CONFIG_DIFF,
    SPAN_LINT_GATE,
    SPAN_GENERATION,
    SPAN_MODEL_UPDATE,
    SPAN_POLICY_CHECK,
)

# -- pipeline ----------------------------------------------------------------
VERIFICATIONS = "repro_verifications_total"
STAGE_SECONDS = "repro_stage_seconds"  # histogram, label: stage

# -- ddlog engine ------------------------------------------------------------
DDLOG_EPOCHS = "repro_ddlog_epochs_total"
DDLOG_ITERATIONS = "repro_ddlog_iterations_total"
DDLOG_MESSAGES = "repro_ddlog_messages_total"
DDLOG_RECORDS = "repro_ddlog_records_total"
DDLOG_RECOMPUTES = "repro_ddlog_recompute_calls_total"
DDLOG_STATE_RECORDS = "repro_ddlog_state_records"  # gauge

# -- model update (BatchUpdater) ---------------------------------------------
MODEL_RULES_INSERTED = "repro_model_rules_inserted_total"
MODEL_RULES_DELETED = "repro_model_rules_deleted_total"
MODEL_EC_MOVES = "repro_model_ec_moves_total"
MODEL_EC_SPLITS = "repro_model_ec_splits_total"
MODEL_EC_MERGES = "repro_model_ec_merges_total"
MODEL_ECS_AFFECTED = "repro_model_ecs_affected_total"
MODEL_PORTS_TOUCHED = "repro_model_ports_touched_total"
MODEL_ECS = "repro_model_ecs"  # gauge

# -- policy checker ----------------------------------------------------------
POLICY_REGISTERED = "repro_policy_registered"  # gauge
POLICY_RECHECKED = "repro_policy_rechecked_total"
POLICY_FLIPPED = "repro_policy_flipped_total"
POLICY_ECS_ANALYZED = "repro_policy_ecs_analyzed_total"
POLICY_PAIRS_AFFECTED = "repro_policy_pairs_affected_total"

# -- lint --------------------------------------------------------------------
LINT_UNITS_RUN = "repro_lint_units_run_total"
LINT_UNITS_REUSED = "repro_lint_units_reused_total"
LINT_DIAGNOSTICS = "repro_lint_diagnostics_total"
LINT_OBJECTS_SCANNED = "repro_lint_objects_scanned_total"
LINT_PASS_FINDINGS = "repro_lint_pass_findings_total"  # label: pass
LINT_PASS_OBJECTS = "repro_lint_pass_objects_scanned_total"  # label: pass

# -- resilience --------------------------------------------------------------
TXN_COMMITS = "repro_txn_commits_total"
TXN_ROLLBACKS = "repro_txn_rollbacks_total"
REBUILDS = "repro_rebuilds_total"
AUDITS = "repro_audits_total"
AUDIT_DRIFT = "repro_audit_drift_total"
CHECKPOINT_BYTES = "repro_checkpoint_bytes"  # gauge
CHECKPOINT_GENERATIONS = "repro_checkpoint_generations"  # gauge
CHECKPOINT_FALLBACKS = "repro_checkpoint_fallbacks_total"
CHECKPOINT_WRITE_FAILURES = "repro_checkpoint_write_failures_total"
JOURNAL_DEGRADED = "repro_journal_degraded"  # gauge: 1 degraded, 0 ok

# -- parallel execution ------------------------------------------------------
PARALLEL_WORKERS = "repro_parallel_workers"  # gauge
PARALLEL_POOL_UP = "repro_parallel_pool_up"  # gauge: 1 pool live, 0 down
PARALLEL_EPOCHS = "repro_parallel_epochs_total"
PARALLEL_RESEEDS = "repro_parallel_reseeds_total"
PARALLEL_TEARDOWNS = "repro_parallel_teardowns_total"
PARALLEL_RESPAWNS = "repro_parallel_respawns_total"
PARALLEL_INLINE_FALLBACKS = "repro_parallel_inline_fallbacks_total"
PARALLEL_SHARD_MOVES = "repro_parallel_shard_moves_total"
PARALLEL_REMOTE_ANALYSES = "repro_parallel_remote_analyses_total"

# -- observability (repro.obs) -----------------------------------------------
OBS_EVENTS = "repro_obs_events_total"  # label: event
OBS_JOURNAL_SEQ = "repro_obs_journal_seq"  # gauge
OBS_HTTP_REQUESTS = "repro_obs_http_requests_total"  # label: endpoint
OBS_FLIGHT_DUMPS = "repro_obs_flight_dumps_total"

# -- serving -----------------------------------------------------------------
SERVE_BATCHES = "repro_serve_batches_total"
SERVE_BATCHES_OK = "repro_serve_batches_ok_total"
SERVE_RETRIES = "repro_serve_retries_total"
SERVE_QUARANTINED = "repro_serve_quarantined_total"
SERVE_LINT_REJECTED = "repro_serve_lint_rejected_total"
SERVE_DEADLINE_EXCEEDED = "repro_serve_deadline_exceeded_total"
SERVE_BREAKER_OPENS = "repro_serve_breaker_opens_total"
SERVE_REBUILD_BATCHES = "repro_serve_rebuild_batches_total"
SERVE_QUEUE_DEPTH = "repro_serve_queue_depth"  # gauge
SERVE_BREAKER_STATE = "repro_serve_breaker_state"  # gauge: 0/1/2
SERVE_HEALTHY = "repro_serve_healthy"  # gauge: 1 serving, 0 stopped

# -- multi-tenant service (repro.tenants) --------------------------------------
TENANTS_REGISTERED = "repro_tenants_registered"  # gauge
TENANTS_HYDRATED = "repro_tenants_hydrated"  # gauge
TENANTS_DEGRADED = "repro_tenants_degraded"  # gauge
TENANT_HYDRATIONS = "repro_tenant_hydrations_total"
TENANT_EVICTIONS = "repro_tenant_evictions_total"
TENANT_SHED = "repro_tenant_shed_total"
TENANT_FOOTPRINT_BYTES = "repro_tenants_footprint_bytes"  # gauge (estimate)

#: name -> help text (the Prometheus ``# HELP`` line and the docs table).
HELP = {
    VERIFICATIONS: "Verifications run (initial load and per change batch)",
    STAGE_SECONDS: "Per-stage verification latency in seconds (label: stage)",
    DDLOG_EPOCHS: "Differential-dataflow epochs executed",
    DDLOG_ITERATIONS: "Fixpoint iterations swept across all epochs",
    DDLOG_MESSAGES: "Delta messages routed between operators",
    DDLOG_RECORDS: "Record diffs processed by operators",
    DDLOG_RECOMPUTES: "Reduce-group recompute calls",
    DDLOG_STATE_RECORDS: "Record diffs stored across operator histories",
    MODEL_RULES_INSERTED: "Forwarding/filter rules inserted into the model",
    MODEL_RULES_DELETED: "Forwarding/filter rules deleted from the model",
    MODEL_EC_MOVES: "EC port transitions, including transient ones",
    MODEL_EC_SPLITS: "Equivalence-class splits during model updates",
    MODEL_EC_MERGES: "Equivalence-class merges during model updates",
    MODEL_ECS_AFFECTED: "Distinct ECs with a net port change per batch",
    MODEL_PORTS_TOUCHED: "Distinct (device, port) endpoints involved in moves",
    MODEL_ECS: "Live equivalence classes in the model",
    POLICY_REGISTERED: "Policies currently registered on the checker",
    POLICY_RECHECKED: "Policy re-evaluations triggered by affected ECs/pairs",
    POLICY_FLIPPED: "Policies whose verdict flipped (either direction)",
    POLICY_ECS_ANALYZED: "Per-EC path analyses performed",
    POLICY_PAIRS_AFFECTED: "Endpoint pairs whose delivered-EC set was touched",
    LINT_UNITS_RUN: "Lint (pass, device) units executed",
    LINT_UNITS_REUSED: "Lint units reused from the previous result",
    LINT_DIAGNOSTICS: "Lint diagnostics emitted (post-suppression)",
    LINT_OBJECTS_SCANNED: "Dependency-graph objects analyzed by lint units",
    LINT_PASS_FINDINGS: "Diagnostics emitted per lint pass (label: pass)",
    LINT_PASS_OBJECTS: "Objects analyzed per lint pass (label: pass)",
    TXN_COMMITS: "Verification transactions committed",
    TXN_ROLLBACKS: "Verification transactions rolled back after a failure",
    REBUILDS: "Full verifier rebuilds (rollback fallback or drift recovery)",
    AUDITS: "Drift audits run against a from-scratch recomputation",
    AUDIT_DRIFT: "Drift audits that found a divergence",
    CHECKPOINT_BYTES: "Size of the last checkpoint written, in bytes",
    CHECKPOINT_GENERATIONS: "Checkpoint generations on disk after the last write",
    CHECKPOINT_FALLBACKS: "Checkpoint reads served by an older generation",
    CHECKPOINT_WRITE_FAILURES: "Checkpoint writes that failed (service kept running)",
    JOURNAL_DEGRADED: "Journal degradation (1 in-memory only after a write error)",
    PARALLEL_WORKERS: "Configured worker processes for the parallel hot path",
    PARALLEL_POOL_UP: "Worker-pool liveness (1 spawned and seeded, 0 down)",
    PARALLEL_EPOCHS: "Epoch-stamped batch rounds broadcast to the pool",
    PARALLEL_RESEEDS: "Full replica reseeds (pool start, drift, or invalidation)",
    PARALLEL_TEARDOWNS: "Worker-pool teardowns (failure, abort, or drift)",
    PARALLEL_RESPAWNS: "Worker pools respawned after a worker died mid-round",
    PARALLEL_INLINE_FALLBACKS: "Batches degraded to the inline backend after pool loss",
    PARALLEL_SHARD_MOVES: "Net EC moves computed by pool workers",
    PARALLEL_REMOTE_ANALYSES: "Per-EC path analyses computed by pool workers",
    OBS_EVENTS: "Structured journal events emitted (label: event)",
    OBS_JOURNAL_SEQ: "Sequence number of the latest journal event",
    OBS_HTTP_REQUESTS: "Introspection-server requests served (label: endpoint)",
    OBS_FLIGHT_DUMPS: "Flight-recorder dumps written to the dead-letter directory",
    SERVE_BATCHES: "Change batches pulled off the stream by the daemon",
    SERVE_BATCHES_OK: "Change batches verified and committed",
    SERVE_RETRIES: "Batch verification attempts retried after a failure",
    SERVE_QUARANTINED: "Batches written to the dead-letter directory",
    SERVE_LINT_REJECTED: "Batches quarantined by the enforce-mode lint gate",
    SERVE_DEADLINE_EXCEEDED: "Verification attempts aborted by the deadline",
    SERVE_BREAKER_OPENS: "Circuit-breaker transitions into the open state",
    SERVE_REBUILD_BATCHES: "Batches served in degraded full-rebuild mode",
    SERVE_QUEUE_DEPTH: "Batches buffered in the daemon's bounded queue",
    SERVE_BREAKER_STATE: "Breaker state (0 closed, 1 half-open, 2 open)",
    SERVE_HEALTHY: "Daemon liveness (1 while serving, 0 after shutdown)",
    TENANTS_REGISTERED: "Tenants registered with the multi-tenant service",
    TENANTS_HYDRATED: "Tenants currently holding a live verifier in memory",
    TENANTS_DEGRADED: "Tenants currently degraded (breaker open or failed)",
    TENANT_HYDRATIONS: "Cold-tenant restores (checkpoint or snapshot)",
    TENANT_EVICTIONS: "Hot tenants checkpointed out of the LRU budget",
    TENANT_SHED: "Batches refused by per-tenant admission control",
    TENANT_FOOTPRINT_BYTES: "Estimated bytes held by hydrated tenant models",
}
