"""Span-based tracing for the incremental pipeline.

A :class:`Tracer` records a tree of named, timed spans.  Instrumented code
never holds a tracer reference — it calls the module-level :func:`span`
context manager, which dispatches to the process-global tracer.  The
default global tracer is a :class:`NullTracer` whose ``span()`` returns a
cached, stateless no-op context manager, so instrumentation adds only a
global lookup and a method call when tracing is off.

Clocks are monotonic (:func:`time.perf_counter`); spans never read the
wall clock, so traces are safe to diff across runs.

Typical instrumentation::

    from repro.telemetry import span

    with span("model.batch", order=self.order) as sp:
        ...
        sp.set("ec_moves", result.num_moves)

Enabling collection (e.g. from the CLI)::

    tracer = Tracer()
    set_tracer(tracer)
    ...
    chrome_trace(tracer)   # exporters read tracer.finished
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One named, timed interval with attributes and child spans."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "start",
        "end",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        start: float,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) an attribute."""
        self.attributes[key] = value

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a numeric attribute (missing counts as 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration * 1000:.3f}ms)"
        )


class _SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._end(self._span)
        return None


class _NullSpan:
    """Absorbs every span operation; shared singleton, stateless."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, amount: int = 1) -> None:
        pass


class _NullSpanContext:
    """No-op context manager; shared singleton, reentrant."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The do-nothing default tracer: no allocation, no recording."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def reset(self) -> None:
        pass


class Tracer:
    """Collects a tree of finished spans.

    Nesting is tracked with an explicit stack: a span opened while another
    is open becomes its child.  The stack discipline matches ``with``
    blocks, which is the only way spans are opened.
    """

    enabled = True

    def __init__(self) -> None:
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        #: perf_counter() origin, so exported timestamps start near zero.
        self.origin = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        return _SpanContext(self, name, attributes)

    def _begin(self, name: str, attributes: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        opened = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            start=time.perf_counter(),
            attributes=attributes,
        )
        self._next_id += 1
        self._stack.append(opened)
        return opened

    def _end(self, closing: Span) -> None:
        closing.end = time.perf_counter()
        # Tolerate a mismatched close (shouldn't happen with `with` blocks):
        # pop back to the closing span.
        while self._stack:
            top = self._stack.pop()
            if top is closing:
                break
        self.finished.append(closing)

    def reset(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self._next_id = 1
        self.origin = time.perf_counter()

    # -- introspection -------------------------------------------------------

    def roots(self) -> List[Span]:
        """Finished top-level spans, in completion order."""
        return [s for s in self.finished if s.parent_id is None]

    def children_of(self, parent: Span) -> List[Span]:
        """Finished direct children of ``parent``, ordered by start time."""
        kids = [s for s in self.finished if s.parent_id == parent.span_id]
        kids.sort(key=lambda s: s.start)
        return kids

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished if s.name == name]


# -- cross-process span transport ---------------------------------------------
#
# Worker processes record spans on their own local Tracer, serialize the
# finished tree with export_spans(), and ship it back over the pool's
# result queue; the parent grafts it under the dispatching span with
# graft_spans().  Span clocks are time.perf_counter(), which on Linux is
# CLOCK_MONOTONIC — a system-wide clock — so worker timestamps line up
# with the parent's timeline for forked workers; the inline backend runs
# in-process and needs no alignment at all.


def export_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's finished spans as plain picklable dicts, preserving
    ids, nesting, timestamps, and attributes."""
    records: List[Dict[str, Any]] = []
    for finished in tracer.finished:
        if finished.end is None:
            continue
        records.append(
            {
                "name": finished.name,
                "span_id": finished.span_id,
                "parent_id": finished.parent_id,
                "depth": finished.depth,
                "start": finished.start,
                "end": finished.end,
                "attributes": dict(finished.attributes),
            }
        )
    return records


def graft_spans(
    tracer: Tracer,
    parent: Span,
    records: List[Dict[str, Any]],
    **extra_attributes: Any,
) -> List[Span]:
    """Attach spans exported from another tracer (usually another process)
    under ``parent``.

    Spans are re-identified from ``tracer``'s id sequence so grafted ids
    never collide with native ones; internal parent/child links are
    remapped, and any span whose parent is not in the shipment (a worker
    root) becomes a direct child of ``parent``.  ``extra_attributes``
    (e.g. ``worker=3``) are stamped on every grafted span."""
    if not records:
        return []
    id_map: Dict[int, Span] = {}
    grafted: List[Span] = []
    base_depth = parent.depth + 1
    for record in records:
        sprout = Span(
            name=record["name"],
            span_id=tracer._next_id,
            parent_id=None,
            depth=base_depth + record["depth"],
            start=record["start"],
            attributes=dict(record["attributes"]),
        )
        tracer._next_id += 1
        sprout.end = record["end"]
        sprout.attributes.update(extra_attributes)
        id_map[record["span_id"]] = sprout
        grafted.append(sprout)
    for record, sprout in zip(records, grafted):
        old_parent = record["parent_id"]
        if old_parent is not None and old_parent in id_map:
            sprout.parent_id = id_map[old_parent].span_id
        else:
            sprout.parent_id = parent.span_id
    tracer.finished.extend(grafted)
    return grafted


#: The process-global tracer instrumented code dispatches to.
_GLOBAL_TRACER: "NullTracer | Tracer" = NullTracer()


def get_tracer() -> "NullTracer | Tracer":
    return _GLOBAL_TRACER


def set_tracer(tracer: "NullTracer | Tracer") -> "NullTracer | Tracer":
    """Install ``tracer`` as the process-global tracer; returns the
    previous one so callers can restore it."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def span(name: str, **attributes: Any):
    """Open a span on the current global tracer (no-op by default)."""
    return _GLOBAL_TRACER.span(name, **attributes)


def tracing_enabled() -> bool:
    return _GLOBAL_TRACER.enabled
