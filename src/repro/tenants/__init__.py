"""repro.tenants — the multi-tenant verification service.

One ``repro serve --tenants DIR`` process serves many networks at once,
each tenant a private fault domain built from the single-tenant
robustness stack (:mod:`repro.serve`):

- :mod:`repro.tenants.registry` — per-tenant state (verifier engine,
  breaker, cursor, checkpoint lineage, dead-letter box) plus the
  hydration LRU: a memory budget over live models, cold tenants evicted
  to checkpoints and restored on demand with single-flight coalescing;
- :mod:`repro.tenants.scheduler` — admission control (bounded
  per-tenant queues, backpressure, load-shed) and weighted-fair
  scheduling so no tenant starves another;
- :mod:`repro.tenants.service` — the cooperative serving loop, with
  tenant-tagged journal/metrics, a ``/tenants`` introspection endpoint,
  operator controls, and checkpoint-everyone graceful shutdown.
"""

from repro.tenants.registry import (
    CHECKPOINT_FILE,
    DEADLETTER_DIR,
    EVICT_MARKER,
    SNAPSHOT_DIR,
    STREAM_FILE,
    TENANT_CONFIG_FILE,
    TenantConfig,
    TenantError,
    TenantRegistry,
    TenantState,
    discover_tenants,
    estimate_footprint,
)
from repro.tenants.scheduler import FairScheduler, TenantQueue
from repro.tenants.service import TenantService, TenantServiceOptions

__all__ = [
    "CHECKPOINT_FILE",
    "DEADLETTER_DIR",
    "EVICT_MARKER",
    "SNAPSHOT_DIR",
    "STREAM_FILE",
    "TENANT_CONFIG_FILE",
    "TenantConfig",
    "TenantError",
    "TenantRegistry",
    "TenantState",
    "discover_tenants",
    "estimate_footprint",
    "FairScheduler",
    "TenantQueue",
    "TenantService",
    "TenantServiceOptions",
]
