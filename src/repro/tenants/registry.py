"""Per-tenant state: layout, lifecycle, and the hydration LRU.

One tenant is one directory::

    TENANTS_DIR/<tenant-id>/
        tenant.json      {"id": ..., "weight": ...}   (optional; defaults)
        snapshot/        the base configuration snapshot
        stream.jsonl     the tenant's change-batch stream
        checkpoint.ckpt  written on evict / periodic / shutdown
        deadletter/      the tenant's private poison-batch quarantine

and one :class:`TenantState` in memory: identity + weight, the
**resident** robustness state that must survive evict/hydrate cycles
(circuit breaker, cumulative :class:`~repro.serve.engine.ServeStats`,
stream cursor), and — only while hydrated — a live
:class:`~repro.serve.engine.BatchEngine` holding the verifier.

:class:`TenantRegistry` owns the fleet and enforces the **memory
budget**: hydrated tenants form an LRU; hydrating one more tenant than
the budget allows evicts the least-recently-served tenant to its
checkpoint first.  Hydration is **single-flight**: concurrent requests
for the same cold tenant coalesce onto one restore (the thundering-herd
guard), with waiters sharing the winner's engine or exception.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.config.io import load_snapshot
from repro.config.schema import ConfigError
from repro.core.realconfig import RealConfig
from repro.obs import (
    EVENT_CHECKPOINT_FAILED,
    EVENT_CHECKPOINT_FALLBACK,
    EVENT_TENANT_EVICTED,
    EVENT_TENANT_HYDRATED,
    EventJournal,
    FlightRecorder,
    TenantJournal,
)
from repro.resilience.checkpoint import (
    CheckpointError,
    read_checkpoint_extras,
    restore_checkpoint,
    write_checkpoint,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.deadletter import DeadLetterBox
from repro.serve.engine import BatchEngine, ServeOptions, ServeStats
from repro.telemetry import get_metrics, names, span

TENANT_CONFIG_FILE = "tenant.json"
SNAPSHOT_DIR = "snapshot"
STREAM_FILE = "stream.jsonl"
CHECKPOINT_FILE = "checkpoint.ckpt"
DEADLETTER_DIR = "deadletter"
#: Dropping this file into a tenant directory asks a live service to
#: checkpoint-and-evict that tenant at its next control scan.
EVICT_MARKER = ".evict"


class TenantError(ConfigError):
    """Raised for malformed tenant directories or unknown tenant ids."""


class TenantConfig:
    """Identity + layout of one tenant directory."""

    def __init__(
        self, tenant_id: str, root: Union[str, Path], weight: float = 1.0
    ) -> None:
        if not tenant_id:
            raise TenantError("tenant id must be non-empty")
        if weight <= 0:
            raise TenantError(f"tenant {tenant_id}: weight must be > 0")
        self.tenant_id = tenant_id
        self.root = Path(root)
        self.weight = float(weight)

    @property
    def snapshot_dir(self) -> Path:
        return self.root / SNAPSHOT_DIR

    @property
    def stream_file(self) -> Path:
        return self.root / STREAM_FILE

    @property
    def checkpoint_file(self) -> Path:
        return self.root / CHECKPOINT_FILE

    @property
    def deadletter_dir(self) -> Path:
        return self.root / DEADLETTER_DIR

    @property
    def evict_marker(self) -> Path:
        return self.root / EVICT_MARKER

    def save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"id": self.tenant_id, "weight": self.weight}
        (self.root / TENANT_CONFIG_FILE).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )

    @classmethod
    def load(cls, root: Union[str, Path]) -> "TenantConfig":
        root = Path(root)
        config_path = root / TENANT_CONFIG_FILE
        tenant_id = root.name
        weight = 1.0
        if config_path.exists():
            try:
                payload = json.loads(config_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise TenantError(
                    f"unreadable tenant config {config_path}: {error}"
                ) from error
            tenant_id = str(payload.get("id", tenant_id))
            weight = float(payload.get("weight", 1.0))
        if not (root / SNAPSHOT_DIR).is_dir():
            raise TenantError(
                f"tenant directory {root} has no {SNAPSHOT_DIR}/ snapshot"
            )
        return cls(tenant_id, root, weight=weight)


def discover_tenants(directory: Union[str, Path]) -> List[TenantConfig]:
    """All tenant directories under ``directory``, sorted by id.  A
    subdirectory is a tenant iff it holds a ``snapshot/``; anything else
    (control files, journals) is ignored."""
    directory = Path(directory)
    if not directory.is_dir():
        raise TenantError(f"{directory} is not a directory")
    configs = []
    for child in sorted(directory.iterdir()):
        if child.is_dir() and (child / SNAPSHOT_DIR).is_dir():
            configs.append(TenantConfig.load(child))
    return sorted(configs, key=lambda c: c.tenant_id)


def estimate_footprint(verifier: RealConfig) -> int:
    """Bytes one hydrated verifier roughly pins: the pickled size of its
    captured pipeline state (the same data a checkpoint holds).  An
    estimate, not an accounting — the LRU budget only needs a consistent
    relative measure across tenants."""
    payload = (
        verifier.generator.capture_state(),
        verifier.model.capture_state(),
        verifier.checker.capture_state(),
    )
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class TenantState:
    """Everything the service knows about one tenant.

    The breaker, stats, and cursor are *resident*: they live here, not
    in the engine, so evicting the tenant's model cannot launder away a
    tripping breaker or reset its quarantine count.
    """

    def __init__(self, config: TenantConfig, options: ServeOptions) -> None:
        self.config = config
        self.stats = ServeStats()
        self.breaker: Optional[CircuitBreaker] = None
        if options.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                failure_threshold=options.breaker_threshold,
                cooldown_seconds=options.breaker_cooldown,
            )
        #: Stream entries fully disposed of (committed or quarantined).
        self.cursor = 0
        self.engine: Optional[BatchEngine] = None
        self.footprint = 0
        self.hydrations = 0
        self.evictions = 0
        self.shed = 0
        self.failed = False
        #: The last evict/periodic checkpoint write failed (storage
        #: fault): the tenant keeps serving from memory but its durable
        #: lineage is stale — reported as degraded until a write lands.
        self.checkpoint_failed = False
        self.last_error: Optional[str] = None
        if config.checkpoint_file.exists():
            try:
                extras = read_checkpoint_extras(config.checkpoint_file)
            except CheckpointError:
                # An unreadable checkpoint must not make the tenant
                # inadmissible: keep it registered and let hydration
                # surface the error inside the tenant's fault domain.
                extras = {}
            serve_extras = extras.get("serve") or {}
            self.cursor = int(serve_extras.get("cursor", 0))

    @property
    def tenant_id(self) -> str:
        return self.config.tenant_id

    @property
    def hydrated(self) -> bool:
        return self.engine is not None

    @property
    def degraded(self) -> bool:
        """Reduced service: failed outright, breaker forcing rebuild
        mode, or poison already quarantined from this tenant's stream."""
        from repro.serve.breaker import OPEN

        if self.failed or self.checkpoint_failed:
            return True
        if self.breaker is not None and self.breaker.state == OPEN:
            return True
        return self.stats.quarantined > 0

    def describe(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant_id,
            "weight": self.config.weight,
            "status": (
                "failed"
                if self.failed
                else ("hydrated" if self.hydrated else "evicted")
            ),
            "degraded": self.degraded,
            "checkpoint_failed": self.checkpoint_failed,
            "cursor": self.cursor,
            "footprint_bytes": self.footprint,
            "hydrations": self.hydrations,
            "evictions": self.evictions,
            "shed": self.shed,
            "breaker": self.breaker.snapshot() if self.breaker else None,
            "batches_seen": self.stats.batches_seen,
            "batches_ok": self.stats.batches_ok,
            "quarantined": self.stats.quarantined,
            "retries": self.stats.retries,
            "new_violations": self.stats.new_violations,
            "last_error": self.last_error,
        }


class _Flight:
    """One in-progress hydration; waiters share its outcome."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.engine: Optional[BatchEngine] = None
        self.error: Optional[BaseException] = None


class TenantRegistry:
    """The fleet: tenant states, the hydration LRU, and the budget.

    ``memory_budget_bytes`` of 0 means unlimited (no eviction pressure).
    ``journal`` is the shared service journal; each tenant's engine gets
    a :class:`~repro.obs.TenantJournal` view over it.
    """

    def __init__(
        self,
        options: ServeOptions,
        journal: Optional[EventJournal] = None,
        recorder: Optional[FlightRecorder] = None,
        memory_budget_bytes: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.options = options
        self.journal = journal if journal is not None else EventJournal(None)
        self.recorder = (
            recorder if recorder is not None else FlightRecorder()
        )
        self.memory_budget_bytes = memory_budget_bytes
        self._clock = clock
        self._sleep = sleep
        self._states: Dict[str, TenantState] = {}
        #: Hydrated tenants, least-recently-served first.
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._flight_lock = threading.Lock()
        self._in_flight: Dict[str, _Flight] = {}
        #: Actual restore executions (the single-flight test counts these
        #: against the number of concurrent hydrate() callers).
        self.restores_performed = 0

    # -- membership ------------------------------------------------------------

    def register(self, config: TenantConfig) -> TenantState:
        if config.tenant_id in self._states:
            raise TenantError(f"tenant {config.tenant_id} already registered")
        state = TenantState(config, self.options)
        self._states[config.tenant_id] = state
        self._set_gauge(names.TENANTS_REGISTERED, len(self._states))
        return state

    def state(self, tenant_id: str) -> TenantState:
        try:
            return self._states[tenant_id]
        except KeyError:
            raise TenantError(f"unknown tenant {tenant_id!r}") from None

    def states(self) -> List[TenantState]:
        return [self._states[tid] for tid in sorted(self._states)]

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._states

    @property
    def hydrated_ids(self) -> List[str]:
        return list(self._lru)

    def total_footprint(self) -> int:
        return sum(self._states[tid].footprint for tid in self._lru)

    # -- hydration (single-flight) ---------------------------------------------

    def hydrate(self, tenant_id: str) -> BatchEngine:
        """The tenant's live engine, restoring it if cold.

        Thread-safe and single-flight: when N callers ask for the same
        cold tenant at once, exactly one performs the restore; the rest
        block until it finishes and share the engine (or the exception).
        A hot tenant is just touched to the MRU end of the LRU.
        """
        state = self.state(tenant_id)
        with self._flight_lock:
            if state.engine is not None:
                self._lru.move_to_end(tenant_id)
                return state.engine
            flight = self._in_flight.get(tenant_id)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._in_flight[tenant_id] = flight
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.engine is not None
            return flight.engine
        try:
            engine = self._hydrate_now(state)
            flight.engine = engine
            return engine
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._flight_lock:
                del self._in_flight[tenant_id]
            flight.done.set()

    def _hydrate_now(self, state: TenantState) -> BatchEngine:
        config = state.config
        source = (
            "checkpoint" if config.checkpoint_file.exists() else "snapshot"
        )
        with span(
            names.SPAN_TENANT_HYDRATE,
            tenant=state.tenant_id,
            source=source,
        ):
            self.restores_performed += 1
            if source == "checkpoint":
                # One resolution serves both the verifier and the cursor:
                # resolving twice could straddle a concurrent write and
                # pair generation N's state with generation N-1's cursor.
                restored = restore_checkpoint(config.checkpoint_file)
                verifier = restored.verifier
                serve_extras = restored.extras.get("serve") or {}
                state.cursor = max(
                    state.cursor, int(serve_extras.get("cursor", 0))
                )
                if restored.fell_back:
                    self.journal.emit(
                        EVENT_CHECKPOINT_FALLBACK,
                        tenant=state.tenant_id,
                        requested=str(restored.requested),
                        used=str(restored.path),
                        generation=restored.generation,
                        skipped=[
                            str(path) for path, _ in restored.skipped
                        ],
                    )
            else:
                verifier = RealConfig(load_snapshot(config.snapshot_dir))
            engine = BatchEngine(
                verifier,
                DeadLetterBox(config.deadletter_dir),
                options=self.options,
                journal=TenantJournal(self.journal, state.tenant_id),
                recorder=self.recorder,
                stats=state.stats,
                breaker=state.breaker,
                clock=self._clock,
                sleep=self._sleep,
            )
        with self._flight_lock:
            state.engine = engine
            state.footprint = estimate_footprint(verifier)
            state.hydrations += 1
            self._lru[state.tenant_id] = None
            self._lru.move_to_end(state.tenant_id)
        self.journal.emit(
            EVENT_TENANT_HYDRATED,
            tenant=state.tenant_id,
            source=source,
            cursor=state.cursor,
            footprint_bytes=state.footprint,
        )
        self._count(names.TENANT_HYDRATIONS)
        self._publish_gauges()
        self.enforce_budget(keep=state.tenant_id)
        return engine

    # -- eviction --------------------------------------------------------------

    def evict(self, tenant_id: str, reason: str = "request") -> bool:
        """Checkpoint the tenant's verifier and release it.  Returns
        False when the tenant was already cold."""
        state = self.state(tenant_id)
        with self._flight_lock:
            engine = state.engine
            if engine is None:
                return False
            state.engine = None
            self._lru.pop(tenant_id, None)
        with span(
            names.SPAN_TENANT_EVICT, tenant=tenant_id, reason=reason
        ):
            if not self.checkpoint_tenant(state, engine):
                # The checkpoint did not land (disk full, I/O error):
                # releasing the engine now would throw away the only
                # copy of the tenant's state.  Reinstall it and keep
                # serving from memory — degraded, but nothing lost.
                with self._flight_lock:
                    state.engine = engine
                    self._lru[tenant_id] = None
                    self._lru.move_to_end(tenant_id)
                self._publish_gauges()
                return False
            engine.close()
        state.evictions += 1
        state.footprint = 0
        self.journal.emit(
            EVENT_TENANT_EVICTED,
            tenant=tenant_id,
            reason=reason,
            cursor=state.cursor,
        )
        self._count(names.TENANT_EVICTIONS)
        self._publish_gauges()
        return True

    def checkpoint_tenant(
        self, state: TenantState, engine: Optional[BatchEngine] = None
    ) -> bool:
        """Durable per-tenant lineage: verifier state + stream cursor +
        quarantine ledger + breaker snapshot, crash-safely.  A storage
        fault marks the tenant degraded (``checkpoint_failed``) and
        returns False instead of crashing the service — the tenant keeps
        serving and the next checkpoint attempt may land."""
        engine = engine if engine is not None else state.engine
        if engine is None:
            return False
        try:
            write_checkpoint(
                engine.verifier,
                state.config.checkpoint_file,
                extras={
                    "serve": {
                        "cursor": state.cursor,
                        "quarantined_ids": list(state.stats.quarantined_ids),
                    },
                    "tenant": {
                        "id": state.tenant_id,
                        "breaker": (
                            state.breaker.snapshot() if state.breaker else None
                        ),
                    },
                },
                keep=self.options.checkpoint_generations,
            )
        except CheckpointError as error:
            state.checkpoint_failed = True
            state.stats.checkpoint_failures += 1
            state.last_error = str(error)
            self._count(names.CHECKPOINT_WRITE_FAILURES)
            self.journal.emit(
                EVENT_CHECKPOINT_FAILED,
                tenant=state.tenant_id,
                cursor=state.cursor,
                error=str(error),
            )
            self._publish_gauges()
            return False
        state.checkpoint_failed = False
        return True

    def enforce_budget(self, keep: Optional[str] = None) -> int:
        """Evict least-recently-served tenants until the hydrated
        footprint fits the budget.  ``keep`` (typically the tenant just
        hydrated) is never evicted — one tenant over budget beats
        thrashing the tenant we are about to serve.  Returns the number
        of evictions performed."""
        if self.memory_budget_bytes <= 0:
            return 0
        evicted = 0
        tried: set = set()
        while self.total_footprint() > self.memory_budget_bytes:
            victim = next(
                (tid for tid in self._lru if tid != keep and tid not in tried),
                None,
            )
            if victim is None:
                break
            tried.add(victim)
            # A failed eviction (checkpoint write fault) leaves the
            # tenant resident; the ``tried`` guard keeps one stuck
            # victim from spinning this loop forever over budget.
            if self.evict(victim, reason="budget"):
                evicted += 1
        return evicted

    def evict_all(self, reason: str = "shutdown") -> int:
        """Checkpoint and release every hydrated tenant (graceful
        shutdown)."""
        evicted = 0
        for tenant_id in list(self._lru):
            if self.evict(tenant_id, reason=reason):
                evicted += 1
        return evicted

    # -- telemetry -------------------------------------------------------------

    def _publish_gauges(self) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.gauge(names.TENANTS_HYDRATED).set(len(self._lru))
        metrics.gauge(names.TENANT_FOOTPRINT_BYTES).set(
            self.total_footprint()
        )
        metrics.gauge(names.TENANTS_DEGRADED).set(
            sum(1 for state in self._states.values() if state.degraded)
        )

    @staticmethod
    def _count(metric_name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(metric_name).inc()

    @staticmethod
    def _set_gauge(metric_name: str, value: float) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(metric_name).set(value)
