"""Admission control and weighted-fair scheduling for the tenant fleet.

Two pieces, both deliberately simple and fully deterministic:

- :class:`TenantQueue` — a bounded FIFO of pending batches per tenant.
  For *pull* sources (the service reading each tenant's stream file) the
  bound is backpressure: the service never reads further ahead than the
  queue holds.  For *push* submissions a full queue is a **load-shed**:
  :meth:`TenantQueue.push` returns ``False`` and the caller answers
  "come back later" instead of buffering without bound — one tenant
  flooding its queue cannot grow the service's memory.

- :class:`FairScheduler` — credit-based weighted fair queueing over the
  tenants that currently have work.  Each scheduling round adds every
  *ready* tenant's normalized weight share to its credit, then serves
  the highest-credit tenant and charges it one unit.  Long-run service
  converges to the weight ratios, a heavy tenant cannot starve a light
  one (every ready tenant's credit grows every round), and ties break
  by tenant id so runs are reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class TenantQueue(Generic[T]):
    """A bounded FIFO; a full queue refuses rather than grows."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[T] = deque()

    def push(self, item: T) -> bool:
        """True when admitted, False when the queue is full (load-shed)."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def pop(self) -> T:
        return self._items.popleft()

    def clear(self) -> int:
        dropped = len(self._items)
        self._items.clear()
        return dropped

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class FairScheduler:
    """Credit-based weighted fair queueing over ready tenants."""

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}
        self._credits: Dict[str, float] = {}

    def register(self, tenant_id: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {tenant_id}: weight must be > 0")
        if tenant_id in self._weights:
            raise ValueError(f"tenant {tenant_id} already registered")
        self._weights[tenant_id] = float(weight)
        self._credits[tenant_id] = 0.0

    def remove(self, tenant_id: str) -> None:
        self._weights.pop(tenant_id, None)
        self._credits.pop(tenant_id, None)

    def weight(self, tenant_id: str) -> float:
        return self._weights[tenant_id]

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def next_tenant(self, ready: Iterable[str]) -> Optional[str]:
        """Pick who to serve this round, or None when nobody is ready.

        Credits of tenants with no work are *frozen*, not accumulated:
        fair shares are divided among the tenants actually contending,
        so an idle heavy tenant does not bank a claim to a burst of
        back-to-back service when it returns (no debt, no starvation).
        """
        contenders: List[str] = sorted(
            tid for tid in ready if tid in self._weights
        )
        if not contenders:
            return None
        total_weight = sum(self._weights[tid] for tid in contenders)
        for tid in contenders:
            self._credits[tid] += self._weights[tid] / total_weight
        # Highest credit wins; ties break lexicographically (sorted above,
        # max() keeps the first of equals).
        winner = max(contenders, key=lambda tid: self._credits[tid])
        self._credits[winner] -= 1.0
        return winner

    def credits(self) -> Dict[str, float]:
        return dict(self._credits)
